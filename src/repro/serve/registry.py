"""Thread-safe, versioned model registry for hot-swapping served models.

The serving layer must keep answering while a background refit runs.
The registry makes that safe with one rule: the unit of publication is
an immutable :class:`PublishedModel` snapshot (version + fitted model),
and swapping versions is a single reference assignment under a lock.
Readers take the snapshot *once* per request and use it throughout, so
every response is attributable to exactly one published version -- a
request can never see version ``n``'s rules with version ``n+1``'s
means (no torn reads).

Models themselves are treated as frozen after publication: a fitted
:class:`~repro.core.model.RatioRuleModel`'s learned arrays are never
mutated by the serving path, and refits build a *new* model object
(see :meth:`ModelRegistry.refit_and_publish`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.model import RatioRuleModel
from repro.obs.metrics import ServeMetrics
from repro.obs.tracing import span

__all__ = ["ModelRegistry", "NoModelPublishedError", "PublishedModel"]


class NoModelPublishedError(RuntimeError):
    """Raised when the registry is asked for a model before any publish."""


@dataclass(frozen=True)
class PublishedModel:
    """One immutable published (version, model) snapshot.

    Attributes
    ----------
    version:
        Monotonically increasing publication number (1, 2, ...).
    model:
        The fitted model; treated as frozen after publication.
    fingerprint:
        Content hash of the model's learned state (see
        :meth:`repro.core.model.RatioRuleModel.fingerprint`).
    published_at:
        Wall-clock publication time (``time.time()``).
    """

    version: int
    model: RatioRuleModel
    fingerprint: str
    published_at: float = field(default=0.0, compare=False)


class ModelRegistry:
    """Versioned publish/hot-swap point for served models.

    Parameters
    ----------
    model:
        Optional fitted model to publish immediately as version 1.
    metrics:
        Optional :class:`~repro.obs.metrics.ServeMetrics`; each publish
        bumps its ``n_publishes`` counter.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RatioRuleModel
    >>> from repro.serve import ModelRegistry
    >>> X = np.outer(np.arange(1.0, 9.0), [1.0, 2.0])
    >>> registry = ModelRegistry(RatioRuleModel(cutoff=1).fit(X))
    >>> registry.current().version
    1
    """

    def __init__(
        self,
        model: Optional[RatioRuleModel] = None,
        *,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._metrics = metrics
        self._current: Optional[PublishedModel] = None
        self._next_version = 1
        if model is not None:
            self.publish(model)

    # -- publishing --------------------------------------------------------

    def publish(
        self, model: RatioRuleModel, *, allow_schema_change: bool = False
    ) -> PublishedModel:
        """Atomically publish ``model`` as the next version.

        In-flight requests holding the previous snapshot finish against
        it; requests that snapshot after this call see the new version.

        Parameters
        ----------
        model:
            A *fitted* model.  Its column schema must match the
            currently published version's unless
            ``allow_schema_change`` is set -- silently changing the
            served row width mid-stream is almost always a deployment
            mistake.

        Returns
        -------
        PublishedModel
            The freshly published snapshot.
        """
        if model.rules_ is None or model.schema_ is None:
            raise ValueError("only fitted models can be published")
        with span("serve.publish") as publish_span:
            fingerprint = model.fingerprint()
            with self._lock:
                if (
                    self._current is not None
                    and not allow_schema_change
                    and model.schema_.names
                    != self._current.model.schema_.names
                ):
                    raise ValueError(
                        f"schema change on publish: serving "
                        f"{self._current.model.schema_.names}, got "
                        f"{model.schema_.names} (pass "
                        f"allow_schema_change=True if intentional)"
                    )
                snapshot = PublishedModel(
                    version=self._next_version,
                    model=model,
                    fingerprint=fingerprint,
                    published_at=time.time(),
                )
                self._next_version += 1
                self._current = snapshot
            publish_span.set_attr("version", snapshot.version)
        if self._metrics is not None:
            self._metrics.record_publish()
        return snapshot

    def refit_and_publish(self, sources, **fit_kwargs) -> PublishedModel:
        """Refit from data sources via the scan engine, then hot-swap.

        Sugar over :func:`repro.core.parallel.fit_sharded` ->
        :meth:`publish`: the scan (possibly process-parallel, retried,
        checkpointed -- every engine keyword is forwarded) runs without
        touching the served model; only the final reference swap is
        synchronized.
        """
        from repro.core.parallel import fit_sharded

        model = fit_sharded(sources, **fit_kwargs)
        return self.publish(model)

    def publish_from_accumulator(
        self, accumulator, schema, *, metrics=None, **model_kwargs
    ) -> PublishedModel:
        """Finish a fit from merged scan partials, then hot-swap.

        The reduce-side twin of :meth:`refit_and_publish`: anything
        that produced a merged
        :class:`~repro.core.covariance.StreamingCovariance` (a sharded
        scan, a resumed checkpoint) becomes the next served version via
        :meth:`~repro.core.model.RatioRuleModel.fit_from_accumulator`.
        """
        model = RatioRuleModel(**model_kwargs)
        model.fit_from_accumulator(accumulator, schema, metrics=metrics)
        return self.publish(model)

    # -- reading -----------------------------------------------------------

    def current(self) -> PublishedModel:
        """The live snapshot.  Take it once per request and keep it."""
        snapshot = self._current
        if snapshot is None:
            raise NoModelPublishedError(
                "no model published; call publish() first"
            )
        return snapshot

    @property
    def latest_version(self) -> int:
        """Version of the live snapshot (0 before any publish)."""
        snapshot = self._current
        return 0 if snapshot is None else snapshot.version

    def __repr__(self) -> str:
        snapshot = self._current
        if snapshot is None:
            return "ModelRegistry(unpublished)"
        return (
            f"ModelRegistry(version={snapshot.version}, "
            f"fingerprint={snapshot.fingerprint!r})"
        )
