"""Vectorized, cached batch hole-filling.

:class:`BatchFiller` is the request path of the serving layer.  One
``fill_batch`` call:

1. takes **one** atomic model snapshot from the registry (so the whole
   batch -- and the metadata on the result -- is attributable to
   exactly one published version);
2. groups the incoming rows by hole pattern (``numpy.unique`` over the
   NaN mask, vectorized);
3. fetches each pattern's precomputed
   :class:`~repro.core.reconstruction.FillOperator` from the LRU cache
   (computing it once on a cold pattern);
4. applies each operator to its whole group with a single kernel call.

Exactness: the apply kernel
(:func:`~repro.core.reconstruction.apply_fill_operator`) produces rows
that are bitwise independent of the batch size, and the cached operator
is the same object :func:`~repro.core.reconstruction.fill_holes` builds
internally -- so batch, cached, and row-by-row fills are
**bit-identical**.  :meth:`BatchFiller.fill_reference` is the
pure-Python row-by-row reference the differential test suite pins this
contract against.

Rows with *zero* holes are a documented no-op fast path: they are
copied through untouched and never touch the operator cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.model import RatioRuleModel
from repro.core.reconstruction import (
    CASE_ALL_HOLES,
    CASE_NO_HOLES,
    compute_fill_operator,
    fill_holes,
)
from repro.obs.metrics import ServeMetrics, Stopwatch
from repro.obs.tracing import span
from repro.serve.cache import OperatorCache
from repro.serve.registry import ModelRegistry, PublishedModel

__all__ = ["BatchFillResult", "BatchFiller"]


@dataclass(frozen=True)
class BatchFillResult:
    """Outcome of one batch fill.

    Attributes
    ----------
    filled:
        ``N x M`` matrix: known cells untouched, holes reconstructed.
    version:
        The registry version every row in this batch was served from.
    fingerprint:
        Content hash of that version's model.
    cases:
        Per-row dispatch regime (``"no-holes"``, ``"all-holes"``,
        ``"exactly-specified"``, ``"over-specified"``,
        ``"under-specified"``), aligned with the rows.
    n_groups:
        Distinct hole patterns that went through an operator.
    n_holes_filled:
        Cells reconstructed across the batch.
    seconds:
        Wall-clock spent producing this batch.
    """

    filled: np.ndarray
    version: int
    fingerprint: str
    cases: Tuple[str, ...]
    n_groups: int
    n_holes_filled: int
    seconds: float

    @property
    def n_rows(self) -> int:
        """Rows in the batch."""
        return self.filled.shape[0]


class BatchFiller:
    """Serve hole-filling requests from a published model.

    Parameters
    ----------
    source:
        A :class:`~repro.serve.ModelRegistry` (hot-swappable serving)
        or a fitted :class:`~repro.core.model.RatioRuleModel` (which is
        wrapped in a private single-version registry).
    cache_entries:
        Operator-cache capacity (ignored when ``cache`` is given).
    cache:
        Optionally share one :class:`~repro.serve.OperatorCache`
        between fillers.
    underdetermined:
        CASE-3 policy applied to every request, as in
        :func:`~repro.core.reconstruction.fill_holes`.
    metrics:
        Optional shared :class:`~repro.obs.metrics.ServeMetrics`; by
        default each filler gets its own record at ``self.metrics``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RatioRuleModel
    >>> from repro.serve import BatchFiller
    >>> X = np.outer(np.arange(1.0, 9.0), [1.0, 2.0])
    >>> filler = BatchFiller(RatioRuleModel(cutoff=1).fit(X))
    >>> batch = np.array([[4.0, np.nan], [np.nan, 10.0]])
    >>> result = filler.fill_batch(batch)
    >>> np.round(result.filled, 6)
    array([[ 4.,  8.],
           [ 5., 10.]])
    """

    def __init__(
        self,
        source: Union[ModelRegistry, RatioRuleModel],
        *,
        cache_entries: int = 1024,
        cache: Optional[OperatorCache] = None,
        underdetermined: str = "truncate",
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        if underdetermined not in ("truncate", "min-norm"):
            raise ValueError(
                f"underdetermined must be 'truncate' or 'min-norm', "
                f"got {underdetermined!r}"
            )
        self.underdetermined = underdetermined
        self.metrics = metrics if metrics is not None else ServeMetrics()
        if isinstance(source, ModelRegistry):
            self.registry = source
        else:
            self.registry = ModelRegistry(source, metrics=self.metrics)
        self.cache = (
            cache
            if cache is not None
            else OperatorCache(cache_entries, metrics=self.metrics)
        )

    # -- serving -----------------------------------------------------------

    def fill_batch(self, matrix: np.ndarray) -> BatchFillResult:
        """Fill every NaN in an ``N x M`` request batch.

        The model snapshot is taken once up front; a concurrent
        hot-swap affects only *later* batches.
        """
        with span("serve.fill_batch") as batch_span, Stopwatch() as watch:
            snapshot = self.registry.current()
            filled, cases, group_sizes, n_holes = self._fill_against(
                snapshot, matrix
            )
            batch_span.set_attr("version", snapshot.version)
            batch_span.set_attr("rows", filled.shape[0])
            batch_span.set_attr("groups", len(group_sizes))
            batch_span.set_attr("holes_filled", n_holes)
        self.metrics.record_batch(
            n_rows=filled.shape[0],
            n_rows_filled=sum(
                case not in (CASE_NO_HOLES, CASE_ALL_HOLES) for case in cases
            ),
            n_rows_no_holes=sum(case == CASE_NO_HOLES for case in cases),
            n_rows_all_holes=sum(case == CASE_ALL_HOLES for case in cases),
            n_holes_filled=n_holes,
            group_sizes=group_sizes,
            seconds=watch.seconds,
        )
        return BatchFillResult(
            filled=filled,
            version=snapshot.version,
            fingerprint=snapshot.fingerprint,
            cases=cases,
            n_groups=len(group_sizes),
            n_holes_filled=n_holes,
            seconds=watch.seconds,
        )

    def fill_row(self, row: np.ndarray) -> BatchFillResult:
        """Serve a single row (sugar over a 1-row :meth:`fill_batch`).

        Thanks to the batch-size-independent kernel, the filled row is
        bit-identical to the same row served inside any larger batch.
        """
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError(f"row must be 1-d, got ndim={row.ndim}")
        return self.fill_batch(row[None, :])

    def fill_reference(self, matrix: np.ndarray) -> BatchFillResult:
        """Uncached serial reference: row-by-row :func:`fill_holes`.

        The differential suite asserts :meth:`fill_batch` is
        bit-identical to this path; it exists for auditing and tests,
        not for throughput.
        """
        with Stopwatch() as watch:
            snapshot = self.registry.current()
            matrix = self._validate(snapshot, matrix)
            model = snapshot.model
            rules = model.rules_matrix
            filled = np.empty_like(matrix)
            cases = []
            n_holes = 0
            patterns = set()
            for i in range(matrix.shape[0]):
                result = fill_holes(
                    matrix[i], rules, model.means_,
                    underdetermined=self.underdetermined,
                )
                filled[i] = result.filled
                cases.append(result.case)
                row_holes = int(np.isnan(matrix[i]).sum())
                n_holes += row_holes
                if result.case not in (CASE_NO_HOLES, CASE_ALL_HOLES):
                    patterns.add(tuple(np.nonzero(np.isnan(matrix[i]))[0]))
        return BatchFillResult(
            filled=filled,
            version=snapshot.version,
            fingerprint=snapshot.fingerprint,
            cases=tuple(cases),
            n_groups=len(patterns),
            n_holes_filled=n_holes,
            seconds=watch.seconds,
        )

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _validate(snapshot: PublishedModel, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-d, got ndim={matrix.ndim}")
        width = snapshot.model.schema_.width
        if matrix.shape[1] != width:
            raise ValueError(
                f"request rows have {matrix.shape[1]} columns; version "
                f"{snapshot.version} serves {width}"
            )
        if np.isinf(matrix).any():
            raise ValueError("matrix contains infinities; holes must be NaN")
        return matrix

    def _fill_against(
        self, snapshot: PublishedModel, matrix: np.ndarray
    ) -> Tuple[np.ndarray, Tuple[str, ...], list, int]:
        matrix = self._validate(snapshot, matrix)
        model = snapshot.model
        means = model.means_
        rules = model.rules_matrix  # one copy for the whole batch
        n_cols = matrix.shape[1]
        filled = matrix.copy()
        cases = [CASE_NO_HOLES] * matrix.shape[0]
        group_sizes: list = []
        n_holes_filled = 0
        if matrix.shape[0] == 0:
            return filled, tuple(cases), group_sizes, 0

        hole_mask = np.isnan(matrix)
        unique_patterns, inverse = np.unique(
            hole_mask, axis=0, return_inverse=True
        )
        for group, pattern_mask in enumerate(unique_patterns):
            rows = np.nonzero(inverse == group)[0]
            holes = np.nonzero(pattern_mask)[0]
            if holes.size == 0:
                # Documented no-op fast path: complete rows pass
                # through untouched and never touch the cache.
                continue
            if holes.size == n_cols:
                filled[rows] = means
                for i in rows:
                    cases[i] = CASE_ALL_HOLES
                n_holes_filled += int(rows.size) * n_cols
                continue
            pattern = tuple(int(i) for i in holes)
            key = (snapshot.version, pattern, self.underdetermined)
            with span(
                "serve.group_apply", rows=int(rows.size), holes=len(pattern)
            ):
                fill_op = self.cache.get_or_compute(
                    key,
                    lambda: compute_fill_operator(
                        pattern, rules, n_cols,
                        underdetermined=self.underdetermined,
                    ),
                )
                known = fill_op.known_indices
                centered = matrix[np.ix_(rows, known)] - means[known]
                filled[np.ix_(rows, holes)] = (
                    fill_op.predict(centered) + means[holes]
                )
            for i in rows:
                cases[i] = fill_op.case
            group_sizes.append(int(rows.size))
            n_holes_filled += int(rows.size) * int(holes.size)
        return filled, tuple(cases), group_sizes, n_holes_filled
