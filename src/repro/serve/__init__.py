"""The reconstruction serving layer: cached, batched, hot-swappable.

The paper's killer application is answering "fill these holes" queries
(Sec. 4.4) at interactive speed.  This package is the
production-shaped query path on top of
:mod:`repro.core.reconstruction`:

- :class:`OperatorCache` -- an LRU keyed by (model version, hole
  pattern, CASE-3 policy) holding precomputed
  :class:`~repro.core.reconstruction.FillOperator` records, so a
  repeat-pattern fill is one kernel apply instead of one linear solve;
- :class:`BatchFiller` -- groups request rows by hole pattern and
  applies each cached operator to the whole group at once, with a
  row-by-row reference path (:meth:`BatchFiller.fill_reference`) that
  the differential suite proves **bit-identical**;
- :class:`ModelRegistry` -- versioned publish/hot-swap so a background
  refit replaces the served model atomically; every response is
  attributable to exactly one published version;
- :class:`~repro.obs.metrics.ServeMetrics` (re-exported) -- cache
  traffic, pattern-group sizes, and fill-latency percentiles;
- :mod:`repro.serve.http` -- the network tier:
  :class:`~repro.serve.http.HttpApiServer` exposes fill / what-if /
  outlier / recommend over HTTP, with
  :class:`~repro.serve.http.DeadlineCoalescer` merging concurrent
  single-row requests into micro-batches (see ``docs/serving_http.md``).

Quickstart::

    from repro import RatioRuleModel
    from repro.serve import BatchFiller, ModelRegistry

    registry = ModelRegistry(RatioRuleModel().fit(train))
    filler = BatchFiller(registry)
    result = filler.fill_batch(incomplete_rows)   # NaN = hole
    # ... later, from a refit thread:
    registry.publish(RatioRuleModel().fit(fresh_data))

See ``docs/serving.md`` for architecture, cache semantics, and the
versioning guarantees.
"""

from repro.obs.metrics import ServeHttpMetrics, ServeMetrics
from repro.serve.batch import BatchFiller, BatchFillResult
from repro.serve.cache import OperatorCache
from repro.serve.http import (
    CoalescedFill,
    CoalescerStoppedError,
    DeadlineCoalescer,
    DeadlineExpiredError,
    HttpApiServer,
    QueueFullError,
)
from repro.serve.registry import (
    ModelRegistry,
    NoModelPublishedError,
    PublishedModel,
)

__all__ = [
    "BatchFiller",
    "BatchFillResult",
    "CoalescedFill",
    "CoalescerStoppedError",
    "DeadlineCoalescer",
    "DeadlineExpiredError",
    "HttpApiServer",
    "ModelRegistry",
    "NoModelPublishedError",
    "OperatorCache",
    "PublishedModel",
    "QueueFullError",
    "ServeHttpMetrics",
    "ServeMetrics",
]
