"""The hole-pattern operator cache.

For a fixed (model version, hole pattern, CASE-3 policy) the entire
Sec.-4.4 reconstruction collapses to one precomputed
:class:`~repro.core.reconstruction.FillOperator`.  Serving traffic is
dominated by repeat patterns -- a product catalog has a handful of
"typical" missing-field combinations -- so an LRU over those operators
turns almost every fill into a single kernel apply, skipping the
per-request ``inv``/``pinv`` solve entirely.

The cache is thread-safe and deliberately dumb: a lock, an ordered
dict, and three counters.  Operator *computation* happens outside the
lock so concurrent misses on different patterns do not serialize; a
rare duplicate computation of the same pattern is harmless because
operators are deterministic (identical bits) and immutable.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

from repro.core.reconstruction import FillOperator
from repro.obs.metrics import ServeMetrics
from repro.obs.tracing import span

__all__ = ["OperatorCache"]


class OperatorCache:
    """A bounded, thread-safe LRU of :class:`FillOperator` records.

    Parameters
    ----------
    max_entries:
        Capacity; the least-recently-used operator is evicted when a
        new pattern would exceed it.  Each entry is a few
        ``h x (M - h)`` float64 matrices, so even 10k entries on a
        100-column catalog is only tens of megabytes.
    metrics:
        Optional :class:`~repro.obs.metrics.ServeMetrics` to mirror
        hit/miss/eviction counts into (the cache also keeps its own).
    """

    def __init__(
        self, max_entries: int = 1024, *, metrics: Optional[ServeMetrics] = None
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, FillOperator]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_compute(
        self, key: Hashable, factory: Callable[[], FillOperator]
    ) -> FillOperator:
        """Return the cached operator for ``key``, computing it on a miss.

        ``factory`` runs *outside* the lock; if two threads race the
        same cold key, both compute (bit-identical results) and one
        insert wins -- every caller still gets a correct operator.

        When tracing is on, a miss emits a ``serve.operator_build``
        span around the factory solve; hits emit nothing (in a trace
        dump, a pattern group *without* a nested build span was served
        from cache).
        """
        with self._lock:
            operator = self._entries.get(key)
            if operator is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if self._metrics is not None:
                    self._metrics.record_cache_hit()
                return operator
        with span("serve.operator_build", key=str(key)):
            operator = factory()
        with self._lock:
            self.misses += 1
            if self._metrics is not None:
                self._metrics.record_cache_miss()
            resident = self._entries.get(key)
            if resident is not None:
                # A racing thread inserted first; serve its copy so a
                # key always maps to one object identity.
                self._entries.move_to_end(key)
                return resident
            self._entries[key] = operator
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.record_cache_eviction()
        return operator

    def evict_version(self, version: int) -> int:
        """Drop every entry belonging to a retired model version.

        Keys are ``(version, pattern, policy)`` tuples (see
        :class:`repro.serve.BatchFiller`); entries for other key shapes
        are left alone.  Returns the number of entries dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == version
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Snapshot of size and traffic counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
