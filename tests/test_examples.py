"""Every example script must run clean and produce its headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["Mined", "butter", "Guessing error"],
    "forecasting.py": ["NO RULE FIRES", "Ratio Rule"],
    "nba_interpretation.py": ["Table 2", "RR1", "minutes"],
    "outlier_detection.py": ["JORDAN-LIKE", "RODMAN-LIKE", "Cell outliers"],
    "whatif_scenario.py": ["Cheerios doubles", "milk"],
    "categorical_data.py": ["position", "recovery accuracy", "residual"],
    "data_cleaning.py": ["Imputed", "Repaired"],
    "documents_lsi.py": ["RR1", "topic scores", "reconstructed"],
    "market_basket.py": ["Cart so far", "uplift", "Apriori"],
    "streaming_updates.py": ["rows_seen", "promotion", "Live forecast"],
    "visualization.py": ["nba", "baseball", "abalone", "RR1"],
    "warehouse_partitions.py": [
        "monthly partitions",
        "checksum-verified",
        "identical to monolithic: True",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in completed.stdout, (
            f"{script} output missing {snippet!r}:\n{completed.stdout[:2000]}"
        )


def test_all_examples_covered():
    """Every script in examples/ has an expectation entry."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
