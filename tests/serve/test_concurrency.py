"""Concurrency stress test: readers fill while a writer hot-swaps.

The registry's guarantee under test: swapping is atomic, every response
is attributable to exactly one published version, and a response's
payload always matches the model of the version it claims -- no torn
reads (version ``n`` with version ``n+1``'s arrays), no dropped
in-flight requests.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.reconstruction import fill_matrix
from repro.obs.metrics import ServeMetrics
from repro.serve import BatchFiller, ModelRegistry

from tests.serve.conftest import make_rank2_matrix, punch_holes

pytestmark = pytest.mark.serve

N_READERS = 6
N_VERSIONS = 8
FILLS_PER_READER = 40


def test_hot_swap_under_concurrent_fills():
    models = [
        RatioRuleModel(cutoff=2).fit(make_rank2_matrix(100 + i))
        for i in range(N_VERSIONS)
    ]
    batch = punch_holes(
        make_rank2_matrix(55, n_rows=12), np.random.default_rng(55)
    )
    # Ground truth per version, computed serially up front: if a fill
    # claims version v, its bits must match exactly this.
    expected = {
        version: fill_matrix(batch, model.rules_matrix, model.means_)
        for version, model in enumerate(models, start=1)
    }
    fingerprints = {
        version: model.fingerprint()
        for version, model in enumerate(models, start=1)
    }

    metrics = ServeMetrics()
    registry = ModelRegistry(models[0], metrics=metrics)
    filler = BatchFiller(registry, metrics=metrics)
    start = threading.Barrier(N_READERS + 1)
    observed = [[] for _ in range(N_READERS)]
    errors = []

    def reader(slot):
        try:
            start.wait()
            for _ in range(FILLS_PER_READER):
                result = filler.fill_batch(batch)
                observed[slot].append(result)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        start.wait()
        for model in models[1:]:
            registry.publish(model)

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(N_READERS)
    ]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    seen_versions = set()
    for slot in range(N_READERS):
        # No dropped requests: every fill produced a result.
        assert len(observed[slot]) == FILLS_PER_READER
        previous = 0
        for result in observed[slot]:
            # Attributable to exactly one published version ...
            assert result.version in expected
            # ... whose payload matches that version bit-for-bit (a torn
            # read mixing two versions' arrays could not pass this).
            np.testing.assert_array_equal(
                result.filled, expected[result.version]
            )
            assert result.fingerprint == fingerprints[result.version]
            # Versions never go backwards within one reader.
            assert result.version >= previous
            previous = result.version
            seen_versions.add(result.version)

    # The final version is always observed (the writer finishes before
    # the readers' last iterations in practice; guaranteed for reader
    # fills that start after the join of the writer -- at minimum the
    # set is non-empty and within the published range).
    assert seen_versions <= set(range(1, N_VERSIONS + 1))
    assert filler.metrics.n_publishes == N_VERSIONS
    assert filler.metrics.n_batches == N_READERS * FILLS_PER_READER


def test_swap_between_batches_changes_served_version():
    registry = ModelRegistry(
        RatioRuleModel(cutoff=2).fit(make_rank2_matrix(1))
    )
    filler = BatchFiller(registry)
    batch = punch_holes(
        make_rank2_matrix(2, n_rows=5), np.random.default_rng(2)
    )
    before = filler.fill_batch(batch)
    registry.publish(RatioRuleModel(cutoff=2).fit(make_rank2_matrix(3)))
    after = filler.fill_batch(batch)
    assert (before.version, after.version) == (1, 2)
    assert not np.array_equal(before.filled, after.filled)
