"""Shared fixtures for the serving-layer suite.

The synthetic-data factories live in :mod:`tests.conftest`; they are
re-exported here so serving tests keep their historical import path.
"""

from __future__ import annotations

import pytest

from repro.core.model import RatioRuleModel
from tests.conftest import make_rank2_matrix, punch_holes

__all__ = ["make_rank2_matrix", "punch_holes"]


@pytest.fixture
def served_model() -> RatioRuleModel:
    """A k=2 model on rank-2 data (all three fill regimes reachable)."""
    return RatioRuleModel(cutoff=2).fit(make_rank2_matrix(7))


@pytest.fixture
def retrained_model(served_model) -> RatioRuleModel:
    """Same schema as ``served_model``, different data (hot-swap twin)."""
    model = RatioRuleModel(cutoff=2).fit(make_rank2_matrix(11))
    assert model.schema_.names == served_model.schema_.names
    assert model.fingerprint() != served_model.fingerprint()
    return model
