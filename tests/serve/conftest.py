"""Shared fixtures for the serving-layer suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import RatioRuleModel


def make_rank2_matrix(seed: int, n_rows: int = 200, n_cols: int = 5) -> np.ndarray:
    """Rank-2 data with small noise; distinct per seed."""
    generator = np.random.default_rng(seed)
    factor1 = generator.normal(5.0, 2.0, size=n_rows)
    factor2 = generator.normal(0.0, 1.0, size=n_rows)
    loadings1 = np.array([1.0, 2.0, 0.5, 3.0, 1.5])[:n_cols]
    loadings2 = np.array([0.5, -1.0, 2.0, 0.0, -0.5])[:n_cols]
    matrix = np.outer(factor1, loadings1) + np.outer(factor2, loadings2)
    matrix += generator.normal(0.0, 0.05, size=matrix.shape)
    return matrix


def punch_holes(
    matrix: np.ndarray, generator: np.random.Generator, rate: float = 0.3
) -> np.ndarray:
    """Copy of ``matrix`` with a random ``rate`` of cells set to NaN."""
    holey = matrix.copy()
    holey[generator.random(matrix.shape) < rate] = np.nan
    return holey


@pytest.fixture
def served_model() -> RatioRuleModel:
    """A k=2 model on rank-2 data (all three fill regimes reachable)."""
    return RatioRuleModel(cutoff=2).fit(make_rank2_matrix(7))


@pytest.fixture
def retrained_model(served_model) -> RatioRuleModel:
    """Same schema as ``served_model``, different data (hot-swap twin)."""
    model = RatioRuleModel(cutoff=2).fit(make_rank2_matrix(11))
    assert model.schema_.names == served_model.schema_.names
    assert model.fingerprint() != served_model.fingerprint()
    return model
