"""Shared fixtures for the serving-layer suite.

The synthetic-data factories live in :mod:`tests.conftest`; they are
re-exported here so serving tests keep their historical import path.
``http_post`` / ``http_get`` are tiny stdlib clients for the
``repro.serve.http`` suite: they never raise on HTTP error statuses,
returning ``(status, json_body, headers)`` so tests can assert on
429/503 responses directly.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Tuple

import pytest

from repro.core.model import RatioRuleModel
from tests.conftest import make_rank2_matrix, punch_holes

__all__ = ["http_get", "http_post", "make_rank2_matrix", "punch_holes"]

_Response = Tuple[int, Any, Dict[str, str]]


def http_post(url: str, payload: Any, *, timeout: float = 10.0) -> _Response:
    """POST JSON; returns (status, decoded body, headers), never raises."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def http_get(url: str, *, timeout: float = 10.0) -> _Response:
    """GET JSON; returns (status, decoded body, headers), never raises."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture
def served_model() -> RatioRuleModel:
    """A k=2 model on rank-2 data (all three fill regimes reachable)."""
    return RatioRuleModel(cutoff=2).fit(make_rank2_matrix(7))


@pytest.fixture
def retrained_model(served_model) -> RatioRuleModel:
    """Same schema as ``served_model``, different data (hot-swap twin)."""
    model = RatioRuleModel(cutoff=2).fit(make_rank2_matrix(11))
    assert model.schema_.names == served_model.schema_.names
    assert model.fingerprint() != served_model.fingerprint()
    return model
