"""Unit tests for the hole-pattern operator cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs.metrics import ServeMetrics
from repro.serve import OperatorCache

pytestmark = pytest.mark.serve


class _Operator:
    """Stand-in cache value with a usable identity."""

    def __init__(self, tag):
        self.tag = tag


class TestGetOrCompute:
    def test_miss_then_hit_returns_same_object(self):
        cache = OperatorCache(4)
        first = cache.get_or_compute("a", lambda: _Operator("a"))
        second = cache.get_or_compute("a", lambda: _Operator("a-again"))
        assert second is first
        assert cache.hits == 1
        assert cache.misses == 1

    def test_factory_not_called_on_hit(self):
        cache = OperatorCache(4)
        cache.get_or_compute("a", lambda: _Operator("a"))

        def exploding_factory():
            raise AssertionError("factory must not run on a hit")

        cache.get_or_compute("a", exploding_factory)

    def test_len_and_contains(self):
        cache = OperatorCache(4)
        assert len(cache) == 0
        assert "a" not in cache
        cache.get_or_compute("a", lambda: _Operator("a"))
        assert len(cache) == 1
        assert "a" in cache


class TestLRU:
    def test_least_recently_used_is_evicted(self):
        cache = OperatorCache(2)
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("b", lambda: _Operator("b"))
        cache.get_or_compute("a", lambda: _Operator("a"))  # refresh a
        cache.get_or_compute("c", lambda: _Operator("c"))  # evicts b
        assert "a" in cache
        assert "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_capacity_one(self):
        cache = OperatorCache(1)
        first = cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("b", lambda: _Operator("b"))
        assert "a" not in cache
        replacement = cache.get_or_compute("a", lambda: _Operator("a2"))
        assert replacement is not first
        assert cache.evictions == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            OperatorCache(0)


class TestVersionEviction:
    def test_evict_version_drops_only_that_version(self):
        cache = OperatorCache(8)
        for version in (1, 2):
            for pattern in ((0,), (1, 2)):
                cache.get_or_compute(
                    (version, pattern, "truncate"),
                    lambda: _Operator((version, pattern)),
                )
        dropped = cache.evict_version(1)
        assert dropped == 2
        assert len(cache) == 2
        assert (2, (0,), "truncate") in cache
        assert (1, (0,), "truncate") not in cache

    def test_evict_version_ignores_other_key_shapes(self):
        cache = OperatorCache(8)
        cache.get_or_compute("plain-key", lambda: _Operator("x"))
        assert cache.evict_version(1) == 0
        assert "plain-key" in cache

    def test_clear_preserves_counters(self):
        cache = OperatorCache(8)
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1


class TestStatsAndMetrics:
    def test_stats_snapshot(self):
        cache = OperatorCache(2)
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("b", lambda: _Operator("b"))
        cache.get_or_compute("c", lambda: _Operator("c"))
        assert cache.stats() == {
            "entries": 2,
            "max_entries": 2,
            "hits": 1,
            "misses": 3,
            "evictions": 1,
        }

    def test_traffic_mirrored_into_serve_metrics(self):
        metrics = ServeMetrics()
        cache = OperatorCache(1, metrics=metrics)
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("a", lambda: _Operator("a"))
        cache.get_or_compute("b", lambda: _Operator("b"))
        assert metrics.cache_hits == 1
        assert metrics.cache_misses == 2
        assert metrics.cache_evictions == 1


class TestThreadSafety:
    def test_concurrent_callers_share_one_object_per_key(self):
        cache = OperatorCache(16)
        keys = ["k0", "k1", "k2", "k3"]
        results = {key: [] for key in keys}
        barrier = threading.Barrier(8)
        errors = []

        def worker(seed):
            generator = np.random.default_rng(seed)
            try:
                barrier.wait()
                for _ in range(200):
                    key = keys[int(generator.integers(len(keys)))]
                    operator = cache.get_or_compute(key, lambda: _Operator(key))
                    results[key].append(operator)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No evictions (capacity exceeds key count), so each key must
        # resolve to exactly one object identity across every thread.
        for key in keys:
            identities = {id(op) for op in results[key]}
            assert len(identities) == 1
        # Every call counted exactly once, as either a hit or a miss.
        assert cache.hits + cache.misses == 8 * 200
        assert cache.evictions == 0
