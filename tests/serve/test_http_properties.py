"""Property tests: coalesced grouping is batch-size-invariant.

The deadline coalescer's exactness contract (mirroring
``tests/core/test_differential_properties.py`` one layer up): however
the queue happens to be drained -- one giant flush, row-by-row, any
partition in between, any thread interleaving -- the filled values are
**bit-identical** to serving all rows as one offline batch.  This is
what makes deadline-based flushing safe: timing can change latency,
never answers.

Two drivers:

* a deterministic one that partitions the queue into hypothesis-drawn
  flush chunks (exactly what the batcher does, minus the clock), and
* a threaded one that pushes rows through a live coalescer queue with
  a hypothesis-drawn ``max_batch_rows``, letting real timing pick the
  partitioning.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import RatioRuleModel
from repro.serve import BatchFiller
from repro.serve.http import DeadlineCoalescer, _Ticket

from tests.serve.conftest import make_rank2_matrix

pytestmark = pytest.mark.serve

N_COLS = 5

# One fitted model shared across examples (fitting inside the
# hypothesis loop would dominate the runtime without adding coverage).
_MODEL = RatioRuleModel(cutoff=2).fit(make_rank2_matrix(7))


def _batch_from_masks(seed: int, masks) -> np.ndarray:
    base = make_rank2_matrix(seed, n_rows=len(masks))
    batch = base.copy()
    for i, mask in enumerate(masks):
        for j in range(N_COLS):
            if mask[j]:
                batch[i, j] = np.nan
    return batch


hole_masks = st.lists(
    st.lists(st.booleans(), min_size=N_COLS, max_size=N_COLS),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(
    masks=hole_masks,
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
def test_any_flush_partition_is_bit_identical_to_one_batch(
    masks, seed, data
):
    """Drive the batcher's own flush path over an arbitrary partition
    of the queue and require bit-equality with one offline batch."""
    batch = _batch_from_masks(seed, masks)
    offline = BatchFiller(_MODEL).fill_batch(batch)

    coalescer = DeadlineCoalescer(BatchFiller(_MODEL))
    now = time.monotonic()
    tickets = [
        _Ticket(row=row.copy(), deadline=now + 60.0, enqueued_at=now)
        for row in batch
    ]
    # Partition the queue into hypothesis-drawn flush chunks.
    position = 0
    while position < len(tickets):
        size = data.draw(
            st.integers(min_value=1, max_value=len(tickets) - position),
            label=f"flush size @ {position}",
        )
        coalescer._flush(tickets[position:position + size], 0)
        position += size

    for i, ticket in enumerate(tickets):
        assert ticket.error is None
        outcome = ticket.result
        assert outcome is not None
        np.testing.assert_array_equal(
            outcome.filled,
            offline.filled[i],
            err_msg=f"row {i} diverged from the one-batch answer",
        )
        assert outcome.case == offline.cases[i]
        assert outcome.version == offline.version


@settings(max_examples=10, deadline=None)
@given(
    masks=hole_masks,
    seed=st.integers(min_value=0, max_value=2**16),
    max_batch_rows=st.integers(min_value=1, max_value=8),
)
def test_live_queue_interleaving_is_bit_identical(
    masks, seed, max_batch_rows
):
    """Concurrent submissions through a live coalescer: real timing
    picks the flush partitioning, the answers must not move."""
    batch = _batch_from_masks(seed, masks)
    offline = BatchFiller(_MODEL).fill_batch(batch)

    coalescer = DeadlineCoalescer(
        BatchFiller(_MODEL),
        max_batch_rows=max_batch_rows,
        # Wide margin so leftover flushes fire ~50 ms after enqueue
        # instead of sitting out the whole deadline.
        flush_margin=0.45,
    )
    coalescer.start()
    try:
        with ThreadPoolExecutor(max_workers=len(batch)) as pool:
            outcomes = list(
                pool.map(
                    lambda row: coalescer.fill(row, timeout=0.5), batch
                )
            )
    finally:
        coalescer.stop()

    for i, outcome in enumerate(outcomes):
        np.testing.assert_array_equal(
            outcome.filled,
            offline.filled[i],
            err_msg=(
                f"row {i} diverged (max_batch_rows={max_batch_rows})"
            ),
        )
        assert outcome.case == offline.cases[i]
        assert 1 <= outcome.flush_rows <= max(max_batch_rows, 1)
