"""Tenant-addressable HTTP serving over a mounted model store.

With a :class:`~repro.store.ModelStore` mounted, one
:class:`~repro.serve.http.HttpApiServer` serves every namespace in the
store: the bare ``/v1/*`` routes hit the default tenant, the
``/v1/tenants/<tenant>/*`` routes hit any other (created lazily, each
with its own registry + operator cache so versions from different
tenants can never collide in a cache key), and a store watcher adopts
publishes made by other processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BatchFiller, ModelRegistry
from repro.serve.http import HttpApiServer
from repro.store import ModelStore

from tests.serve.conftest import http_get, http_post
from tests.store.conftest import make_model

pytestmark = [pytest.mark.serve, pytest.mark.store]


def _row(model) -> list:
    row = [2.0] * len(model.schema_.names)
    row[-1] = None
    return row


@pytest.fixture
def store(tmp_path):
    store = ModelStore(tmp_path / "store")
    store.publish(make_model(0), namespace="acme/sales")
    store.publish(make_model(1), namespace="globex")
    return store


@pytest.fixture
def api(store):
    server = HttpApiServer(
        store=store, tenant="acme/sales", port=0, watch_interval=0.02
    )
    server.start()
    yield server
    server.stop()


class TestRouting:
    def test_default_routes_serve_the_default_tenant(self, api, store):
        _, model = store.load("acme/sales")
        status, body, _ = http_post(
            api.url + "/v1/fill", {"row": _row(model), "timeout_ms": 2000}
        )
        assert status == 200
        assert body["fingerprint"] == model.fingerprint()
        # The explicit tenant path answers identically.
        status, explicit, _ = http_post(
            api.url + "/v1/tenants/acme/sales/fill",
            {"row": _row(model), "timeout_ms": 2000},
        )
        assert status == 200
        assert explicit["filled"] == body["filled"]

    def test_tenant_routes_serve_their_own_models(self, api, store):
        _, globex = store.load("globex")
        status, body, _ = http_post(
            api.url + "/v1/tenants/globex/fill",
            {"row": _row(globex), "timeout_ms": 2000},
        )
        assert status == 200
        assert body["fingerprint"] == globex.fingerprint()
        offline = BatchFiller(globex).fill_batch(
            np.array([[2.0] * (len(globex.schema_.names) - 1) + [np.nan]])
        )
        assert body["filled"] == [float(v) for v in offline.filled[0]]

    def test_unknown_tenant_is_404(self, api):
        status, body, _ = http_post(
            api.url + "/v1/tenants/nobody/fill",
            {"row": [1.0, None, None], "timeout_ms": 2000},
        )
        assert status == 404
        assert "nobody" in body["error"]

    def test_invalid_tenant_name_is_400(self, api):
        status, body, _ = http_post(
            api.url + "/v1/tenants/..%2fescape/fill",
            {"row": [1.0, None, None], "timeout_ms": 2000},
        )
        assert status in (400, 404)

    def test_tenant_listing(self, api):
        status, body, _ = http_get(api.url + "/v1/tenants")
        assert status == 200
        assert body["default"] == "acme/sales"
        names = {entry["name"] for entry in body["tenants"]}
        assert {"acme/sales", "globex"} <= names
        for entry in body["tenants"]:
            assert entry["version"] == 1

    def test_tenant_models_endpoint(self, api, store):
        _, globex = store.load("globex")
        status, body, _ = http_get(api.url + "/v1/tenants/globex/models")
        assert status == 200
        assert body["tenant"] == "globex"
        assert body["current"]["version"] == 1
        assert body["current"]["fingerprint"] == globex.fingerprint()
        status, body, _ = http_get(api.url + "/v1/tenants/nobody/models")
        assert status == 404

    def test_storeless_server_has_no_tenant_routes(self):
        server = HttpApiServer(make_model(0), port=0)
        server.start()
        try:
            status, _, _ = http_get(server.url + "/v1/tenants")
            assert status == 404
            status, _, _ = http_post(
                server.url + "/v1/tenants/x/fill",
                {"row": [1.0, None, None], "timeout_ms": 2000},
            )
            assert status == 404
        finally:
            server.stop()


class TestLifecycle:
    def test_late_published_tenant_becomes_servable(self, api, store):
        newcomer = make_model(2)
        store.publish(newcomer, namespace="newco")
        status, body, _ = http_post(
            api.url + "/v1/tenants/newco/fill",
            {"row": _row(newcomer), "timeout_ms": 2000},
        )
        assert status == 200
        assert body["fingerprint"] == newcomer.fingerprint()
        # And it shows up in the listing.
        _, listing, _ = http_get(api.url + "/v1/tenants")
        assert "newco" in {entry["name"] for entry in listing["tenants"]}

    def test_watcher_hot_swaps_remote_publishes(self, api, store):
        import time

        other_process = ModelStore(store.root)  # separate store handle
        swapped = make_model(5)
        other_process.publish(swapped, namespace="globex")
        deadline = time.time() + 10.0
        version = 0
        while time.time() < deadline:
            _, body, _ = http_get(api.url + "/v1/tenants/globex/models")
            version = body["current"]["version"]
            if version == 2:
                break
            time.sleep(0.02)
        assert version == 2
        assert body["current"]["fingerprint"] == swapped.fingerprint()

    def test_source_model_is_published_into_the_store(self, tmp_path):
        # Booting with BOTH a source model and an empty store seeds the
        # default tenant durably -- a restart without the model file
        # serves the same fingerprint.
        model = make_model(0)
        server = HttpApiServer(
            model, store=ModelStore(tmp_path), tenant="seeded", port=0
        )
        try:
            assert server.registry.current().version == 1
        finally:
            server.stop()
        revived = ModelRegistry(
            store=ModelStore(tmp_path), namespace="seeded"
        )
        assert revived.current().fingerprint == model.fingerprint()

    def test_same_fingerprint_is_not_republished(self, tmp_path):
        model = make_model(0)
        store = ModelStore(tmp_path)
        for _ in range(2):
            server = HttpApiServer(
                model, store=store, tenant="seeded", port=0
            )
            server.stop()
        assert store.versions("seeded") == [1]

    def test_store_validation(self, tmp_path, store):
        with pytest.raises(ValueError, match="source, a store, or both"):
            HttpApiServer(port=0)
        with pytest.raises(ValueError, match="tenant routing requires"):
            HttpApiServer(make_model(0), tenant="acme", port=0)
        with pytest.raises(ValueError, match="watch_interval"):
            HttpApiServer(store=store, port=0, watch_interval=-1.0)
        registry = ModelRegistry(make_model(0))
        with pytest.raises(ValueError, match="must be the server's store"):
            HttpApiServer(registry, store=store, port=0)
