"""Unit tests for the vectorized, cached batch filler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.reconstruction import (
    CASE_ALL_HOLES,
    CASE_NO_HOLES,
    fill_matrix,
)
from repro.obs.metrics import ServeMetrics
from repro.serve import BatchFiller, ModelRegistry, OperatorCache

from tests.serve.conftest import make_rank2_matrix, punch_holes

pytestmark = pytest.mark.serve


@pytest.fixture
def holey_batch(served_model):
    generator = np.random.default_rng(99)
    return punch_holes(make_rank2_matrix(13, n_rows=60), generator)


class TestExactness:
    def test_batch_matches_fill_matrix_bitwise(self, served_model, holey_batch):
        filler = BatchFiller(served_model)
        result = filler.fill_batch(holey_batch)
        expected = fill_matrix(
            holey_batch, served_model.rules_matrix, served_model.means_
        )
        np.testing.assert_array_equal(result.filled, expected)

    def test_batch_matches_row_by_row_reference_bitwise(
        self, served_model, holey_batch
    ):
        filler = BatchFiller(served_model)
        batched = filler.fill_batch(holey_batch)
        reference = filler.fill_reference(holey_batch)
        np.testing.assert_array_equal(batched.filled, reference.filled)
        assert batched.cases == reference.cases
        assert batched.n_groups == reference.n_groups
        assert batched.n_holes_filled == reference.n_holes_filled

    def test_warm_cache_is_bitwise_identical_to_cold(
        self, served_model, holey_batch
    ):
        filler = BatchFiller(served_model)
        cold = filler.fill_batch(holey_batch)
        assert filler.cache.misses > 0
        warm = filler.fill_batch(holey_batch)
        assert filler.cache.hits >= filler.cache.misses
        np.testing.assert_array_equal(warm.filled, cold.filled)

    def test_fill_row_matches_row_inside_batch(self, served_model, holey_batch):
        filler = BatchFiller(served_model)
        batched = filler.fill_batch(holey_batch)
        for i in (0, 17, 59):
            single = filler.fill_row(holey_batch[i])
            np.testing.assert_array_equal(single.filled[0], batched.filled[i])

    def test_min_norm_policy_matches_reference(self, served_model):
        generator = np.random.default_rng(5)
        batch = punch_holes(
            make_rank2_matrix(17, n_rows=40), generator, rate=0.7
        )
        filler = BatchFiller(served_model, underdetermined="min-norm")
        batched = filler.fill_batch(batch)
        reference = filler.fill_reference(batch)
        np.testing.assert_array_equal(batched.filled, reference.filled)


class TestFastPaths:
    def test_zero_hole_rows_never_touch_the_cache(self, served_model):
        complete = make_rank2_matrix(19, n_rows=10)
        filler = BatchFiller(served_model)
        result = filler.fill_batch(complete)
        np.testing.assert_array_equal(result.filled, complete)
        assert result.cases == (CASE_NO_HOLES,) * 10
        assert result.n_groups == 0
        assert result.n_holes_filled == 0
        assert len(filler.cache) == 0
        assert filler.cache.misses == 0
        assert filler.metrics.n_rows_no_holes == 10

    def test_all_holes_rows_get_the_means(self, served_model):
        batch = np.full((3, 5), np.nan)
        filler = BatchFiller(served_model)
        result = filler.fill_batch(batch)
        for row in result.filled:
            np.testing.assert_array_equal(row, served_model.means_)
        assert result.cases == (CASE_ALL_HOLES,) * 3
        assert len(filler.cache) == 0  # degenerate pattern is not cached

    def test_empty_batch(self, served_model):
        filler = BatchFiller(served_model)
        result = filler.fill_batch(np.empty((0, 5)))
        assert result.n_rows == 0
        assert result.cases == ()
        assert result.n_groups == 0


class TestAttribution:
    def test_result_carries_version_and_fingerprint(
        self, served_model, retrained_model, holey_batch
    ):
        registry = ModelRegistry(served_model)
        filler = BatchFiller(registry)
        first = filler.fill_batch(holey_batch)
        registry.publish(retrained_model)
        second = filler.fill_batch(holey_batch)
        assert (first.version, second.version) == (1, 2)
        assert first.fingerprint == served_model.fingerprint()
        assert second.fingerprint == retrained_model.fingerprint()
        # Different learned state must actually produce different fills.
        assert not np.array_equal(first.filled, second.filled)

    def test_cache_keys_are_version_scoped(
        self, served_model, retrained_model, holey_batch
    ):
        registry = ModelRegistry(served_model)
        filler = BatchFiller(registry)
        filler.fill_batch(holey_batch)
        entries_v1 = len(filler.cache)
        registry.publish(retrained_model)
        filler.fill_batch(holey_batch)
        assert len(filler.cache) == 2 * entries_v1
        assert filler.cache.evict_version(1) == entries_v1


class TestSharingAndValidation:
    def test_fillers_can_share_one_cache(self, served_model, holey_batch):
        cache = OperatorCache(64)
        first = BatchFiller(served_model, cache=cache)
        second = BatchFiller(served_model, cache=cache)
        first.fill_batch(holey_batch)
        misses_after_first = cache.misses
        second.fill_batch(holey_batch)
        # Same model object -> same fingerprint is irrelevant; keys are
        # version-scoped, and both private registries assign version 1.
        assert cache.misses == misses_after_first

    def test_width_mismatch_rejected(self, served_model):
        filler = BatchFiller(served_model)
        with pytest.raises(ValueError, match="columns"):
            filler.fill_batch(np.zeros((2, 4)))

    def test_one_dimensional_input_rejected(self, served_model):
        filler = BatchFiller(served_model)
        with pytest.raises(ValueError, match="2-d"):
            filler.fill_batch(np.zeros(5))
        with pytest.raises(ValueError, match="1-d"):
            filler.fill_row(np.zeros((2, 5)))

    def test_infinities_rejected(self, served_model):
        filler = BatchFiller(served_model)
        batch = np.zeros((2, 5))
        batch[0, 0] = np.inf
        with pytest.raises(ValueError, match="infinit"):
            filler.fill_batch(batch)

    def test_bad_underdetermined_policy_rejected(self, served_model):
        with pytest.raises(ValueError, match="underdetermined"):
            BatchFiller(served_model, underdetermined="zero")


class TestMetrics:
    def test_batch_counters(self, served_model):
        batch = make_rank2_matrix(23, n_rows=8)
        batch[0] = np.nan           # all holes
        batch[1, 2] = np.nan        # pattern {2}
        batch[2, 2] = np.nan        # pattern {2} again
        batch[3, 0] = np.nan        # pattern {0}
        metrics = ServeMetrics()
        filler = BatchFiller(served_model, metrics=metrics)
        filler.fill_batch(batch)
        assert metrics.n_batches == 1
        assert metrics.n_rows == 8
        assert metrics.n_rows_all_holes == 1
        assert metrics.n_rows_no_holes == 4
        assert metrics.n_rows_filled == 3
        assert metrics.n_holes_filled == 5 + 3
        assert sorted(metrics.group_sizes) == [1, 2]
        assert metrics.n_groups == 2
        assert metrics.n_publishes == 1  # the wrapped model's publish
        assert metrics.cache_misses == 2
        assert 0.0 <= metrics.cache_hit_rate <= 1.0
        assert metrics.rows_per_second > 0.0
