"""Unit tests for the versioned model registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariance import StreamingCovariance
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema
from repro.obs.metrics import ServeMetrics
from repro.serve import ModelRegistry, NoModelPublishedError, PublishedModel

from tests.serve.conftest import make_rank2_matrix

pytestmark = pytest.mark.serve


class TestPublish:
    def test_versions_are_monotonic(self, served_model, retrained_model):
        registry = ModelRegistry()
        first = registry.publish(served_model)
        second = registry.publish(retrained_model)
        third = registry.publish(served_model)
        assert (first.version, second.version, third.version) == (1, 2, 3)
        assert registry.current() is third
        assert registry.latest_version == 3

    def test_constructor_model_is_version_one(self, served_model):
        registry = ModelRegistry(served_model)
        snapshot = registry.current()
        assert snapshot.version == 1
        assert snapshot.model is served_model

    def test_unfitted_model_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="fitted"):
            registry.publish(RatioRuleModel())

    def test_snapshot_records_fingerprint_and_time(self, served_model):
        registry = ModelRegistry()
        snapshot = registry.publish(served_model)
        assert isinstance(snapshot, PublishedModel)
        assert snapshot.fingerprint == served_model.fingerprint()
        assert snapshot.published_at > 0.0

    def test_publish_counts_into_metrics(self, served_model, retrained_model):
        metrics = ServeMetrics()
        registry = ModelRegistry(served_model, metrics=metrics)
        registry.publish(retrained_model)
        assert metrics.n_publishes == 2


class TestSchemaGuard:
    def test_schema_change_rejected_by_default(self, served_model):
        registry = ModelRegistry(served_model)
        narrow = RatioRuleModel(cutoff=1).fit(
            make_rank2_matrix(3, n_cols=3)
        )
        assert narrow.schema_.names != served_model.schema_.names
        with pytest.raises(ValueError, match="schema change"):
            registry.publish(narrow)
        assert registry.latest_version == 1

    def test_schema_change_allowed_when_explicit(self, served_model):
        registry = ModelRegistry(served_model)
        narrow = RatioRuleModel(cutoff=1).fit(
            make_rank2_matrix(3, n_cols=3)
        )
        snapshot = registry.publish(narrow, allow_schema_change=True)
        assert snapshot.version == 2


class TestReading:
    def test_current_raises_before_any_publish(self):
        registry = ModelRegistry()
        assert registry.latest_version == 0
        with pytest.raises(NoModelPublishedError):
            registry.current()

    def test_repr(self, served_model):
        registry = ModelRegistry()
        assert "unpublished" in repr(registry)
        registry.publish(served_model)
        assert "version=1" in repr(registry)


class TestRefitPaths:
    def test_refit_and_publish_matches_plain_fit(self):
        matrix = make_rank2_matrix(21)
        registry = ModelRegistry(RatioRuleModel(cutoff=2).fit(matrix))
        shards = np.array_split(make_rank2_matrix(22), 3)
        snapshot = registry.refit_and_publish(shards, cutoff=2)
        assert snapshot.version == 2
        reference = RatioRuleModel(cutoff=2).fit(make_rank2_matrix(22))
        np.testing.assert_allclose(
            snapshot.model.rules_matrix, reference.rules_matrix, atol=1e-8
        )

    def test_publish_from_accumulator(self):
        matrix = make_rank2_matrix(31, n_cols=3)
        schema = TableSchema.from_names(["a", "b", "c"])
        accumulator = StreamingCovariance(3)
        accumulator.update(matrix)
        registry = ModelRegistry()
        snapshot = registry.publish_from_accumulator(
            accumulator, schema, cutoff=2
        )
        assert snapshot.version == 1
        reference = RatioRuleModel(cutoff=2).fit(matrix)
        np.testing.assert_allclose(
            snapshot.model.rules_matrix, reference.rules_matrix, atol=1e-8
        )
