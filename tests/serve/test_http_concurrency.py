"""End-to-end concurrency tests for the HTTP serving tier.

Two guarantees under fire:

* **Coalescing exactness** (the acceptance test): 64 concurrent
  single-row fill requests ride shared micro-batches -- provably so,
  via :class:`~repro.obs.metrics.ServeHttpMetrics` -- and every
  response is bit-identical to the offline
  :meth:`~repro.serve.BatchFiller.fill_batch` answer for that row.
* **Hot-swap safety over the wire** (the PR 3 stress pattern, one
  layer up): readers keep filling over HTTP while a writer publishes
  8 versions; every response's payload matches the ground truth of
  the version it claims -- a flush can never tear across a swap.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.reconstruction import fill_matrix
from repro.serve import BatchFiller, ModelRegistry
from repro.serve.http import HttpApiServer

from tests.serve.conftest import (
    http_post,
    make_rank2_matrix,
    punch_holes,
)

pytestmark = pytest.mark.serve

N_CLIENTS = 64


def _row_payload(row) -> list:
    return [None if np.isnan(value) else float(value) for value in row]


def test_concurrent_fills_coalesce_and_stay_bit_identical(served_model):
    """The e2e acceptance test: boot on an ephemeral port, fire 64
    concurrent single-row fills, prove (a) at least one flush batched
    more than one row and (b) every response is bit-exact."""
    rows = punch_holes(
        make_rank2_matrix(21, n_rows=N_CLIENTS), np.random.default_rng(21)
    )
    offline = BatchFiller(served_model).fill_batch(rows)

    api = HttpApiServer(
        served_model,
        port=0,
        max_batch_rows=16,
        flush_margin=0.025,
        queue_limit=N_CLIENTS * 2,
    )
    api.start()
    start = threading.Barrier(N_CLIENTS)
    responses = [None] * N_CLIENTS
    try:
        def client(i):
            start.wait()
            responses[i] = http_post(
                api.url + "/v1/fill",
                {"row": _row_payload(rows[i]), "timeout_ms": 300},
            )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        api.stop()

    for i, (status, body, _) in enumerate(responses):
        assert status == 200, f"client {i}: {body}"
        # Bit-identical to the offline batch answer for this row: JSON
        # floats survive the HTTP round trip exactly.
        assert body["filled"] == [float(v) for v in offline.filled[i]], i
        assert body["case"] == offline.cases[i]
        assert body["version"] == offline.version

    metrics = api.metrics
    # (a) Coalescing actually happened, asserted via ServeHttpMetrics.
    assert metrics.max_flush_rows > 1
    assert max(body["coalesced_rows"] for _, body, _ in responses) > 1
    # Every request is accounted for: served through flushes, none
    # shed, none expired, none errored.
    assert metrics.n_rows_coalesced == N_CLIENTS
    assert sum(metrics.flush_sizes) == N_CLIENTS
    assert metrics.n_fill_requests == N_CLIENTS
    assert metrics.n_rejected == 0
    assert metrics.n_errors == 0
    assert metrics.coalesce_seconds > 0.0


def test_hot_swap_under_concurrent_http_fills(served_model):
    n_readers, n_versions, passes = 4, 8, 2
    models = [served_model] + [
        RatioRuleModel(cutoff=2).fit(make_rank2_matrix(200 + i))
        for i in range(1, n_versions)
    ]
    batch = punch_holes(
        make_rank2_matrix(77, n_rows=6), np.random.default_rng(77)
    )
    expected = {
        version: fill_matrix(batch, model.rules_matrix, model.means_)
        for version, model in enumerate(models, start=1)
    }
    fingerprints = {
        version: model.fingerprint()
        for version, model in enumerate(models, start=1)
    }

    registry = ModelRegistry(models[0])
    api = HttpApiServer(
        registry, port=0, max_batch_rows=8, flush_margin=0.1
    )
    api.start()
    start = threading.Barrier(n_readers + 1)
    observed = [[] for _ in range(n_readers)]
    errors = []
    try:
        def reader(slot):
            try:
                start.wait()
                for _ in range(passes):
                    for i in range(batch.shape[0]):
                        status, body, _ = http_post(
                            api.url + "/v1/fill",
                            {
                                "row": _row_payload(batch[i]),
                                "timeout_ms": 120,
                            },
                        )
                        observed[slot].append((i, status, body))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            start.wait()
            for model in models[1:]:
                registry.publish(model)

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(n_readers)
        ]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        api.stop()

    assert not errors
    for slot in range(n_readers):
        # No dropped requests: every fill produced a response.
        assert len(observed[slot]) == passes * batch.shape[0]
        previous = 0
        for i, status, body in observed[slot]:
            assert status == 200, body
            version = body["version"]
            # Attributable to exactly one published version, whose
            # ground truth the payload matches bit-for-bit -- a torn
            # flush mixing two versions' arrays could not pass this.
            assert version in expected
            assert body["filled"] == [
                float(v) for v in expected[version][i]
            ]
            assert body["fingerprint"] == fingerprints[version]
            # Versions never go backwards within one reader's
            # sequential requests (flush snapshots are monotonic).
            assert version >= previous
            previous = version
