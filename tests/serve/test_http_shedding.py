"""Load-shedding and deadline semantics for the HTTP serving tier.

The admission-control contract: a bounded queue sheds with **429 +
``Retry-After``** when full, a blown deadline -- on arrival or while
queued -- yields **503**, and the ``ServeHttpMetrics`` shed/expired
counters account for **every** rejected request exactly (no rejection
is silent, none is double-counted).

Determinism: the server is built around an injected *gated* filler
whose ``fill_batch`` blocks until the test releases it, so the queue
can be saturated reliably instead of racing real compute.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import ServeHttpMetrics
from repro.serve import BatchFiller
from repro.serve.http import (
    DeadlineCoalescer,
    DeadlineExpiredError,
    QueueFullError,
    HttpApiServer,
)

from tests.serve.conftest import http_post

pytestmark = pytest.mark.serve

N_COLS = 5
QUEUE_LIMIT = 3


class GatedFiller(BatchFiller):
    """A real filler whose ``fill_batch`` blocks until released."""

    def __init__(self, source) -> None:
        super().__init__(source)
        self.entered = threading.Event()
        self.release = threading.Event()

    def fill_batch(self, matrix):
        self.entered.set()
        assert self.release.wait(timeout=30.0), "gate never released"
        return super().fill_batch(matrix)


@pytest.fixture
def gated_server(served_model):
    """A server whose first flush parks inside ``fill_batch`` until the
    test releases the gate, with a queue of ``QUEUE_LIMIT``."""
    filler = GatedFiller(served_model)
    api = HttpApiServer(
        filler,
        port=0,
        max_batch_rows=1,
        flush_margin=0.0,
        queue_limit=QUEUE_LIMIT,
    )
    api.start()
    yield api, filler
    filler.release.set()
    api.stop()


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.002)


def _post_fill(api, *, timeout_ms, background=False):
    payload = {
        "row": [None] + [1.0] * (N_COLS - 1),
        "timeout_ms": timeout_ms,
    }
    if not background:
        return http_post(api.url + "/v1/fill", payload)
    result = {}

    def run():
        result["response"] = http_post(api.url + "/v1/fill", payload)

    thread = threading.Thread(target=run)
    thread.start()
    return thread, result


def test_shedding_and_expiry_account_for_every_rejection(gated_server):
    api, filler = gated_server
    metrics = api.metrics

    # 1. One request is drained by the batcher and parks in the gate.
    in_flight = _post_fill(api, timeout_ms=30_000, background=True)
    assert filler.entered.wait(timeout=5.0)

    # 2. Fill the bounded queue behind the parked flush: patient
    #    requests in every slot but the last, then one whose deadline
    #    will lapse while it waits.
    queued = [
        _post_fill(api, timeout_ms=30_000, background=True)
        for _ in range(QUEUE_LIMIT - 1)
    ]
    expiring = _post_fill(api, timeout_ms=40, background=True)
    _wait_until(lambda: metrics.queue_depth == QUEUE_LIMIT)

    # 3. Admission control: the queue is full, so the next request is
    #    shed with 429 and a Retry-After header.
    status, body, headers = _post_fill(api, timeout_ms=30_000)
    assert status == 429
    assert "queue full" in body["error"]
    assert headers["Retry-After"] == str(api.retry_after_seconds)

    # 4. Deadline already blown on arrival: immediate 503, not queued
    #    (checked before admission, so a full queue cannot mask it).
    status, body, _ = _post_fill(api, timeout_ms=0)
    assert status == 503
    assert "deadline already blown" in body["error"]

    time.sleep(0.08)  # let the queued 40 ms deadline lapse

    # 5. Release the gate: the parked flush and the queued requests
    #    complete; the expired one comes back 503.
    filler.release.set()
    for thread, result in [in_flight] + queued:
        thread.join(timeout=10.0)
        assert result["response"][0] == 200
    thread, result = expiring
    thread.join(timeout=10.0)
    status, body, _ = result["response"]
    assert status == 503
    assert "expired while queued" in body["error"]

    # 6. Exact accounting: one shed (429), two expired (the on-arrival
    #    rejection and the in-queue lapse) -- nothing else.
    assert metrics.n_shed_queue_full == 1
    assert metrics.n_expired == 2
    assert metrics.n_rejected == 3
    assert metrics.n_errors == 0
    # Every admitted-and-live request was served through a flush.
    assert metrics.n_rows_coalesced == 1 + (QUEUE_LIMIT - 1)
    assert metrics.queue_depth_peak == QUEUE_LIMIT


def test_coalescer_level_shedding_counters(served_model):
    """Same contract one layer down, without HTTP in the loop."""
    metrics = ServeHttpMetrics()
    filler = GatedFiller(served_model)
    coalescer = DeadlineCoalescer(
        filler,
        max_batch_rows=1,
        flush_margin=0.0,
        queue_limit=2,
        metrics=metrics,
    )
    coalescer.start()
    row = np.full(N_COLS, np.nan)
    try:
        tickets = [coalescer.submit(row, timeout=30.0)]
        assert filler.entered.wait(timeout=5.0)
        tickets += [coalescer.submit(row, timeout=30.0) for _ in range(2)]
        with pytest.raises(QueueFullError):
            coalescer.submit(row, timeout=30.0)
        with pytest.raises(DeadlineExpiredError):
            coalescer.submit(row, timeout=-1.0)
        assert metrics.n_shed_queue_full == 1
        assert metrics.n_expired == 1
    finally:
        filler.release.set()
        coalescer.stop()
    for ticket in tickets:
        assert ticket.error is None and ticket.result is not None
    assert metrics.n_rows_coalesced == 3


def test_queue_depth_gauge_tracks_enqueue_and_flush(served_model):
    filler = GatedFiller(served_model)
    metrics = ServeHttpMetrics()
    coalescer = DeadlineCoalescer(
        filler,
        max_batch_rows=1,
        flush_margin=0.0,
        queue_limit=8,
        metrics=metrics,
    )
    coalescer.start()
    row = np.full(N_COLS, np.nan)
    try:
        coalescer.submit(row, timeout=30.0)
        assert filler.entered.wait(timeout=5.0)
        coalescer.submit(row, timeout=30.0)
        coalescer.submit(row, timeout=30.0)
        _wait_until(lambda: metrics.queue_depth == 2)
        assert metrics.queue_depth_peak == 2
    finally:
        filler.release.set()
        coalescer.stop()
    # After the final drain the gauge reads an empty queue.
    assert metrics.queue_depth == 0
