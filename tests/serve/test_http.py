"""Tests for the HTTP serving tier: endpoints, coalescer, lifecycle.

The load-bearing contract: a row served over HTTP through the
deadline coalescer is **bit-identical** to the same row served through
:meth:`repro.serve.BatchFiller.fill_batch` offline -- JSON floats
round-trip exactly (shortest-round-trip repr), and the coalesced flush
runs the very same kernel.  Everything else here is the protocol
surface: validation (400), shedding (429), expiry (503), routing
(404), and the shared :class:`repro.obs.export.HttpService` lifecycle.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.recommend import BasketRecommender
from repro.core.whatif import Scenario, evaluate_scenario
from repro.obs.export import HttpService
from repro.obs.metrics import ServeHttpMetrics
from repro.serve import BatchFiller, ModelRegistry
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_TIMEOUT_SECONDS,
    CoalescerStoppedError,
    DeadlineCoalescer,
    DeadlineExpiredError,
    HttpApiServer,
    _BadRequest,
    _Ticket,
)

from tests.serve.conftest import http_get, http_post, make_rank2_matrix

pytestmark = pytest.mark.serve

N_COLS = 5


@pytest.fixture
def server(served_model):
    """A live API server on an ephemeral port.

    A lone request is flushed at ``deadline - flush_margin``, so the
    wide margin here makes single-request tests flush ~10 ms after
    enqueue instead of sitting out the whole deadline.
    """
    api = HttpApiServer(
        served_model,
        port=0,
        max_batch_rows=8,
        flush_margin=0.05,
        default_timeout_ms=60.0,
    )
    api.start()
    yield api
    api.stop()


def _row_payload(row) -> list:
    return [None if np.isnan(value) else float(value) for value in row]


class TestFillEndpoint:
    def test_served_row_bit_identical_to_offline_batch(
        self, server, served_model
    ):
        row = make_rank2_matrix(3, n_rows=1)[0]
        row[1] = np.nan
        row[3] = np.nan
        status, body, _ = http_post(
            server.url + "/v1/fill", {"row": _row_payload(row)}
        )
        assert status == 200
        offline = BatchFiller(served_model).fill_batch(row[None, :])
        # Exact equality, not approx: JSON round-trips float64 bits.
        assert body["filled"] == [float(v) for v in offline.filled[0]]
        assert body["case"] == offline.cases[0]
        assert body["version"] == 1
        assert body["fingerprint"] == served_model.fingerprint()
        assert body["coalesced_rows"] >= 1

    def test_complete_row_passes_through_untouched(self, server):
        row = make_rank2_matrix(4, n_rows=1)[0]
        status, body, _ = http_post(
            server.url + "/v1/fill", {"row": _row_payload(row)}
        )
        assert status == 200
        assert body["case"] == "no-holes"
        assert body["filled"] == [float(v) for v in row]

    @pytest.mark.parametrize(
        ("payload", "fragment"),
        [
            ({}, "must be a JSON array"),
            ({"row": "nope"}, "must be a JSON array"),
            ({"row": [1.0, 2.0]}, "expects 5"),
            ({"row": [1.0, None, None, None, "x"]}, "number or null"),
            ({"row": [1.0, None, None, None, True]}, "number or null"),
            ({"row": [0.0, 1.0, 2.0, 3.0, 4.0], "timeout_ms": "soon"},
             "timeout_ms"),
        ],
    )
    def test_validation_failures_are_400(self, server, payload, fragment):
        status, body, _ = http_post(server.url + "/v1/fill", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_infinity_cell_rejected(self, server):
        status, body, _ = http_post(
            server.url + "/v1/fill", {"row": [1e999, 1, 2, 3, 4]}
        )
        assert status == 400
        assert "infinite" in body["error"]

    def test_non_object_body_rejected(self, server):
        status, body, _ = http_post(server.url + "/v1/fill", [1, 2, 3])
        assert status == 400
        assert "JSON object" in body["error"]

    def test_bad_requests_are_counted(self, server):
        http_post(server.url + "/v1/fill", {"row": [1.0]})
        assert server.metrics.n_bad_requests == 1
        assert server.metrics.n_fill_requests == 1

    def test_non_finite_timeout_is_400_and_not_fatal(self, server):
        """Regression: json.loads parses Infinity/NaN; before the
        finiteness check an infinite deadline overflowed the batcher's
        condition wait and killed the coalescer thread for good."""
        row = [0.0, 1.0, 2.0, 3.0, 4.0]
        for bad in (float("inf"), float("-inf"), float("nan")):
            status, body, _ = http_post(
                server.url + "/v1/fill", {"row": row, "timeout_ms": bad}
            )
            assert status == 400
            assert "finite" in body["error"]
        # The batcher survived: a normal request still serves.
        status, body, _ = http_post(server.url + "/v1/fill", {"row": row})
        assert status == 200
        assert server.coalescer.running


class TestWhatifEndpoint:
    def test_matches_evaluate_scenario(self, server, served_model):
        scenario = Scenario(fixed={"col0": 6.0}, scaled={"col2": 1.5})
        expected = evaluate_scenario(served_model, scenario)
        status, body, _ = http_post(
            server.url + "/v1/whatif",
            {"set": {"col0": 6.0}, "scale": {"col2": 1.5}},
        )
        assert status == 200
        assert body["case"] == expected.case
        assert sorted(body["specified"]) == sorted(expected.specified)
        for name in served_model.schema_.names:
            assert body["values"][name] == expected[name], name

    @pytest.mark.parametrize(
        ("payload", "fragment"),
        [
            ({}, "at least one attribute"),
            ({"set": {"nope": 1.0}}, "unknown attribute"),
            ({"set": {"col0": 1.0}, "scale": {"col0": 2.0}},
             "both set and scaled"),
            ({"set": {"col0": "much"}}, "must be a number"),
            ({"set": [1, 2]}, "JSON object"),
        ],
    )
    def test_validation_failures_are_400(self, server, payload, fragment):
        status, body, _ = http_post(server.url + "/v1/whatif", payload)
        assert status == 400
        assert fragment in body["error"]


class TestOutlierEndpoint:
    def test_residual_matches_model_reconstruction(
        self, server, served_model
    ):
        row = make_rank2_matrix(5, n_rows=1)[0]
        status, body, _ = http_post(
            server.url + "/v1/outlier", {"row": _row_payload(row)}
        )
        assert status == 200
        reconstructed = served_model.reconstruct(row[None, :])[0]
        assert body["reconstructed"] == [float(v) for v in reconstructed]
        assert body["residual"] == float(
            np.linalg.norm(row - reconstructed)
        )
        assert body["cell_errors"] == [
            float(v) for v in (row - reconstructed)
        ]

    def test_incomplete_row_rejected(self, server):
        status, body, _ = http_post(
            server.url + "/v1/outlier", {"row": [1.0, None, 2.0, 3.0, 4.0]}
        )
        assert status == 400
        assert "complete row" in body["error"]


class TestRecommendEndpoint:
    def test_matches_basket_recommender(self, server, served_model):
        basket = {"col0": 4.0, "col1": 9.0}
        expected = BasketRecommender(served_model).recommend(basket, top_n=2)
        status, body, _ = http_post(
            server.url + "/v1/recommend", {"basket": basket, "top_n": 2}
        )
        assert status == 200
        assert [r["product"] for r in body["recommendations"]] == [
            r.product for r in expected
        ]
        assert [r["predicted_spend"] for r in body["recommendations"]] == [
            r.predicted_spend for r in expected
        ]
        assert [r["uplift"] for r in body["recommendations"]] == [
            r.uplift for r in expected
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"basket": {}},
            {"basket": {"unknown_product": 1.0}},
            {"basket": {"col0": 1.0}, "top_n": "three"},
            {"basket": {"col0": 1.0}, "ranking": "chaotic"},
        ],
    )
    def test_validation_failures_are_400(self, server, payload):
        status, _, _ = http_post(server.url + "/v1/recommend", payload)
        assert status == 400


class TestGetEndpoints:
    def test_models_describes_the_served_version(self, server, served_model):
        status, body, _ = http_get(server.url + "/v1/models")
        assert status == 200
        current = body["current"]
        assert current["version"] == 1
        assert current["fingerprint"] == served_model.fingerprint()
        assert current["k"] == served_model.k
        assert current["n_rows"] == served_model.n_rows_
        assert current["columns"] == served_model.schema_.names
        assert current["published_at"] > 0

    def test_healthz_ok(self, server):
        status, body, _ = http_get(server.url + "/healthz")
        assert (status, body["status"]) == (200, "ok")
        assert body["version"] == 1

    def test_unpublished_registry_is_503_but_models_is_200(self):
        api = HttpApiServer(ModelRegistry(), port=0)
        api.start()
        try:
            status, body, _ = http_get(api.url + "/healthz")
            assert status == 503
            status, body, _ = http_get(api.url + "/v1/models")
            assert (status, body["current"]) == (200, None)
            status, body, _ = http_post(api.url + "/v1/fill", {"row": []})
            assert status == 503
            assert "no model published" in body["error"]
        finally:
            api.stop()

    def test_unknown_paths_are_404(self, server):
        assert http_get(server.url + "/v1/nope")[0] == 404
        assert http_post(server.url + "/v1/nope", {})[0] == 404

    def test_healthz_503_when_batcher_thread_dead(self, server):
        """Health must reflect thread liveness, not lifecycle flags."""
        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        real = server.coalescer._thread
        server.coalescer._thread = dead
        try:
            status, body, _ = http_get(server.url + "/healthz")
            assert status == 503
            assert "coalescer" in body["error"]
        finally:
            server.coalescer._thread = real
        assert http_get(server.url + "/healthz")[0] == 200


class TestKeepAliveSafety:
    """Rejected-without-reading bodies must not bleed into the next
    request on an HTTP/1.1 keep-alive connection."""

    @staticmethod
    def _raw_post(server, headers: str, body: bytes) -> bytes:
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.settimeout(10)
            sock.sendall(
                (
                    "POST /v1/fill HTTP/1.1\r\nHost: t\r\n"
                    "Content-Type: application/json\r\n"
                    f"{headers}\r\n"
                ).encode("ascii")
                + body
            )
            response = b""
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break  # server closed the connection
                response += chunk
        return response

    def test_oversized_body_rejected_and_connection_closed(self, server):
        declared = MAX_BODY_BYTES + 1
        # Send only a sliver of the declared body: the server must not
        # read it, respond 400, and hang up (instead of parsing the
        # leftover bytes as the next request line).
        response = self._raw_post(
            server, f"Content-Length: {declared}\r\n", b'{"row": [1,'
        )
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"connection: close" in response.lower()

    def test_chunked_body_rejected_and_connection_closed(self, server):
        response = self._raw_post(
            server,
            "Transfer-Encoding: chunked\r\n",
            b"5\r\n{\"row\r\n0\r\n\r\n",
        )
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"connection: close" in response.lower()

    def test_unroutable_post_closes_connection(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.settimeout(10)
            sock.sendall(
                b"POST /v1/nope HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 8\r\n\r\n"
            )  # body intentionally never sent
            response = b""
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                response += chunk
        assert b"404" in response.split(b"\r\n", 1)[0]
        assert b"connection: close" in response.lower()


class TestServerLifecycle:
    def test_is_an_http_service(self, served_model):
        assert issubclass(HttpApiServer, HttpService)

    def test_double_start_rejected_stop_idempotent(self, served_model):
        api = HttpApiServer(served_model, port=0)
        api.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                api.start()
        finally:
            api.stop()
        api.stop()  # no-op
        assert not api.coalescer.running

    def test_context_manager(self, served_model):
        with HttpApiServer(served_model, port=0) as api:
            assert api.running and api.coalescer.running
            assert http_get(api.url + "/healthz")[0] == 200
        assert not api.running and not api.coalescer.running

    def test_accepts_registry_and_prebuilt_filler(self, served_model):
        registry = ModelRegistry(served_model)
        from_registry = HttpApiServer(registry, port=0)
        assert from_registry.registry is registry
        filler = BatchFiller(registry)
        from_filler = HttpApiServer(filler, port=0)
        assert from_filler.filler is filler
        assert from_filler.registry is registry

    def test_invalid_tuning_rejected(self, served_model):
        with pytest.raises(ValueError, match="max_batch_rows"):
            HttpApiServer(served_model, max_batch_rows=0)
        with pytest.raises(ValueError, match="flush_margin"):
            HttpApiServer(served_model, flush_margin=-0.1)
        with pytest.raises(ValueError, match="queue_limit"):
            HttpApiServer(served_model, queue_limit=0)
        with pytest.raises(ValueError, match="default_timeout_ms"):
            HttpApiServer(served_model, default_timeout_ms=0.0)

    def test_request_counters_cover_get_endpoints(self, server):
        before = server.metrics.n_requests
        http_get(server.url + "/healthz")
        http_get(server.url + "/v1/models")
        http_get(server.url + "/v1/nope")  # 404: not counted
        assert server.metrics.n_requests == before + 2


class TestDeadlineCoalescer:
    def test_fill_bit_identical_to_offline(self, served_model):
        filler = BatchFiller(served_model)
        coalescer = DeadlineCoalescer(filler, flush_margin=0.45)
        coalescer.start()
        try:
            row = make_rank2_matrix(9, n_rows=1)[0]
            row[2] = np.nan
            outcome = coalescer.fill(row, timeout=0.5)
        finally:
            coalescer.stop()
        offline = BatchFiller(served_model).fill_batch(row[None, :])
        np.testing.assert_array_equal(
            outcome.filled, offline.filled[0]
        )
        assert outcome.case == offline.cases[0]
        assert outcome.version == offline.version
        assert outcome.flush_rows == 1
        assert outcome.wait_seconds >= 0.0

    def test_double_start_rejected_and_stop_idempotent(self, served_model):
        coalescer = DeadlineCoalescer(BatchFiller(served_model))
        coalescer.start()
        with pytest.raises(RuntimeError, match="already started"):
            coalescer.start()
        coalescer.stop()
        coalescer.stop()  # no-op
        assert not coalescer.running

    def test_submit_before_start_or_after_stop_refused(self, served_model):
        coalescer = DeadlineCoalescer(BatchFiller(served_model))
        row = np.full(N_COLS, np.nan)
        with pytest.raises(CoalescerStoppedError):
            coalescer.submit(row, timeout=1.0)
        coalescer.start()
        coalescer.stop()
        with pytest.raises(CoalescerStoppedError):
            coalescer.submit(row, timeout=1.0)

    def test_nonpositive_timeout_counts_as_expired(self, served_model):
        metrics = ServeHttpMetrics()
        coalescer = DeadlineCoalescer(
            BatchFiller(served_model), metrics=metrics
        )
        coalescer.start()
        try:
            with pytest.raises(DeadlineExpiredError):
                coalescer.fill(np.full(N_COLS, np.nan), timeout=0.0)
        finally:
            coalescer.stop()
        assert metrics.n_expired == 1

    def test_stop_drains_queued_requests(self, served_model):
        """Graceful shutdown: everything admitted is still served."""
        coalescer = DeadlineCoalescer(
            BatchFiller(served_model),
            max_batch_rows=64,
            flush_margin=0.0,
        )
        coalescer.start()
        rows = make_rank2_matrix(10, n_rows=6)
        rows[:, 1] = np.nan
        tickets = [coalescer.submit(row, timeout=30.0) for row in rows]
        coalescer.stop()
        for ticket in tickets:
            assert ticket.done.is_set()
            assert ticket.error is None
            assert ticket.result is not None

    def test_flush_error_fails_only_that_flush(self, served_model):
        class FlakyFiller:
            def __init__(self, inner):
                self.inner = inner
                self.failures_left = 1

            def fill_batch(self, matrix):
                if self.failures_left:
                    self.failures_left -= 1
                    raise RuntimeError("transient flush failure")
                return self.inner.fill_batch(matrix)

        metrics = ServeHttpMetrics()
        coalescer = DeadlineCoalescer(
            FlakyFiller(BatchFiller(served_model)),
            flush_margin=0.45,
            metrics=metrics,
        )
        coalescer.start()
        try:
            row = np.full(N_COLS, np.nan)
            with pytest.raises(RuntimeError, match="transient"):
                coalescer.fill(row, timeout=0.5)
            # The batcher survives a failing flush; the next one works.
            outcome = coalescer.fill(row, timeout=0.5)
        finally:
            coalescer.stop()
        assert outcome.case == "all-holes"
        assert metrics.n_errors == 1

    def test_invalid_tuning_rejected(self, served_model):
        filler = BatchFiller(served_model)
        with pytest.raises(ValueError, match="max_batch_rows"):
            DeadlineCoalescer(filler, max_batch_rows=0)
        with pytest.raises(ValueError, match="flush_margin"):
            DeadlineCoalescer(filler, flush_margin=-1.0)
        with pytest.raises(ValueError, match="queue_limit"):
            DeadlineCoalescer(filler, queue_limit=0)

    def test_non_finite_timeout_rejected_and_huge_timeout_clamped(
        self, served_model
    ):
        coalescer = DeadlineCoalescer(BatchFiller(served_model))
        coalescer.start()
        try:
            row = np.full(N_COLS, np.nan)
            for bad in (float("inf"), float("nan")):
                with pytest.raises(ValueError, match="finite"):
                    coalescer.submit(row, timeout=bad)
            ticket = coalescer.submit(row, timeout=1e12)
            assert (
                ticket.deadline - time.monotonic()
                <= MAX_TIMEOUT_SECONDS + 1.0
            )
        finally:
            coalescer.stop()

    def test_running_detects_dead_batcher_thread(self, served_model):
        coalescer = DeadlineCoalescer(BatchFiller(served_model))
        coalescer.start()
        try:
            assert coalescer.running
            dead = threading.Thread(target=lambda: None)
            dead.start()
            dead.join()
            real = coalescer._thread
            coalescer._thread = dead
            assert not coalescer.running
            with pytest.raises(CoalescerStoppedError):
                coalescer.submit(np.full(N_COLS, np.nan), timeout=1.0)
            coalescer._thread = real
            assert coalescer.running
        finally:
            coalescer.stop()

    def test_flush_isolates_stale_width_tickets(self, served_model):
        """A hot-swap mid-queue can leave rows whose width no longer
        matches the flush-time model; they must fail alone (400-class)
        without poisoning same-flush rows of the served width."""
        metrics = ServeHttpMetrics()
        coalescer = DeadlineCoalescer(
            BatchFiller(served_model), metrics=metrics
        )
        now = time.monotonic()
        good = _Ticket(
            row=np.full(N_COLS, np.nan),
            deadline=now + 5.0,
            enqueued_at=now,
        )
        stale = _Ticket(
            row=np.full(N_COLS + 2, np.nan),
            deadline=now + 5.0,
            enqueued_at=now,
        )
        coalescer._flush([good, stale], 0)
        assert good.error is None
        assert good.result is not None
        assert good.result.case == "all-holes"
        assert isinstance(stale.error, _BadRequest)
        assert stale.result is None
        assert metrics.n_errors == 1
