"""Property tests for the serving layer's exactness contract.

The serving layer promises that a cached, pattern-grouped batch fill is
**bit-identical** to calling :func:`repro.core.reconstruction.fill_holes`
row by row -- across every hole pattern, every dispatch regime
(exactly-, over-, and under-specified), both CASE-3 policies, and
regardless of whether the operator cache is cold or warm.  Hypothesis
drives arbitrary hole masks through both paths and asserts exact
equality, not ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import RatioRuleModel
from repro.core.reconstruction import (
    CASE_EXACT,
    CASE_OVER,
    CASE_UNDER,
    fill_holes,
)
from repro.serve import BatchFiller

from tests.serve.conftest import make_rank2_matrix

pytestmark = pytest.mark.serve

N_COLS = 5

# One fitted model per cutoff, shared across examples (fitting inside
# the hypothesis loop would dominate the runtime without adding any
# coverage -- the contract under test is the serving path, not fit).
_MODELS = {
    cutoff: RatioRuleModel(cutoff=cutoff).fit(make_rank2_matrix(7))
    for cutoff in (1, 2, 3)
}


def _batch_from_masks(seed: int, masks) -> np.ndarray:
    base = make_rank2_matrix(seed, n_rows=len(masks))
    batch = base.copy()
    for i, mask in enumerate(masks):
        for j in range(N_COLS):
            if mask[j]:
                batch[i, j] = np.nan
    return batch


hole_masks = st.lists(
    st.lists(st.booleans(), min_size=N_COLS, max_size=N_COLS),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(
    masks=hole_masks,
    seed=st.integers(min_value=0, max_value=2**16),
    cutoff=st.sampled_from([1, 2, 3]),
    policy=st.sampled_from(["truncate", "min-norm"]),
)
def test_batch_bit_identical_to_row_by_row(masks, seed, cutoff, policy):
    model = _MODELS[cutoff]
    batch = _batch_from_masks(seed, masks)
    filler = BatchFiller(model, underdetermined=policy)

    result = filler.fill_batch(batch)

    for i in range(batch.shape[0]):
        reference = fill_holes(
            batch[i], model.rules_matrix, model.means_, underdetermined=policy
        )
        np.testing.assert_array_equal(
            result.filled[i],
            reference.filled,
            err_msg=f"row {i} diverged from fill_holes (policy={policy})",
        )
        assert result.cases[i] == reference.case


@settings(max_examples=25, deadline=None)
@given(
    masks=hole_masks,
    seed=st.integers(min_value=0, max_value=2**16),
    cutoff=st.sampled_from([1, 2, 3]),
)
def test_warm_cache_bit_identical_to_cold(masks, seed, cutoff):
    model = _MODELS[cutoff]
    batch = _batch_from_masks(seed, masks)
    filler = BatchFiller(model)

    cold = filler.fill_batch(batch)
    warm = filler.fill_batch(batch)

    np.testing.assert_array_equal(cold.filled, warm.filled)
    assert cold.cases == warm.cases
    # The second pass must be served from cache: no new operator solves.
    assert filler.cache.misses == len(filler.cache)


def test_all_three_regimes_are_reachable():
    """The property above is vacuous unless exact/over/under all occur."""
    model = _MODELS[2]  # k=2 rules on 5 columns
    filler = BatchFiller(model)
    batch = make_rank2_matrix(41, n_rows=3)
    batch[0, :3] = np.nan  # 2 known == k      -> exactly-specified
    batch[1, :1] = np.nan  # 4 known > k       -> over-specified
    batch[2, :4] = np.nan  # 1 known < k       -> under-specified
    result = filler.fill_batch(batch)
    assert result.cases == (CASE_EXACT, CASE_OVER, CASE_UNDER)
    reference = filler.fill_reference(batch)
    np.testing.assert_array_equal(result.filled, reference.filled)
