"""Tests for the `verify` CLI subcommand."""


from repro.cli import main
from repro.io.partitioned import write_partitioned
from repro.io.rowstore import RowStore


class TestVerifyCommand:
    def test_good_file(self, tmp_path, rng, capsys):
        path = tmp_path / "good.rr"
        RowStore.write_matrix(path, rng.standard_normal((10, 3)))
        assert main(["verify", str(path)]) == 0
        assert "checksum verified" in capsys.readouterr().out

    def test_corrupt_file(self, tmp_path, rng, capsys):
        path = tmp_path / "bad.rr"
        RowStore.write_matrix(path, rng.standard_normal((10, 3)))
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert main(["verify", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_legacy_file_reported(self, tmp_path, rng, capsys):
        path = tmp_path / "legacy.rr"
        RowStore.write_matrix(path, rng.standard_normal((10, 3)))
        path.write_bytes(path.read_bytes()[:-12])
        assert main(["verify", str(path)]) == 0
        assert "no checksum trailer" in capsys.readouterr().out

    def test_partition_directory(self, tmp_path, rng, capsys):
        matrix = rng.standard_normal((60, 2))
        write_partitioned(tmp_path / "parts", [matrix[:30], matrix[30:]])
        assert main(["verify", str(tmp_path / "parts")]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") >= 2
        assert "2 shard(s), 60 rows" in out

    def test_partition_with_corrupt_shard(self, tmp_path, rng, capsys):
        matrix = rng.standard_normal((60, 2))
        paths = write_partitioned(tmp_path / "parts", [matrix[:30], matrix[30:]])
        raw = bytearray(paths[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        paths[0].write_bytes(bytes(raw))
        assert main(["verify", str(tmp_path / "parts")]) == 1
        assert "FAIL" in capsys.readouterr().out
