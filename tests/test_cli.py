"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.model import RatioRuleModel
from repro.io.csv_format import load_csv_matrix, save_csv_matrix
from repro.io.schema import TableSchema


@pytest.fixture
def csv_file(tmp_path, rng):
    factor = rng.normal(5.0, 2.0, size=120)
    matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (120, 3))
    path = tmp_path / "train.csv"
    save_csv_matrix(path, matrix, TableSchema.from_names(["a", "b", "c"]))
    return path, matrix


@pytest.fixture
def model_file(tmp_path, csv_file):
    path, matrix = csv_file
    model_path = tmp_path / "model.npz"
    RatioRuleModel().fit(matrix, TableSchema.from_names(["a", "b", "c"])).save(
        model_path
    )
    return model_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fit_arguments(self):
        args = build_parser().parse_args(["fit", "x.csv", "--cutoff", "3"])
        assert args.command == "fit"
        assert args.cutoff == "3"


class TestFit(object):
    def test_fit_prints_rules(self, csv_file, capsys):
        path, _matrix = csv_file
        assert main(["fit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Mined" in out
        assert "RR1" in out

    def test_fit_save(self, csv_file, tmp_path, capsys):
        path, _matrix = csv_file
        model_path = tmp_path / "m.npz"
        assert main(["fit", str(path), "--save", str(model_path)]) == 0
        assert model_path.exists()
        restored = RatioRuleModel.load(model_path)
        assert restored.k >= 1

    def test_fit_with_cutoff_and_backend(self, csv_file, capsys):
        path, _matrix = csv_file
        assert main(["fit", str(path), "--cutoff", "2", "--backend", "jacobi"]) == 0
        assert "Mined 2 Ratio Rules" in capsys.readouterr().out

    def test_fit_stats_reports_throughput_and_solve_time(self, csv_file, capsys):
        path, _matrix = csv_file
        assert main(["fit", str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Scan statistics" in out
        assert "rows/s" in out
        assert "solve time" in out
        assert "120" in out  # row count

    def test_fit_executor_override(self, csv_file, capsys):
        path, matrix = csv_file
        assert main(
            ["fit", str(path), "--executor", "thread", "--workers", "2", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "RR1" in out
        assert "thread" in out

    def test_fit_process_executor_matches_default(self, csv_file, tmp_path, capsys):
        path, matrix = csv_file
        serial_path = tmp_path / "serial.npz"
        process_path = tmp_path / "process.npz"
        assert main(["fit", str(path), "--save", str(serial_path)]) == 0
        assert main(
            [
                "fit",
                str(path),
                "--executor",
                "process",
                "--workers",
                "2",
                "--save",
                str(process_path),
            ]
        ) == 0
        serial = RatioRuleModel.load(serial_path)
        process = RatioRuleModel.load(process_path)
        np.testing.assert_allclose(
            process.rules_matrix, serial.rules_matrix, atol=1e-8
        )


class TestFitFaultTolerance:
    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args(
            [
                "fit", "x.csv",
                "--max-retries", "3",
                "--chunk-timeout", "2.5",
                "--on-bad-chunk", "skip",
                "--checkpoint", "scan.ckpt",
                "--resume",
            ]
        )
        assert args.max_retries == 3
        assert args.chunk_timeout == 2.5
        assert args.on_bad_chunk == "skip"
        assert args.checkpoint == "scan.ckpt"
        assert args.resume is True

    def test_on_bad_chunk_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "x.csv", "--on-bad-chunk", "punt"])

    def test_resume_requires_checkpoint(self, csv_file, capsys):
        path, _matrix = csv_file
        assert main(["fit", str(path), "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_stats_report_fault_counters(self, csv_file, capsys):
        path, _matrix = csv_file
        assert main(["fit", str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "quarantined" in out
        assert "downgrades" in out
        assert "resumed" in out

    @staticmethod
    def _corrupt_second_half(path):
        """Persistently clobber one data line in the file's second half."""
        from repro.io.matrix_reader import csv_layout

        _, data_offset, size = csv_layout(path)
        offset = data_offset + (size - data_offset) * 3 // 4
        return offset

    def test_skip_policy_fits_on_surviving_data(self, csv_file, capsys):
        from repro.testing import corrupted_bytes

        path, _matrix = csv_file
        with corrupted_bytes(path, self._corrupt_second_half(path)):
            code = main(
                [
                    "fit", str(path),
                    "--workers", "2",
                    "--on-bad-chunk", "skip",
                    "--stats",
                ]
            )
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: quarantined 1 bad chunk(s)" in captured.err
        assert "Mined" in captured.out
        assert "quarantined   1 chunk(s)" in captured.out

    def test_fault_aborts_with_resume_hint_then_resumes(
        self, csv_file, tmp_path, capsys
    ):
        from repro.testing import corrupted_bytes

        path, _matrix = csv_file
        checkpoint = tmp_path / "scan.ckpt"
        with corrupted_bytes(path, self._corrupt_second_half(path)):
            code = main(
                [
                    "fit", str(path),
                    "--workers", "2",
                    "--checkpoint", str(checkpoint),
                ]
            )
        captured = capsys.readouterr()
        assert code == 3
        assert "error:" in captured.err
        assert "rerun with --resume to continue" in captured.err
        assert checkpoint.exists()

        # The corruption is healed on context exit; resuming finishes
        # the fit from the surviving checkpoint.
        code = main(
            [
                "fit", str(path),
                "--workers", "2",
                "--checkpoint", str(checkpoint),
                "--resume",
                "--stats",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Mined" in captured.out
        assert "resumed       1 chunk(s) from checkpoint" in captured.out


class TestRules:
    def test_rules_output(self, model_file, capsys):
        assert main(["rules", str(model_file)]) == 0
        out = capsys.readouterr().out
        assert "RR1" in out

    def test_rules_table_only(self, model_file, capsys):
        assert main(["rules", str(model_file), "--table"]) == 0
        out = capsys.readouterr().out
        assert "field" in out


class TestFill:
    def test_fill_stdout(self, model_file, tmp_path, capsys):
        holes_path = tmp_path / "holes.csv"
        holes_path.write_text("a,b,c\n5.0,,15.2\n")
        assert main(["fill", str(model_file), str(holes_path)]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "a,b,c"
        filled = [float(x) for x in lines[1].split(",")]
        assert filled[1] == pytest.approx(10.0, abs=1.0)  # b ~= 2*a

    def test_fill_to_file(self, model_file, tmp_path, capsys):
        holes_path = tmp_path / "holes.csv"
        holes_path.write_text("a,b,c\n4.0,nan,12.0\n")
        out_path = tmp_path / "filled.csv"
        assert (
            main(["fill", str(model_file), str(holes_path), "--output", str(out_path)])
            == 0
        )
        matrix, _schema = load_csv_matrix(out_path)
        assert not np.isnan(matrix).any()

    def test_fill_column_mismatch(self, model_file, tmp_path, capsys):
        holes_path = tmp_path / "holes.csv"
        holes_path.write_text("x,y\n1.0,2.0\n")
        assert main(["fill", str(model_file), str(holes_path)]) == 2
        assert "column mismatch" in capsys.readouterr().err


class TestGE:
    def test_ge_report(self, model_file, csv_file, capsys):
        csv_path, _matrix = csv_file
        assert main(["ge", str(model_file), str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "GE1 (Ratio Rules" in out
        assert "col-avgs" in out
        assert "%" in out

    def test_ge_multi_hole(self, model_file, csv_file, capsys):
        csv_path, _matrix = csv_file
        assert main(["ge", str(model_file), str(csv_path), "--holes", "2"]) == 0
        assert "GE2" in capsys.readouterr().out


class TestGenerate:
    def test_generate_nba(self, tmp_path, capsys):
        out_path = tmp_path / "nba.csv"
        assert main(["generate", "nba", str(out_path)]) == 0
        matrix, schema = load_csv_matrix(out_path)
        assert matrix.shape == (459, 12)
        assert "minutes played" in schema.names


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "[PASS]" in out
