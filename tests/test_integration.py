"""End-to-end integration tests crossing every subsystem.

Each test here tells one complete story a downstream user would live:
data lands on disk, a model is mined, persisted, reloaded, applied, and
evaluated -- with the paper's quality measure closing the loop.
"""

import numpy as np
import pytest

from repro import (
    BasketRecommender,
    ColumnAverageBaseline,
    RatioRuleModel,
    Scenario,
    calibrate,
    detect_row_outliers,
    evaluate_scenario,
    guessing_error,
    impute_missing,
    load_dataset,
    relative_guessing_error,
    single_hole_error,
)
from repro.cli import main
from repro.core.compare import compare_models
from repro.core.online import OnlineRatioRuleModel
from repro.core.parallel import fit_sharded
from repro.datasets.quest import QuestBasketGenerator
from repro.io.csv_format import save_csv_matrix
from repro.io.matrix_reader import RowStoreReader
from repro.io.rowstore import RowStore


class TestDiskToModelToEvaluation:
    """Generate -> store on disk -> single-pass fit -> GE evaluation."""

    def test_full_pipeline_over_rowstore(self, tmp_path):
        generator = QuestBasketGenerator(n_items=30, seed=0)
        train_path = tmp_path / "train.rr"
        generator.write_rowstore(train_path, 5_000, seed=1)
        test_matrix = generator.generate(500, seed=2)

        reader = RowStoreReader(train_path)
        model = RatioRuleModel().fit(reader)
        assert reader.passes_completed == 1  # the paper's core claim

        baseline = ColumnAverageBaseline().fit(RowStoreReader(train_path))
        percent = relative_guessing_error(model, baseline, test_matrix)
        assert percent < 100.0  # rules beat means on pattern-rich baskets

    def test_persisted_model_round_trip_through_cli(self, tmp_path, capsys):
        dataset = load_dataset("abalone", seed=0)
        train, test = dataset.train_test_split(0.1, seed=0)
        train_csv = tmp_path / "train.csv"
        test_csv = tmp_path / "test.csv"
        save_csv_matrix(train_csv, train.matrix, dataset.schema)
        save_csv_matrix(test_csv, test.matrix, dataset.schema)
        model_path = tmp_path / "model.npz"

        assert main(["fit", str(train_csv), "--save", str(model_path)]) == 0
        assert main(["ge", str(model_path), str(test_csv)]) == 0
        out = capsys.readouterr().out
        # The CLI prints the RR/col-avgs ratio; abalone should be far
        # below 100%.
        ratio_line = next(l for l in out.splitlines() if "RR / col-avgs" in l)
        ratio = float(ratio_line.split(":")[1].strip().rstrip("%"))
        assert ratio < 50.0


class TestShardedEqualsMonolithic:
    """Shards on disk -> parallel fit == one-shot fit, end to end."""

    def test_sharded_disk_fit(self, tmp_path, rng):
        factor = rng.normal(4.0, 1.5, size=900)
        matrix = np.outer(factor, [1.0, 2.0, 0.5, 1.5]) + rng.normal(0, 0.05, (900, 4))
        paths = []
        for index, start in enumerate(range(0, 900, 300)):
            path = tmp_path / f"shard{index}.rr"
            RowStore.write_matrix(path, matrix[start : start + 300])
            assert RowStore.verify(path)
            paths.append(path)
        sharded = fit_sharded(paths, cutoff=1, max_workers=3)
        whole = RatioRuleModel(cutoff=1).fit(matrix)
        np.testing.assert_allclose(sharded.rules_matrix, whole.rules_matrix, atol=1e-8)
        # Both models answer a forecast identically.
        probe = np.array([4.0, np.nan, np.nan, np.nan])
        np.testing.assert_allclose(
            sharded.fill_row(probe), whole.fill_row(probe), atol=1e-8
        )


class TestOnlineConvergesToBatch:
    """Streaming updates -> drift detection against the batch model."""

    def test_stream_then_compare(self, rng):
        factor = rng.normal(5.0, 2.0, size=600)
        matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (600, 3))
        online = OnlineRatioRuleModel(3, cutoff=1)
        for start in range(0, 600, 100):
            online.update(matrix[start : start + 100])
        batch = RatioRuleModel(cutoff=1).fit(matrix)
        comparison = compare_models(batch, online.model())
        assert not comparison.is_drifted()
        assert comparison.max_angle_degrees < 0.1


class TestCleaningRestoresQuality:
    """Corrupt a feed, clean it, verify the guessing error recovers."""

    def test_clean_then_ge(self, rng):
        dataset = load_dataset("abalone", seed=0)
        train, test = dataset.train_test_split(0.1, seed=0)
        model = RatioRuleModel().fit(train.matrix, schema=dataset.schema)

        dirty = test.matrix.copy()
        holes = rng.random(dirty.shape) < 0.08
        dirty[holes] = np.nan
        cleaned = impute_missing(model, dirty).cleaned

        # The cleaned matrix is usable as GE ground truth and sits close
        # to the original.
        rms = np.sqrt(np.mean((cleaned - test.matrix) ** 2))
        baseline_rms = np.sqrt(np.mean((test.matrix - train.matrix.mean(axis=0)) ** 2))
        assert rms < 0.3 * baseline_rms
        report = guessing_error(model, cleaned, h=1)
        assert report.value > 0


class TestDecisionSupportChain:
    """What-if -> intervals -> recommendation, one model serving all."""

    def test_one_model_many_applications(self, rng):
        habit = rng.uniform(0.5, 5.0, size=600)
        matrix = np.column_stack(
            [habit, 2.0 * habit, 0.5 * habit]
        ) + rng.normal(0, 0.05, (600, 3))
        from repro.io.schema import TableSchema

        schema = TableSchema.from_names(["cereal", "milk", "yogurt"], unit="$")
        model = RatioRuleModel(cutoff=1).fit(matrix[:500], schema=schema)

        # What-if.
        result = evaluate_scenario(model, Scenario(scaled={"cereal": 2.0}))
        assert result["milk"] == pytest.approx(
            2.0 * model.means_[1], rel=0.1
        )

        # Calibrated intervals.
        calibrated = calibrate(model, matrix[500:], confidence=0.9)
        _filled, intervals = calibrated.fill_row_with_intervals(
            np.array([3.0, np.nan, np.nan])
        )
        assert all(iv.lower < iv.value < iv.upper for iv in intervals)

        # Recommendation.
        recommender = BasketRecommender(model)
        recs = recommender.recommend({"cereal": 4.0}, top_n=2)
        assert recs[0].product in ("milk", "yogurt")

        # Outliers: a fabricated anti-pattern row is flagged.
        audit = np.vstack([matrix[:100], [[5.0, 0.5, 5.0]]])
        flagged = detect_row_outliers(model, audit, n_sigmas=3.0)
        assert any(o.row == 100 for o in flagged)

        # And the quality measure confirms the model is good.
        ge_model = single_hole_error(model, matrix[500:]).value
        baseline = ColumnAverageBaseline().fit(matrix[:500], schema=schema)
        ge_baseline = single_hole_error(baseline, matrix[500:]).value
        assert ge_model < 0.2 * ge_baseline
