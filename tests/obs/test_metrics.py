"""Tests for ScanMetrics: serialization, merging, and rendering.

The metrics record is the engine's public ledger -- every
fault-tolerance event (retry, timeout, quarantine, downgrade, resume)
must survive a ``to_dict``/JSON round trip and show up in the
``--stats`` rendering, or operators cannot audit what a scan did.
"""

import json
import threading

import numpy as np
import pytest

from repro.obs.metrics import ScanMetrics, ServeMetrics, Stopwatch


def _full_record():
    return ScanMetrics(
        executor="process",
        n_workers=4,
        n_sources=3,
        n_chunks=12,
        n_blocks=48,
        n_rows=100_000,
        n_merges=11,
        scan_seconds=1.5,
        solve_seconds=0.25,
        total_seconds=2.0,
        n_faults=5,
        n_retries=4,
        n_timeouts=2,
        n_quarantined=1,
        rows_quarantined=8_000,
        bytes_quarantined=123_456,
        n_executor_downgrades=1,
        n_chunks_resumed=3,
        quarantined=[
            {
                "kind": "csv",
                "source": "shard2.csv",
                "start": 100,
                "stop": 200,
                "rows_lost": 0,
                "bytes_lost": 100,
                "error": "CSVFormatError: bad cell",
            }
        ],
        extras={"note": "test"},
    )


class TestSerialization:
    def test_to_dict_covers_every_field(self):
        payload = _full_record().to_dict()
        assert payload["n_faults"] == 5
        assert payload["n_retries"] == 4
        assert payload["n_timeouts"] == 2
        assert payload["n_quarantined"] == 1
        assert payload["rows_quarantined"] == 8_000
        assert payload["bytes_quarantined"] == 123_456
        assert payload["n_executor_downgrades"] == 1
        assert payload["n_chunks_resumed"] == 3
        assert payload["quarantined"][0]["source"] == "shard2.csv"

    def test_dict_round_trip(self):
        original = _full_record()
        assert ScanMetrics.from_dict(original.to_dict()) == original

    def test_json_round_trip(self):
        original = _full_record()
        text = original.to_json()
        json.loads(text)  # valid JSON
        assert ScanMetrics.from_json(text) == original

    def test_defaults_round_trip(self):
        assert ScanMetrics.from_json(ScanMetrics().to_json()) == ScanMetrics()

    def test_from_dict_rejects_unknown_fields(self):
        payload = ScanMetrics().to_dict()
        payload["n_warp_cores"] = 1
        with pytest.raises(ValueError, match="unknown ScanMetrics fields"):
            ScanMetrics.from_dict(payload)


class TestMerge:
    def test_merge_folds_fault_counters(self):
        left = _full_record()
        right = _full_record()
        left.merge(right)
        assert left.n_faults == 10
        assert left.n_retries == 8
        assert left.n_timeouts == 4
        assert left.n_quarantined == 2
        assert left.rows_quarantined == 16_000
        assert left.bytes_quarantined == 246_912
        assert left.n_executor_downgrades == 2
        assert left.n_chunks_resumed == 6
        assert len(left.quarantined) == 2
        assert left.n_rows == 200_000

    def test_merge_keeps_executor_of_receiver(self):
        left = ScanMetrics(executor="thread")
        left.merge(ScanMetrics(executor="process"))
        assert left.executor == "thread"


class TestRendering:
    def test_render_mentions_every_fault_counter(self):
        text = _full_record().render()
        assert "process (4 worker(s))" in text
        assert "5 fault(s), 4 retrie(s), 2 timeout(s)" in text
        assert "1 chunk(s)  (8000 row(s) / 123456 byte(s) lost)" in text
        assert "downgrades    1" in text
        assert "resumed       3 chunk(s) from checkpoint" in text
        assert "rows/s" in text
        assert "solve time" in text

    def test_rows_per_second_guard(self):
        assert ScanMetrics(n_rows=10, scan_seconds=0.0).rows_per_second == 0.0
        assert ScanMetrics(n_rows=10, scan_seconds=2.0).rows_per_second == 5.0
        assert "n/a" in ScanMetrics(n_rows=10, scan_seconds=0.0).render()


class TestEngineIntegration:
    def test_scan_metrics_from_engine_are_json_clean(self, rng):
        from repro.core.engine import scan_sources

        matrix = rng.normal(size=(50, 3))
        result = scan_sources([matrix], target_chunks=3)
        restored = ScanMetrics.from_json(result.metrics.to_json())
        assert restored.n_rows == 50
        assert restored.n_chunks == 3
        assert restored == result.metrics


class TestServeMetricsMergeLocking:
    """Regression: merge used to read ``other`` without its lock, so a
    live filler recording into ``other`` could tear the snapshot."""

    def test_merge_while_other_thread_records(self):
        target = ServeMetrics()
        live = ServeMetrics()
        stop = threading.Event()

        def recorder():
            while not stop.is_set():
                live.record_batch(
                    n_rows=4,
                    n_rows_filled=2,
                    n_rows_no_holes=1,
                    n_rows_all_holes=1,
                    n_holes_filled=3,
                    group_sizes=[2, 2],
                    seconds=0.001,
                )

        thread = threading.Thread(target=recorder)
        thread.start()
        try:
            for _ in range(200):
                target.merge(live)
                # Under the lock the batch counter and the per-batch
                # sample list move together; a torn read breaks that.
                snapshot = target.to_dict()
                assert snapshot["n_rows"] == 4 * snapshot["n_batches"]
        finally:
            stop.set()
            thread.join()

    def test_cross_merge_does_not_deadlock(self):
        a = ServeMetrics(n_batches=1)
        b = ServeMetrics(n_batches=1)

        def cross(left, right):
            for _ in range(500):
                left.merge(right)

        one = threading.Thread(target=cross, args=(a, b))
        two = threading.Thread(target=cross, args=(b, a))
        one.start()
        two.start()
        one.join(timeout=30)
        two.join(timeout=30)
        assert not one.is_alive() and not two.is_alive(), "merge deadlocked"

    def test_self_merge_doubles_instead_of_deadlocking(self):
        record = ServeMetrics(n_batches=3, n_rows=12)
        record.merge(record)
        assert record.n_batches == 6
        assert record.n_rows == 24


class TestStopwatch:
    def test_measures_nonnegative_span(self):
        with Stopwatch() as watch:
            _ = np.ones(8).sum()
        assert watch.seconds >= 0.0
