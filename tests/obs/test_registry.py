"""Tests for the metrics registry: instruments, collectors, adapters.

The load-bearing guarantee is at the bottom: the record adapters must
emit at least one sample for **every** ``dataclasses.fields()`` entry
of every metrics record, so a counter added to a record can never
silently vanish from the scrape.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.obs.metrics import (
    PipelineMetrics,
    ScanMetrics,
    ServeHttpMetrics,
    ServeMetrics,
    StoreMetrics,
    WatchMetrics,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    register_pipeline_metrics,
    register_scan_metrics,
    register_serve_http_metrics,
    register_serve_metrics,
    register_store_metrics,
    register_watch_metrics,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        requests = registry.counter("requests_total", "Requests.")
        requests.inc()
        requests.inc(2.5)
        assert requests.value() == 3.5

    def test_labeled_series_are_independent(self, registry):
        requests = registry.counter("requests_total")
        requests.inc(route="fill")
        requests.inc(3, route="publish")
        assert requests.value(route="fill") == 1.0
        assert requests.value(route="publish") == 3.0
        assert requests.value() == 0.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("c").inc(-1)

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad-name", "")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("c").inc(**{"0bad": "x"})


class TestGauge:
    def test_set_inc_dec(self, registry):
        depth = registry.gauge("queue_depth", "Depth.")
        depth.set(10)
        depth.inc(5)
        depth.dec(3)
        assert depth.value() == 12.0

    def test_gauge_may_go_negative(self, registry):
        g = registry.gauge("g")
        g.dec(2)
        assert g.value() == -2.0


class TestHistogram:
    def test_observations_land_in_correct_buckets(self, registry):
        h = registry.histogram("latency", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            h.observe(value)
        family = h.collect()
        ((labels, buckets, total, count),) = family.histogram_rows
        assert labels == ()
        # Cumulative: <=0.1 -> 1, <=1.0 -> 3, +Inf -> 4.
        assert buckets == ((0.1, 1), (1.0, 3), (math.inf, 4))
        assert total == pytest.approx(6.25)
        assert count == 4

    def test_boundary_value_is_inclusive(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(1.0)
        ((_, buckets, _, _),) = h.collect().histogram_rows
        assert buckets[0] == (1.0, 1)

    def test_labeled_rows_are_separate(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        h.observe(0.5, route="a")
        h.observe(2.0, route="b")
        rows = h.collect().histogram_rows
        assert len(rows) == 2

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", "", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "", buckets=(2.0, 1.0))


class TestRegistry:
    def test_factories_are_idempotent_by_name(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("taken")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.gauge("taken")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.histogram("taken")
        registry.gauge("g_taken")
        with pytest.raises(TypeError, match="already registered as gauge"):
            registry.counter("g_taken")

    def test_collect_includes_instruments_and_collectors(self, registry):
        registry.counter("c", "Help.").inc()
        extra = registry.gauge("lazy", "Lazy.")  # collected as instrument

        def collector():
            return [extra.collect()]

        registry.register_collector(collector)
        names = [family.name for family in registry.collect()]
        assert names.count("c") == 1
        assert names.count("lazy") == 2  # instrument + collector copy

    def test_unregister_collector(self, registry):
        calls = []

        def collector():
            calls.append(1)
            return []

        registry.register_collector(collector)
        registry.collect()
        registry.unregister_collector(collector)
        registry.collect()
        assert len(calls) == 1
        registry.unregister_collector(collector)  # no-op, no raise

    def test_clear_drops_everything(self, registry):
        registry.counter("c").inc()
        registry.register_collector(lambda: [])
        registry.clear()
        assert registry.collect() == []

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
        assert isinstance(get_registry(), MetricsRegistry)


def _family_index(families):
    return {family.name: family for family in families}


def _assert_every_field_exported(record, families, prefix):
    """The acceptance check: every dataclass field -> >= 1 sample."""
    index = _family_index(families)
    for field_def in dataclasses.fields(record):
        name = f"{prefix}_{field_def.name}"
        candidates = [
            name, f"{name}_info", f"{name}_retained",
        ]
        matches = [index[c] for c in candidates if c in index]
        assert matches, f"field {field_def.name!r} missing from scrape"
        assert any(family.samples for family in matches), (
            f"field {field_def.name!r} exported no samples"
        )


class TestAdapterValidation:
    """Bad registrations must fail at register time, not inside every
    scrape (the collector runs on the HTTP handler thread)."""

    @pytest.mark.parametrize(
        ("register", "wrong"),
        [
            (register_scan_metrics, None),
            (register_scan_metrics, ServeMetrics()),
            (register_serve_metrics, None),
            (register_serve_metrics, ScanMetrics()),
            (register_pipeline_metrics, None),
            (register_pipeline_metrics, ScanMetrics()),
            (register_serve_http_metrics, None),
            (register_serve_http_metrics, ServeMetrics()),
            (register_store_metrics, None),
            (register_store_metrics, ServeMetrics()),
            (register_watch_metrics, None),
            (register_watch_metrics, ServeMetrics()),
        ],
    )
    def test_wrong_record_rejected_eagerly(self, register, wrong):
        registry = MetricsRegistry()
        with pytest.raises(TypeError, match="expected a live"):
            register(registry, wrong)
        assert registry.collect() == []  # nothing half-registered


class TestScanAdapter:
    def test_every_field_exported(self, registry):
        metrics = ScanMetrics(
            executor="process",
            n_rows=100,
            scan_seconds=2.0,
            quarantined=[{"source": "x.csv"}],
            extras={"note": "hi", "count": 3},
        )
        register_scan_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_scan"
        )

    def test_live_record_reflects_updates(self, registry):
        metrics = ScanMetrics()
        register_scan_metrics(registry, metrics)
        metrics.n_rows = 7
        index = _family_index(registry.collect())
        assert index["repro_scan_n_rows"].samples[0].value == 7.0

    def test_derived_throughput_gauge(self, registry):
        metrics = ScanMetrics(n_rows=100, scan_seconds=2.0)
        register_scan_metrics(registry, metrics)
        index = _family_index(registry.collect())
        assert index["repro_scan_rows_per_second"].samples[0].value == 50.0

    def test_string_field_becomes_info_sample(self, registry):
        register_scan_metrics(registry, ScanMetrics(executor="thread"))
        index = _family_index(registry.collect())
        sample = index["repro_scan_executor_info"].samples[0]
        assert sample.labels_dict() == {"value": "thread"}
        assert sample.value == 1.0

    def test_list_field_exports_retained_length(self, registry):
        metrics = ScanMetrics(quarantined=[{"a": 1}, {"b": 2}])
        register_scan_metrics(registry, metrics)
        index = _family_index(registry.collect())
        assert index["repro_scan_quarantined_retained"].samples[0].value == 2.0

    def test_returned_collector_can_be_unregistered(self, registry):
        collector = register_scan_metrics(registry, ScanMetrics())
        registry.unregister_collector(collector)
        assert registry.collect() == []


class TestPipelineAdapter:
    def test_every_field_exported(self, registry):
        metrics = PipelineMetrics(
            rows_ingested=100,
            refresh_reasons={"initial": 1, "drift:rule-angle": 2},
            last_refresh_reason="drift:rule-angle",
        )
        register_pipeline_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_pipeline"
        )

    def test_dict_field_fans_out_per_key(self, registry):
        metrics = PipelineMetrics(
            refresh_reasons={"initial": 1, "forced:max-rows": 4}
        )
        register_pipeline_metrics(registry, metrics)
        index = _family_index(registry.collect())
        samples = {
            s.labels_dict()["key"]: s.value
            for s in index["repro_pipeline_refresh_reasons"].samples
        }
        assert samples == {"initial": 1.0, "forced:max-rows": 4.0}

    def test_derived_reservoir_occupancy(self, registry):
        metrics = PipelineMetrics(reservoir_rows=50, reservoir_capacity=200)
        register_pipeline_metrics(registry, metrics)
        index = _family_index(registry.collect())
        assert (
            index["repro_pipeline_reservoir_occupancy"].samples[0].value
            == 0.25
        )


class TestServeAdapter:
    def test_every_field_exported(self, registry):
        metrics = ServeMetrics(cache_hits=3, cache_misses=1)
        metrics.record_batch(
            n_rows=10,
            n_rows_filled=8,
            n_rows_no_holes=2,
            n_rows_all_holes=0,
            n_holes_filled=12,
            group_sizes=[4, 4],
            seconds=0.25,
        )
        register_serve_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_serve"
        )

    def test_latency_percentile_samples(self, registry):
        metrics = ServeMetrics()
        for seconds in (0.010, 0.020, 0.030):
            metrics.record_batch(
                n_rows=1,
                n_rows_filled=1,
                n_rows_no_holes=0,
                n_rows_all_holes=0,
                n_holes_filled=1,
                group_sizes=[1],
                seconds=seconds,
            )
        register_serve_metrics(registry, metrics)
        index = _family_index(registry.collect())
        samples = {
            s.labels_dict()["quantile"]: s.value
            for s in index["repro_serve_batch_latency_seconds"].samples
        }
        assert samples["0.5"] == pytest.approx(0.020)
        assert set(samples) == {"0.5", "0.9", "0.99"}

    def test_cache_hit_rate_gauge(self, registry):
        metrics = ServeMetrics(cache_hits=3, cache_misses=1)
        register_serve_metrics(registry, metrics)
        index = _family_index(registry.collect())
        assert index["repro_serve_cache_hit_rate"].samples[0].value == 0.75


class TestServeHttpAdapter:
    def _populated(self) -> ServeHttpMetrics:
        metrics = ServeHttpMetrics()
        for verb in ("fill", "fill", "whatif", "outlier", "recommend"):
            metrics.record_request(verb)
        metrics.record_enqueue(queue_depth=3)
        metrics.record_flush(
            n_rows=3, waits=[0.010, 0.020, 0.030], queue_depth=0
        )
        metrics.record_shed(2)
        metrics.record_expired()
        metrics.record_error()
        metrics.record_bad_request()
        metrics.extras["note"] = "hi"
        return metrics

    def test_every_field_exported(self, registry):
        metrics = self._populated()
        register_serve_http_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_serve_http"
        )

    def test_wait_percentile_samples(self, registry):
        register_serve_http_metrics(registry, self._populated())
        index = _family_index(registry.collect())
        samples = {
            s.labels_dict()["quantile"]: s.value
            for s in index["repro_serve_http_coalesce_wait_seconds"].samples
        }
        assert set(samples) == {"0.5", "0.9", "0.99"}
        assert samples["0.5"] == pytest.approx(0.020)

    def test_derived_rows_per_flush_and_rejected(self, registry):
        register_serve_http_metrics(registry, self._populated())
        index = _family_index(registry.collect())
        assert index["repro_serve_http_rows_per_flush"].samples[0].value == 3.0
        # 2 shed + 1 expired: the gauge accounts for every rejection.
        assert index["repro_serve_http_rejected_total"].samples[0].value == 3.0

    def test_live_record_reflects_updates(self, registry):
        metrics = ServeHttpMetrics()
        register_serve_http_metrics(registry, metrics)
        metrics.record_request("fill")
        index = _family_index(registry.collect())
        assert index["repro_serve_http_n_requests"].samples[0].value == 1.0
        assert (
            index["repro_serve_http_n_fill_requests"].samples[0].value == 1.0
        )

    def test_returned_collector_can_be_unregistered(self, registry):
        collector = register_serve_http_metrics(registry, ServeHttpMetrics())
        registry.unregister_collector(collector)
        assert registry.collect() == []


class TestStoreAdapter:
    def _populated(self) -> StoreMetrics:
        return StoreMetrics(
            n_publishes=3,
            publish_bytes=4096,
            n_loads=7,
            n_cache_hits=6,
            n_cache_misses=2,
            n_cache_evictions=1,
            n_recoveries=1,
            n_quarantined=1,
            n_manifest_rebuilds=1,
            n_gc_removed=2,
            gc_reclaimed_bytes=1024,
            n_sync_checks=9,
            n_sync_swaps=4,
            n_lock_breaks=1,
            publish_seconds=0.5,
            load_seconds=0.25,
            extras={"note": "hi"},
        )

    def test_every_field_exported(self, registry):
        metrics = self._populated()
        register_store_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_store"
        )

    def test_derived_cache_hit_rate_gauge(self, registry):
        register_store_metrics(registry, self._populated())
        index = _family_index(registry.collect())
        assert index["repro_store_cache_hit_rate"].samples[0].value == 0.75

    def test_live_record_reflects_updates(self, registry):
        store_metrics = StoreMetrics()
        register_store_metrics(registry, store_metrics)
        store_metrics.n_publishes = 5
        index = _family_index(registry.collect())
        assert index["repro_store_n_publishes"].samples[0].value == 5.0

    def test_returned_collector_can_be_unregistered(self, registry):
        collector = register_store_metrics(registry, StoreMetrics())
        registry.unregister_collector(collector)
        assert registry.collect() == []


class TestWatchAdapter:
    def _populated(self) -> WatchMetrics:
        return WatchMetrics(
            rows_seen=100,
            rows_scored=80,
            rows_unscored=20,
            rows_passed=70,
            rows_cleaned=6,
            rows_quarantined=4,
            n_batches_tapped=5,
            n_bursts=1,
            n_calibration_resets=1,
            n_events=7,
            n_sink_failures=1,
            events_by_kind={"row-quarantined": 4},
            last_event_kind="row-quarantined",
            last_z_score=9.5,
            last_residual=123.4,
            calibration_rows=76,
            calibration_mean=0.5,
            calibration_std=0.1,
            model_version=3,
            quarantine_rows=4,
            quarantine_bytes=1024,
            score_seconds=0.5,
            clean_seconds=0.1,
            quarantine_seconds=0.05,
            extras={"note": "hi"},
        )

    def test_every_field_exported(self, registry):
        metrics = self._populated()
        register_watch_metrics(registry, metrics)
        _assert_every_field_exported(
            metrics, registry.collect(), "repro_watch"
        )

    def test_derived_gauges(self, registry):
        register_watch_metrics(registry, self._populated())
        index = _family_index(registry.collect())
        assert index["repro_watch_quarantine_fraction"].samples[0].value == (
            pytest.approx(4 / 80)
        )
        assert index["repro_watch_rows_per_second"].samples[0].value == (
            pytest.approx(80 / 0.5)
        )

    def test_live_record_reflects_updates(self, registry):
        watch_metrics = WatchMetrics()
        register_watch_metrics(registry, watch_metrics)
        watch_metrics.rows_quarantined = 9
        index = _family_index(registry.collect())
        assert index["repro_watch_rows_quarantined"].samples[0].value == 9.0

    def test_returned_collector_can_be_unregistered(self, registry):
        collector = register_watch_metrics(registry, WatchMetrics())
        registry.unregister_collector(collector)
        assert registry.collect() == []
