"""Tests for the exporters: Prometheus text format, JSON, HTTP endpoint.

``parse_prometheus_text`` below is a deliberately strict miniature
parser for the Prometheus text exposition format; the acceptance test
feeds it a full scrape (all three record adapters registered) and
requires every line to parse and every family to be internally
consistent (``TYPE`` before samples, cumulative buckets, ``_count``
matching the ``+Inf`` bucket).
"""

from __future__ import annotations

import json
import math
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    HttpService,
    MetricsServer,
    to_json,
    to_json_obj,
    to_prometheus,
)
from repro.obs.metrics import PipelineMetrics, ScanMetrics, ServeMetrics
from repro.obs.registry import (
    MetricsRegistry,
    register_pipeline_metrics,
    register_scan_metrics,
    register_serve_metrics,
)

pytestmark = pytest.mark.obs

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def _split_labels(body: str):
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs = {}
    for chunk in re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', body):
        match = _LABEL_PAIR.match(chunk)
        assert match, f"unparseable label pair: {chunk!r}"
        value = match.group("value")
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pairs[match.group("name")] = value
    return pairs


def parse_prometheus_text(text: str):
    """Parse a text-exposition document into ``{family: {...}}``.

    Raises (via assert) on any line that is not a valid HELP/TYPE
    comment or a ``name{labels} value`` sample line, on samples whose
    family has no preceding TYPE, and on unknown metric types.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"samples": []})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), kind
            families.setdefault(name, {"samples": []})["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _METRIC_LINE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = families.get(name) or families.get(base)
        assert family is not None, f"sample {name!r} before its TYPE line"
        assert "type" in family, f"family of {name!r} has no TYPE"
        family["samples"].append(
            {
                "name": name,
                "labels": _split_labels(match.group("labels") or ""),
                "value": _parse_value(match.group("value")),
            }
        )
    return families


def _full_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("demo_requests_total", "Requests.").inc(3, route="fill")
    registry.gauge("demo_depth", "Depth.").set(-2.5)
    hist = registry.histogram("demo_latency_seconds", "Latency.", (0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    scan = ScanMetrics(
        executor="process",
        n_rows=1000,
        scan_seconds=0.5,
        quarantined=[{"source": "x.csv"}],
        extras={"note": 'quo"te\nnewline\\slash', "count": 2},
    )
    serve = ServeMetrics(cache_hits=2, cache_misses=1)
    serve.record_batch(
        n_rows=4,
        n_rows_filled=4,
        n_rows_no_holes=0,
        n_rows_all_holes=0,
        n_holes_filled=6,
        group_sizes=[2, 2],
        seconds=0.01,
    )
    pipeline = PipelineMetrics(
        rows_ingested=500, refresh_reasons={"initial": 1}
    )
    register_scan_metrics(registry, scan)
    register_serve_metrics(registry, serve)
    register_pipeline_metrics(registry, pipeline)
    return registry


class TestPrometheusText:
    def test_full_scrape_parses(self):
        """The acceptance test: a full scrape is valid exposition."""
        families = parse_prometheus_text(to_prometheus(_full_registry()))
        assert "demo_requests_total" in families
        assert "repro_scan_n_rows" in families
        assert "repro_serve_cache_hit_rate" in families
        assert "repro_pipeline_rows_ingested" in families
        for name, family in families.items():
            assert "type" in family, f"{name} missing TYPE"

    def test_counter_sample_with_labels(self):
        families = parse_prometheus_text(to_prometheus(_full_registry()))
        (sample,) = families["demo_requests_total"]["samples"]
        assert sample["labels"] == {"route": "fill"}
        assert sample["value"] == 3.0

    def test_histogram_bucket_sum_count_invariants(self):
        families = parse_prometheus_text(to_prometheus(_full_registry()))
        samples = families["demo_latency_seconds"]["samples"]
        buckets = [s for s in samples if s["name"].endswith("_bucket")]
        (count,) = [s for s in samples if s["name"].endswith("_count")]
        (total,) = [s for s in samples if s["name"].endswith("_sum")]
        bounds = [s["labels"]["le"] for s in buckets]
        assert bounds == ["0.1", "1.0", "+Inf"]
        counts = [s["value"] for s in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == count["value"] == 3
        assert total["value"] == pytest.approx(5.55)

    def test_label_values_are_escaped(self):
        text = to_prometheus(_full_registry())
        assert '\\"' in text  # the quote in the extras note
        assert "\\n" in text  # the newline
        assert "\\\\" in text  # the backslash
        families = parse_prometheus_text(text)
        info = families["repro_scan_extras_info"]["samples"]
        assert info[0]["labels"]["value"] == 'quo"te\nnewline\\slash'

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf").set(math.inf)
        registry.gauge("g_ninf").set(-math.inf)
        registry.gauge("g_nan").set(math.nan)
        families = parse_prometheus_text(to_prometheus(registry))
        assert families["g_inf"]["samples"][0]["value"] == math.inf
        assert families["g_ninf"]["samples"][0]["value"] == -math.inf
        assert math.isnan(families["g_nan"]["samples"][0]["value"])

    def test_help_lines_precede_samples(self):
        text = to_prometheus(_full_registry())
        lines = text.splitlines()
        index = lines.index("# TYPE demo_depth gauge")
        assert lines[index - 1] == "# HELP demo_depth Depth."
        assert lines[index + 1] == "demo_depth -2.5"


class TestJsonExport:
    def test_json_round_trips_and_carries_format_key(self):
        payload = json.loads(to_json(_full_registry()))
        assert payload["format"] == "repro-metrics/1"
        assert payload["families"]

    def test_every_collected_family_appears(self):
        registry = _full_registry()
        collected = {family.name for family in registry.collect()}
        exported = {f["name"] for f in to_json_obj(registry)["families"]}
        assert exported == collected

    def test_histogram_structure(self):
        payload = to_json_obj(_full_registry())
        (family,) = [
            f for f in payload["families"]
            if f["name"] == "demo_latency_seconds"
        ]
        (row,) = family["histograms"]
        assert [b["le"] for b in row["buckets"]] == ["0.1", "1.0", "+Inf"]
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(5.55)

    def test_samples_carry_plain_label_dicts(self):
        payload = to_json_obj(_full_registry())
        (family,) = [
            f for f in payload["families"]
            if f["name"] == "demo_requests_total"
        ]
        assert family["samples"] == [
            {"labels": {"route": "fill"}, "value": 3.0}
        ]


class TestMetricsServer:
    def test_http_scrape_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.").inc(2)
        with MetricsServer(registry, port=0) as server:
            assert server.port != 0  # ephemeral port was bound
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode()
        families = parse_prometheus_text(body)
        assert families["hits_total"]["samples"][0]["value"] == 2.0

    def test_json_endpoint(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        with MetricsServer(registry, port=0) as server:
            url = f"http://{server.host}:{server.port}/metrics.json"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert "application/json" in response.headers["Content-Type"]
                payload = json.loads(response.read().decode())
        assert payload["format"] == "repro-metrics/1"

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            url = f"http://{server.host}:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("live_total")
        with MetricsServer(registry, port=0) as server:
            counter.inc(5)
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode()
        assert "live_total 5.0" in body

    def test_double_start_rejected_and_stop_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()
        server.stop()  # second stop is a no-op

    def test_is_an_http_service(self):
        """The shared lifecycle shell, not a private reimplementation."""
        assert issubclass(MetricsServer, HttpService)


class _PingService(HttpService):
    """Minimal HttpService subclass for exercising the base lifecycle."""

    def _handler_class(self):
        from http.server import BaseHTTPRequestHandler

        class _PingHandler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                body = b"pong"
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):
                pass

        return _PingHandler


class TestHttpService:
    """Regression tests for the shared server lifecycle base class."""

    def test_handler_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            HttpService()._handler_class()

    def test_port_zero_discovers_ephemeral_port(self):
        service = _PingService(port=0)
        assert not service.running
        bound = service.start()
        try:
            assert bound != 0
            assert service.port == bound
            assert service.running
            url = f"http://{service.host}:{bound}/"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.read() == b"pong"
        finally:
            service.stop()
        assert not service.running

    def test_double_start_raises_without_losing_the_endpoint(self):
        service = _PingService(port=0)
        bound = service.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                service.start()
            # The rejected second start must not tear down the first.
            assert service.running and service.port == bound
            with urllib.request.urlopen(service.url + "/", timeout=5) as r:
                assert r.status == 200
        finally:
            service.stop()

    def test_stop_is_idempotent_and_safe_before_start(self):
        service = _PingService(port=0)
        service.stop()  # never started: no-op
        service.start()
        service.stop()
        service.stop()  # second stop: no-op
        assert not service.running

    def test_restart_after_stop_binds_a_fresh_port(self):
        service = _PingService(port=0)
        service.start()
        service.stop()
        bound = service.start()  # a stopped service can be started again
        try:
            with urllib.request.urlopen(
                f"http://{service.host}:{bound}/", timeout=5
            ) as response:
                assert response.read() == b"pong"
        finally:
            service.stop()

    def test_context_manager_round_trip(self):
        with _PingService(port=0) as service:
            assert service.running
        assert not service.running
