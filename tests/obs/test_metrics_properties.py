"""Property-based tests (hypothesis) for the metrics records.

Two families of invariants over all three records:

* **Round-trip**: ``from_dict(to_dict(m)) == m`` and the JSON twin --
  serialization must reproduce every field, so snapshots on disk are
  lossless.
* **Merge algebra**: ``merge`` is associative (``(a+b)+c == a+(b+c)``
  under any rollup order) and folds every counter exactly once (no
  dropped and no double-counted fields).  The per-field classification
  lists below are exhaustive on purpose: adding a field to a record
  without deciding its merge behavior fails the classification test.

Summed float fields are drawn as integer-valued floats so that
float-addition associativity is exact; the *merge semantics* under
test are unaffected.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    PipelineMetrics,
    ScanMetrics,
    ServeHttpMetrics,
    ServeMetrics,
    StoreMetrics,
    WatchMetrics,
)

pytestmark = pytest.mark.obs

_counts = st.integers(min_value=0, max_value=10_000)
_seconds = st.integers(min_value=0, max_value=1_000).map(float)
_gauge_floats = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
_words = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)

#: extras keys are typed by pool so cross-record merges never collide a
#: number with a string (receiver-wins on mixed types is order-
#: sensitive by design; the docs call that out).
_extras = st.fixed_dictionaries(
    {},
    optional={
        "k0": _counts,
        "k1": _counts,
        "note": _words,
        "tag": _words,
    },
)

_quarantine_entries = st.lists(
    st.fixed_dictionaries({"source": _words, "rows_lost": _counts}),
    max_size=3,
)


def scan_records():
    return st.builds(
        ScanMetrics,
        executor=st.sampled_from(["serial", "thread", "process"]),
        n_workers=st.integers(min_value=1, max_value=16),
        n_sources=_counts,
        n_chunks=_counts,
        n_blocks=_counts,
        n_rows=_counts,
        n_merges=_counts,
        scan_seconds=_seconds,
        solve_seconds=_seconds,
        total_seconds=_seconds,
        n_faults=_counts,
        n_retries=_counts,
        n_timeouts=_counts,
        n_quarantined=_counts,
        rows_quarantined=_counts,
        bytes_quarantined=_counts,
        n_executor_downgrades=_counts,
        n_chunks_resumed=_counts,
        accumulate_dtype=st.sampled_from(["float64", "raw64", "float32"]),
        n_shm_handoffs=_counts,
        n_pickled_handoffs=_counts,
        quarantined=_quarantine_entries,
        extras=_extras,
    )


def pipeline_records():
    return st.builds(
        PipelineMetrics,
        rows_ingested=_counts,
        n_batches=_counts,
        n_empty_polls=_counts,
        n_blocks_folded=_counts,
        n_source_rotations=_counts,
        n_source_truncations=_counts,
        n_rows_skipped=_counts,
        n_rows_diverted=_counts,
        n_drift_evaluations=_counts,
        n_refreshes=_counts,
        refresh_reasons=st.dictionaries(_words, _counts, max_size=4),
        last_refresh_reason=_words,
        last_version=_counts,
        rows_since_refresh=_counts,
        last_guessing_error=_gauge_floats,
        baseline_guessing_error=_gauge_floats,
        last_angle_degrees=_gauge_floats,
        reservoir_rows=_counts,
        reservoir_capacity=_counts,
        ingest_seconds=_seconds,
        drift_seconds=_seconds,
        refresh_seconds=_seconds,
        last_refresh_seconds=_gauge_floats,
        extras=_extras,
    )


def serve_records():
    # Sample lists stay tiny so the _MAX_SAMPLES retention cap never
    # binds; trimming would (intentionally) break strict associativity.
    return st.builds(
        ServeMetrics,
        n_batches=_counts,
        n_rows=_counts,
        n_rows_filled=_counts,
        n_rows_no_holes=_counts,
        n_rows_all_holes=_counts,
        n_groups=_counts,
        n_holes_filled=_counts,
        cache_hits=_counts,
        cache_misses=_counts,
        cache_evictions=_counts,
        n_publishes=_counts,
        fill_seconds=_seconds,
        group_sizes=st.lists(_counts, max_size=4),
        batch_latencies=st.lists(_seconds, max_size=4),
        extras=_extras,
    )


def serve_http_records():
    return st.builds(
        ServeHttpMetrics,
        n_requests=_counts,
        n_fill_requests=_counts,
        n_whatif_requests=_counts,
        n_outlier_requests=_counts,
        n_recommend_requests=_counts,
        n_flushes=_counts,
        n_rows_coalesced=_counts,
        n_shed_queue_full=_counts,
        n_expired=_counts,
        n_errors=_counts,
        n_bad_requests=_counts,
        coalesce_seconds=_seconds,
        queue_depth=_counts,
        queue_depth_peak=_counts,
        flush_sizes=st.lists(_counts, max_size=4),
        coalesce_waits=st.lists(_seconds, max_size=4),
        extras=_extras,
    )


def store_records():
    return st.builds(
        StoreMetrics,
        n_publishes=_counts,
        publish_bytes=_counts,
        n_loads=_counts,
        n_cache_hits=_counts,
        n_cache_misses=_counts,
        n_cache_evictions=_counts,
        n_recoveries=_counts,
        n_quarantined=_counts,
        n_manifest_rebuilds=_counts,
        n_gc_removed=_counts,
        gc_reclaimed_bytes=_counts,
        n_sync_checks=_counts,
        n_sync_swaps=_counts,
        n_lock_breaks=_counts,
        publish_seconds=_seconds,
        load_seconds=_seconds,
        extras=_extras,
    )


def watch_records():
    return st.builds(
        WatchMetrics,
        rows_seen=_counts,
        rows_scored=_counts,
        rows_unscored=_counts,
        rows_passed=_counts,
        rows_cleaned=_counts,
        rows_quarantined=_counts,
        n_batches_tapped=_counts,
        n_bursts=_counts,
        n_calibration_resets=_counts,
        n_events=_counts,
        n_sink_failures=_counts,
        events_by_kind=st.dictionaries(_words, _counts, max_size=4),
        last_event_kind=_words,
        last_z_score=_gauge_floats,
        last_residual=_gauge_floats,
        calibration_rows=_counts,
        calibration_mean=_gauge_floats,
        calibration_std=_gauge_floats,
        model_version=_counts,
        quarantine_rows=_counts,
        quarantine_bytes=_counts,
        score_seconds=_seconds,
        clean_seconds=_seconds,
        quarantine_seconds=_seconds,
        extras=_extras,
    )


_RECORD_STRATEGIES = {
    ScanMetrics: scan_records,
    PipelineMetrics: pipeline_records,
    ServeMetrics: serve_records,
    ServeHttpMetrics: serve_http_records,
    StoreMetrics: store_records,
    WatchMetrics: watch_records,
}

#: Exhaustive merge classification.  Every dataclass field must appear
#: in exactly one bucket; test_merge_classification_is_exhaustive
#: enforces it so new fields cannot silently skip merge coverage.
_SUMMED = {
    ScanMetrics: (
        "n_sources", "n_chunks", "n_blocks", "n_rows", "n_merges",
        "scan_seconds", "solve_seconds", "total_seconds", "n_faults",
        "n_retries", "n_timeouts", "n_quarantined", "rows_quarantined",
        "bytes_quarantined", "n_executor_downgrades", "n_chunks_resumed",
        "n_shm_handoffs", "n_pickled_handoffs",
    ),
    PipelineMetrics: (
        "rows_ingested", "n_batches", "n_empty_polls", "n_blocks_folded",
        "n_source_rotations", "n_source_truncations", "n_rows_skipped",
        "n_rows_diverted", "n_drift_evaluations", "n_refreshes",
        "rows_since_refresh",
        "ingest_seconds", "drift_seconds", "refresh_seconds",
    ),
    ServeMetrics: (
        "n_batches", "n_rows", "n_rows_filled", "n_rows_no_holes",
        "n_rows_all_holes", "n_groups", "n_holes_filled", "cache_hits",
        "cache_misses", "cache_evictions", "n_publishes", "fill_seconds",
    ),
    ServeHttpMetrics: (
        "n_requests", "n_fill_requests", "n_whatif_requests",
        "n_outlier_requests", "n_recommend_requests", "n_flushes",
        "n_rows_coalesced", "n_shed_queue_full", "n_expired", "n_errors",
        "n_bad_requests", "coalesce_seconds",
    ),
    StoreMetrics: (
        "n_publishes", "publish_bytes", "n_loads", "n_cache_hits",
        "n_cache_misses", "n_cache_evictions", "n_recoveries",
        "n_quarantined", "n_manifest_rebuilds", "n_gc_removed",
        "gc_reclaimed_bytes", "n_sync_checks", "n_sync_swaps",
        "n_lock_breaks", "publish_seconds", "load_seconds",
    ),
    WatchMetrics: (
        "rows_seen", "rows_scored", "rows_unscored", "rows_passed",
        "rows_cleaned", "rows_quarantined", "n_batches_tapped",
        "n_bursts", "n_calibration_resets", "n_events",
        "n_sink_failures", "score_seconds", "clean_seconds",
        "quarantine_seconds",
    ),
}
_RECEIVER_KEPT = {
    ScanMetrics: ("executor", "n_workers", "accumulate_dtype"),
    PipelineMetrics: (
        "last_refresh_reason", "last_version", "last_guessing_error",
        "baseline_guessing_error", "last_angle_degrees", "reservoir_rows",
        "reservoir_capacity", "last_refresh_seconds",
    ),
    ServeMetrics: (),
    ServeHttpMetrics: ("queue_depth",),
    StoreMetrics: (),
    WatchMetrics: (
        "last_event_kind", "last_z_score", "last_residual",
        "calibration_rows", "calibration_mean", "calibration_std",
        "model_version", "quarantine_rows", "quarantine_bytes",
    ),
}
_CONCATENATED = {
    ScanMetrics: ("quarantined",),
    PipelineMetrics: (),
    ServeMetrics: ("group_sizes", "batch_latencies"),
    ServeHttpMetrics: ("flush_sizes", "coalesce_waits"),
    StoreMetrics: (),
    WatchMetrics: (),
}
_KEY_SUMMED = {
    ScanMetrics: ("extras",),
    PipelineMetrics: ("refresh_reasons", "extras"),
    ServeMetrics: ("extras",),
    ServeHttpMetrics: ("extras",),
    StoreMetrics: ("extras",),
    WatchMetrics: ("events_by_kind", "extras"),
}
#: High-water-mark gauges: merge takes the max (associative, and the
#: default 0 is its identity on the non-negative draws above).
_MAXED = {
    ScanMetrics: (),
    PipelineMetrics: (),
    ServeMetrics: (),
    ServeHttpMetrics: ("queue_depth_peak",),
    StoreMetrics: (),
    WatchMetrics: (),
}

_RECORD_TYPES = [
    ScanMetrics,
    PipelineMetrics,
    ServeMetrics,
    ServeHttpMetrics,
    StoreMetrics,
    WatchMetrics,
]
_record_params = pytest.mark.parametrize(
    "record_type", _RECORD_TYPES, ids=lambda t: t.__name__
)


def _copy(record):
    """Deep-ish copy via the serialization path (locks are not copyable)."""
    return type(record).from_dict(record.to_dict())


@_record_params
def test_merge_classification_is_exhaustive(record_type):
    classified = set(
        _SUMMED[record_type]
        + _RECEIVER_KEPT[record_type]
        + _CONCATENATED[record_type]
        + _KEY_SUMMED[record_type]
        + _MAXED[record_type]
    )
    declared = {f.name for f in dataclasses.fields(record_type)}
    assert classified == declared, (
        f"unclassified merge fields on {record_type.__name__}: "
        f"{sorted(declared ^ classified)}"
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
@_record_params
def test_dict_round_trip(record_type, data):
    record = data.draw(_RECORD_STRATEGIES[record_type]())
    assert record_type.from_dict(record.to_dict()) == record


@settings(max_examples=60, deadline=None)
@given(data=st.data())
@_record_params
def test_json_round_trip(record_type, data):
    record = data.draw(_RECORD_STRATEGIES[record_type]())
    assert record_type.from_json(record.to_json()) == record


@settings(max_examples=60, deadline=None)
@given(data=st.data())
@_record_params
def test_merge_folds_every_counter_exactly_once(record_type, data):
    strategy = _RECORD_STRATEGIES[record_type]()
    a, b = data.draw(strategy), data.draw(strategy)
    merged = _copy(a)
    merged.merge(_copy(b))
    for name in _SUMMED[record_type]:
        expected = getattr(a, name) + getattr(b, name)
        assert getattr(merged, name) == expected, name
    for name in _RECEIVER_KEPT[record_type]:
        assert getattr(merged, name) == getattr(a, name), name
    for name in _CONCATENATED[record_type]:
        assert getattr(merged, name) == getattr(a, name) + getattr(b, name)
    for name in _MAXED[record_type]:
        assert getattr(merged, name) == max(
            getattr(a, name), getattr(b, name)
        ), name
    for name in _KEY_SUMMED[record_type]:
        mine, theirs = getattr(a, name), getattr(b, name)
        folded = getattr(merged, name)
        assert set(folded) == set(mine) | set(theirs)
        for key, value in folded.items():
            left, right = mine.get(key), theirs.get(key)
            if isinstance(left, int) and isinstance(right, int):
                assert value == left + right, (name, key)
            elif left is not None:
                assert value == left, (name, key)  # receiver wins
            else:
                assert value == right, (name, key)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
@_record_params
def test_merge_is_associative(record_type, data):
    strategy = _RECORD_STRATEGIES[record_type]()
    a, b, c = data.draw(strategy), data.draw(strategy), data.draw(strategy)

    left = _copy(a)
    ab = _copy(a)
    ab.merge(_copy(b))
    left = ab
    left.merge(_copy(c))

    bc = _copy(b)
    bc.merge(_copy(c))
    right = _copy(a)
    right.merge(bc)

    assert left == right


@settings(max_examples=40, deadline=None)
@given(data=st.data())
@_record_params
def test_merge_with_default_record_adds_only_defaults(record_type, data):
    # Not a strict identity: some defaults are non-zero by design
    # (a default ScanMetrics describes one source / one chunk).
    record = data.draw(_RECORD_STRATEGIES[record_type]())
    default = record_type()
    merged = _copy(record)
    merged.merge(record_type())
    for name in _SUMMED[record_type]:
        expected = getattr(record, name) + getattr(default, name)
        assert getattr(merged, name) == expected, name
    for name in _RECEIVER_KEPT[record_type]:
        assert getattr(merged, name) == getattr(record, name), name
    for name in (
        _CONCATENATED[record_type]
        + _KEY_SUMMED[record_type]
        + _MAXED[record_type]
    ):
        assert getattr(merged, name) == getattr(record, name), name


@settings(max_examples=25, deadline=None)
@given(data=st.data())
@_record_params
def test_snapshot_is_independent_of_the_live_record(record_type, data):
    """to_dict must deep-copy containers: mutating a restored record
    (e.g. merging into it) must never leak back into the original."""
    record = data.draw(_RECORD_STRATEGIES[record_type]())
    before = record.to_json()
    restored = _copy(record)
    restored.merge(_copy(record))
    assert record.to_json() == before
