"""Acceptance tests for cross-process span propagation.

The tentpole guarantee: spans emitted *inside* scan workers (which run
in other processes under the process executor) appear in the
coordinator's trace dump, re-parented under the coordinator's
``engine.scan`` span, with timings that nest inside the parent and --
per worker -- do not overlap (one process scans one chunk at a time).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.engine import scan_sources
from repro.io.rowstore import RowStore
from repro.obs.tracing import dump_spans, get_tracer, set_tracing

pytestmark = pytest.mark.obs


@pytest.fixture
def traced():
    """Enable global tracing for one test, restoring a clean tracer."""
    tracer = get_tracer()
    tracer.clear()
    set_tracing(True)
    yield tracer
    set_tracing(False)
    tracer.clear()


@pytest.fixture
def shard_path(tmp_path):
    """An on-disk row store: file sources keep the process fabric.

    In-memory arrays are deliberately downgraded to threads by the
    engine (they would be pickled wholesale), so the cross-process
    tests need a real file.
    """
    matrix = np.random.default_rng(0).normal(size=(400, 3))
    path = tmp_path / "shard.rr"
    RowStore.write_matrix(path, matrix)
    return path


def _scan_traced(tracer, source, *, executor: str, n_chunks: int = 4):
    result = scan_sources(
        [source], executor=executor, target_chunks=n_chunks, max_workers=2
    )
    spans = {s["span_id"]: s for s in tracer.spans()}
    by_name: dict = {}
    for record in spans.values():
        by_name.setdefault(record["name"], []).append(record)
    return result, spans, by_name


class TestProcessWorkerSpans:
    @pytest.fixture(autouse=True)
    def _spans(self, traced, shard_path):
        self.result, self.spans, self.by_name = _scan_traced(
            traced, shard_path, executor="process"
        )

    def test_chunk_spans_are_collected(self):
        chunks = self.by_name["scan.chunk"]
        assert len(chunks) == 4
        assert {c["attrs"]["chunk_index"] for c in chunks} == {0, 1, 2, 3}

    def test_chunk_spans_come_from_worker_processes(self):
        pids = {c["pid"] for c in self.by_name["scan.chunk"]}
        assert os.getpid() not in pids  # genuinely out-of-process

    def test_chunk_spans_parent_under_engine_scan(self):
        (scan,) = self.by_name["engine.scan"]
        for chunk in self.by_name["scan.chunk"]:
            assert chunk["parent_id"] == scan["span_id"]

    def test_chunk_timings_nest_inside_parent(self):
        (scan,) = self.by_name["engine.scan"]
        for chunk in self.by_name["scan.chunk"]:
            assert scan["start"] <= chunk["start"]
            assert chunk["end"] <= scan["end"]

    def test_chunk_timings_do_not_overlap_per_worker(self):
        per_pid: dict = {}
        for chunk in self.by_name["scan.chunk"]:
            per_pid.setdefault(chunk["pid"], []).append(chunk)
        for chunks in per_pid.values():
            chunks.sort(key=lambda c: c["start"])
            for earlier, later in zip(chunks, chunks[1:]):
                assert earlier["end"] <= later["start"]

    def test_coordinator_phases_present(self):
        assert len(self.by_name["engine.plan"]) == 1
        assert len(self.by_name["engine.merge"]) == 1
        (scan,) = self.by_name["engine.scan"]
        assert scan["attrs"]["executor_used"] == "process"
        assert scan["attrs"]["n_rows"] == 400

    def test_chunk_attrs_carry_row_counts(self):
        total = sum(c["attrs"]["rows"] for c in self.by_name["scan.chunk"])
        assert total == 400

    def test_dump_contains_worker_spans(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_spans(path)
        payload = json.loads(path.read_text())
        names = [s["name"] for s in payload["spans"]]
        assert names.count("scan.chunk") == 4
        assert payload["n_dropped"] == 0


class TestOtherExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_chunk_spans_collected_uniformly(self, traced, shard_path, executor):
        result, spans, by_name = _scan_traced(
            traced, shard_path, executor=executor
        )
        (scan,) = by_name["engine.scan"]
        chunks = by_name["scan.chunk"]
        assert len(chunks) == 4
        for chunk in chunks:
            assert chunk["parent_id"] == scan["span_id"]
            assert scan["start"] <= chunk["start"] <= chunk["end"] <= scan["end"]

    def test_tracing_off_leaves_no_spans(self, shard_path):
        tracer = get_tracer()
        tracer.clear()
        scan_sources([shard_path], executor="process", target_chunks=2)
        assert tracer.spans() == []

    def test_scan_results_identical_with_and_without_tracing(
        self, traced, shard_path
    ):
        with_trace = scan_sources(
            [shard_path], executor="process", target_chunks=2
        )
        set_tracing(False)
        without = scan_sources(
            [shard_path], executor="process", target_chunks=2
        )
        traced_state = with_trace.accumulator.state()
        plain_state = without.accumulator.state()
        assert traced_state.keys() == plain_state.keys()
        for key in traced_state:
            np.testing.assert_array_equal(
                traced_state[key], plain_state[key]
            )
