"""Tests for the span tracer: nesting, bounding, adoption, rendering.

Everything here runs on *private* :class:`Tracer` instances except the
module-level-API tests, which carefully restore the global switch --
tracing must stay off for every other test in the suite (the
disabled-by-default guarantee is itself under test).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import (
    DEFAULT_BUFFER_SPANS,
    SpanHandle,
    Tracer,
    drain_spans,
    get_tracer,
    render_span_tree,
    set_tracing,
    span,
    tracing_enabled,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def tracer() -> Tracer:
    return Tracer(enabled=True)


class TestSpanBasics:
    def test_span_records_name_timing_and_status(self, tracer):
        with tracer.span("work", rows=7):
            pass
        (record,) = tracer.spans()
        assert record["name"] == "work"
        assert record["attrs"] == {"rows": 7}
        assert record["status"] == "ok"
        assert record["end"] >= record["start"]
        assert record["span_id"]

    def test_nesting_sets_parent_and_finish_order(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = tracer.spans()
        assert inner_rec["name"] == "inner"  # inner finishes first
        assert outer_rec["name"] == "outer"
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["start"] <= inner_rec["start"]
        assert inner_rec["end"] <= outer_rec["end"]

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.spans()
        assert record["status"] == "error"

    def test_set_attr_mid_flight(self, tracer):
        with tracer.span("work") as handle:
            handle.set_attr("n_rows", 42)
        assert tracer.spans()[0]["attrs"]["n_rows"] == 42

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        records = {r["name"]: r for r in tracer.spans()}
        assert records["first"]["parent_id"] == parent.span_id
        assert records["second"]["parent_id"] == parent.span_id

    def test_threads_get_independent_stacks(self, tracer):
        done = threading.Event()

        def worker():
            with tracer.span("thread.child"):
                pass
            done.set()

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        records = {r["name"]: r for r in tracer.spans()}
        # The other thread's span must NOT be parented under main.root.
        assert records["thread.child"]["parent_id"] is None


class TestDisabledPath:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b", rows=1)
        assert first is second  # the shared singleton: no allocation
        with first as handle:
            handle.set_attr("ignored", 1)
        assert tracer.spans() == []

    def test_null_span_has_no_identity(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x").span_id is None

    def test_decorator_is_passthrough_when_disabled(self):
        tracer = Tracer(enabled=False)

        @tracer.traced("decorated")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert add.__name__ == "add"
        assert tracer.spans() == []


class TestDecorator:
    def test_decorator_records_span_per_call(self, tracer):
        @tracer.traced()
        def work():
            return "done"

        assert work() == "done"
        assert work() == "done"
        names = [r["name"] for r in tracer.spans()]
        assert len(names) == 2
        assert all("work" in name for name in names)

    def test_decorator_explicit_name(self, tracer):
        @tracer.traced("custom.name")
        def work():
            pass

        work()
        assert tracer.spans()[0]["name"] == "custom.name"


class TestRingBuffer:
    def test_buffer_bounds_and_counts_drops(self):
        tracer = Tracer(enabled=True, buffer_spans=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s["name"] for s in spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.n_dropped == 6

    def test_default_capacity(self):
        assert Tracer()._buffer.maxlen == DEFAULT_BUFFER_SPANS == 8192

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="buffer_spans"):
            Tracer(buffer_spans=0)

    def test_drain_clears_but_keeps_drop_count(self):
        tracer = Tracer(enabled=True, buffer_spans=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.spans() == []
        assert tracer.n_dropped == 2

    def test_clear_resets_drop_count(self):
        tracer = Tracer(enabled=True, buffer_spans=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.n_dropped == 0


class TestAdoption:
    def test_adopt_reparents_foreign_roots_only(self, tracer):
        foreign = Tracer(enabled=True)
        with foreign.span("worker.root"):
            with foreign.span("worker.child"):
                pass
        payloads = foreign.export()
        assert foreign.spans() == []  # export drains

        with tracer.span("coordinator") as parent:
            adopted = tracer.adopt(payloads, parent=parent)
        assert adopted == 2
        records = {r["name"]: r for r in tracer.spans()}
        root = records["worker.root"]
        child = records["worker.child"]
        assert root["parent_id"] == parent.span_id
        # Internal parentage is preserved, not re-homed.
        assert child["parent_id"] == root["span_id"]

    def test_adopt_without_parent_makes_roots(self, tracer):
        foreign = Tracer(enabled=True)
        with foreign.span("orphan"):
            pass
        tracer.adopt(foreign.export())
        assert tracer.spans()[0]["parent_id"] is None

    def test_adopt_does_not_mutate_payloads(self, tracer):
        foreign = Tracer(enabled=True)
        with foreign.span("w"):
            pass
        payloads = foreign.export()
        before = json.dumps(payloads, sort_keys=True)
        with tracer.span("p") as parent:
            tracer.adopt(payloads, parent=parent)
        assert json.dumps(payloads, sort_keys=True) == before

    def test_exported_payloads_are_json_clean(self):
        foreign = Tracer(enabled=True)
        with foreign.span("w", rows=3):
            pass
        text = json.dumps(foreign.export())
        assert "rows" in text


class TestDumpAndRender:
    def test_dump_writes_sorted_trace_file(self, tmp_path, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        written = tracer.dump(path)
        assert written == 2
        payload = json.loads(path.read_text())
        assert payload["clock"] == "perf_counter"
        assert payload["n_spans"] == 2
        assert payload["n_dropped"] == 0
        starts = [s["start"] for s in payload["spans"]]
        assert starts == sorted(starts)
        # dump() is non-destructive
        assert len(tracer.spans()) == 2

    def test_render_tree_indents_children(self, tracer):
        with tracer.span("outer", executor="serial"):
            with tracer.span("inner"):
                pass
        text = render_span_tree(
            {"spans": tracer.spans(), "n_dropped": 0}
        )
        lines = text.splitlines()
        assert lines[0] == "2 span(s)"
        assert lines[1].startswith("outer")
        assert "executor=serial" in lines[1]
        assert lines[2].startswith("  inner")

    def test_render_reports_drops_and_errors(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("x")
        text = render_span_tree({"spans": tracer.spans(), "n_dropped": 3})
        assert "(3 dropped by the ring buffer)" in text
        assert "bad !" in text

    def test_render_handles_orphan_parents(self):
        spans = [
            {
                "name": "lost.child",
                "span_id": "1-1",
                "parent_id": "dead-beef",
                "start": 0.0,
                "end": 0.5,
                "attrs": {},
            }
        ]
        text = render_span_tree({"spans": spans})
        assert "lost.child" in text

    def test_render_empty_trace(self):
        assert render_span_tree({"spans": []}) == "0 span(s)"


class TestModuleLevelAPI:
    def test_global_tracing_disabled_by_default(self):
        assert tracing_enabled() is False
        with span("ignored") as handle:
            assert handle.span_id is None
        assert get_tracer().spans() == []

    def test_global_switch_round_trip(self):
        set_tracing(True)
        try:
            assert tracing_enabled()
            with span("global.demo", rows=1):
                pass
        finally:
            set_tracing(False)
        drained = drain_spans()
        assert [s["name"] for s in drained] == ["global.demo"]
        assert tracing_enabled() is False

    def test_span_ids_are_unique(self, tracer):
        handles = []
        for index in range(50):
            with tracer.span(f"s{index}") as handle:
                handles.append(handle.span_id)
        assert len(set(handles)) == 50

    def test_span_handle_slots(self):
        handle = SpanHandle(Tracer(enabled=True), "x", {})
        with pytest.raises(AttributeError):
            handle.arbitrary = 1
