"""Tests for the ``serve-http`` CLI subcommand."""

import threading
import time

import numpy as np
import pytest

from repro.cli import _cmd_serve_http, build_parser, main
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema
from repro.serve import BatchFiller

from tests.serve.conftest import http_get, http_post

pytestmark = pytest.mark.serve

SCHEMA = TableSchema.from_names(["a", "b", "c"])


@pytest.fixture
def train_matrix(rng):
    factor = rng.normal(5.0, 2.0, size=120)
    return np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (120, 3))


@pytest.fixture
def model_file(tmp_path, train_matrix):
    path = tmp_path / "model.npz"
    RatioRuleModel(cutoff=1).fit(train_matrix, SCHEMA).save(path)
    return path


class _RunningServer:
    """Drives ``_cmd_serve_http`` on a thread via its testing hooks
    (``_stop_event`` to end the serve loop, ``_server`` to discover
    the ephemeral port)."""

    def __init__(self, argv):
        self.args = build_parser().parse_args(argv)
        self.args._stop_event = threading.Event()
        self.exit_code = None
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        self.exit_code = _cmd_serve_http(self.args)

    def __enter__(self):
        self._thread.start()
        deadline = time.monotonic() + 10.0
        while not hasattr(self.args, "_server"):
            assert time.monotonic() < deadline, "server never came up"
            assert self._thread.is_alive(), "serve-http exited early"
            time.sleep(0.005)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.args._stop_event.set()
        self._thread.join(timeout=10.0)

    @property
    def url(self):
        return self.args._server.url


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve-http", "m.npz"])
        assert args.command == "serve-http"
        assert args.host == "127.0.0.1"
        assert args.port == 8090
        assert args.max_batch_rows == 64
        assert args.flush_margin_ms == 5.0
        assert args.queue_limit == 256
        assert args.default_timeout_ms == 1000.0
        assert args.cache_entries == 1024
        assert args.underdetermined == "truncate"
        assert args.duration is None
        assert args.stats is False

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-http", "m.npz", "--underdetermined", "zero"]
            )


class TestServeHttp:
    def test_serves_fill_requests_matching_offline(
        self, model_file, train_matrix, capsys
    ):
        model = RatioRuleModel.load(model_file)
        offline = BatchFiller(model).fill_batch(
            np.array([[np.nan, 4.0, 6.0]])
        )
        with _RunningServer(
            ["serve-http", str(model_file), "--port", "0"]
        ) as server:
            status, body, _ = http_post(
                server.url + "/v1/fill", {"row": [None, 4.0, 6.0]}
            )
            assert status == 200
            assert body["filled"] == [float(v) for v in offline.filled[0]]
            assert body["version"] == 1
            status, health, _ = http_get(server.url + "/healthz")
            assert status == 200 and health["status"] == "ok"
        assert server.exit_code == 0
        out = capsys.readouterr().out
        assert "serving Ratio Rules API on http://127.0.0.1:" in out
        assert "model version 1" in out

    def test_stats_flag_renders_metrics(self, model_file, capsys):
        with _RunningServer(
            ["serve-http", str(model_file), "--port", "0", "--stats"]
        ) as server:
            status, _, _ = http_post(
                server.url + "/v1/fill", {"row": [None, 4.0, 6.0]}
            )
            assert status == 200
        assert server.exit_code == 0
        assert "HTTP serving statistics" in capsys.readouterr().out

    def test_duration_bounds_the_serve_loop(self, model_file, capsys):
        assert main(
            [
                "serve-http",
                str(model_file),
                "--port",
                "0",
                "--duration",
                "0.05",
            ]
        ) == 0
        assert "serving Ratio Rules API" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flag, value",
        [
            ("--max-batch-rows", "0"),
            ("--queue-limit", "0"),
            ("--flush-margin-ms", "-1"),
            ("--default-timeout-ms", "0"),
        ],
    )
    def test_invalid_tuning_is_an_error(
        self, model_file, flag, value, capsys
    ):
        assert main(["serve-http", str(model_file), flag, value]) == 2
        assert "error:" in capsys.readouterr().err
