"""Run the doctests embedded in public docstrings.

Documentation examples that don't run are worse than none; this keeps
the ``>>>`` blocks honest.
"""

import doctest

import pytest

import repro.core.model
import repro.pipeline.pipeline
import repro.serve.batch
import repro.serve.registry

MODULES_WITH_DOCTESTS = [
    repro.core.model,
    repro.pipeline.pipeline,
    repro.serve.batch,
    repro.serve.registry,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert (
        results.failed == 0
    ), f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
