"""Tests for ``ratio-rules watch run`` / ``watch status``."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema
from repro.watch import JsonlSink, RowQuarantine, WatchStatus

from tests.conftest import make_regime_matrix

pytestmark = pytest.mark.watch

COLUMNS = ["bread", "milk", "butter"]
OUTLIER_ROW = [5.0, 500.0, -300.0]


def write_stream_csv(path, matrix):
    with open(path, "w") as handle:
        handle.write(",".join(COLUMNS) + "\n")
        for row in matrix:
            handle.write(",".join(repr(float(v)) for v in row) + "\n")


@pytest.fixture
def seed_model_file(tmp_path):
    train = make_regime_matrix(0, n_rows=400)
    model = RatioRuleModel(cutoff=1).fit(
        train, TableSchema.from_names(COLUMNS)
    )
    path = tmp_path / "seed.npz"
    model.save(path)
    return path


@pytest.fixture
def stream_csv(tmp_path):
    clean = make_regime_matrix(1, n_rows=300)
    matrix = np.vstack(
        [clean[:200], np.array([OUTLIER_ROW]), clean[200:]]
    )
    path = tmp_path / "stream.csv"
    write_stream_csv(path, matrix)
    return path


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["watch", "run", "data.csv"])
        assert args.watch_command == "run"
        assert args.clean_sigmas == 4.0
        assert args.quarantine_sigmas == 8.0
        assert args.format == "text"
        assert not args.follow

    def test_status_requires_a_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch", "status"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch"])

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["watch", "status", "s.json", "--format", "yaml"]
            )


class TestWatchRun:
    def test_quarantines_and_reports(
        self, tmp_path, stream_csv, seed_model_file, capsys
    ):
        events = tmp_path / "events.jsonl"
        quarantine = tmp_path / "quarantine.jsonl"
        status_file = tmp_path / "status.json"
        rc = main(
            [
                "watch",
                "run",
                str(stream_csv),
                "--model",
                str(seed_model_file),
                "--quarantine",
                str(quarantine),
                "--events",
                str(events),
                "--status-file",
                str(status_file),
                "--clean-sigmas",
                "8",
                "--quarantine-sigmas",
                "8",
                "--batch-rows",
                "100",
                "--min-calibration-rows",
                "64",
                "--stats",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "watch-started" in out
        assert "row-quarantined" in out
        assert "Watch statistics" in out
        # The outlier is preserved bit-exactly in the quarantine.
        records = RowQuarantine(quarantine).read_all()
        assert len(records) == 1
        np.testing.assert_array_equal(
            RowQuarantine.decode_values(records[0]), OUTLIER_ROW
        )
        # Exactly one structured quarantine event in the JSONL sink.
        kinds = [e.kind for e in JsonlSink.read_events(events)]
        assert kinds.count("row-quarantined") == 1
        # The status file is a loadable snapshot of the finished run.
        status = WatchStatus.load(status_file)
        assert status.watch_metrics["rows_quarantined"] == 1
        assert status.model_version >= 1

    def test_quiet_suppresses_stdout_events(
        self, tmp_path, stream_csv, seed_model_file, capsys
    ):
        rc = main(
            [
                "watch",
                "run",
                str(stream_csv),
                "--model",
                str(seed_model_file),
                "--quarantine",
                str(tmp_path / "q.jsonl"),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[watch]" not in out  # no stdout event sink
        assert "state" in out  # the final status block still prints

    def test_json_format_prints_machine_status(
        self, tmp_path, stream_csv, seed_model_file, capsys
    ):
        rc = main(
            [
                "watch",
                "run",
                str(stream_csv),
                "--model",
                str(seed_model_file),
                "--quarantine",
                str(tmp_path / "q.jsonl"),
                "--quiet",
                "--format",
                "json",
            ]
        )
        assert rc == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        payload = json.loads(lines[-1])
        assert payload["watch_metrics"]["rows_seen"] == 301

    def test_bootstraps_without_a_seed_model(
        self, tmp_path, stream_csv, capsys
    ):
        rc = main(
            [
                "watch",
                "run",
                str(stream_csv),
                "--quarantine",
                str(tmp_path / "q.jsonl"),
                "--min-rows",
                "100",
                "--quiet",
            ]
        )
        assert rc == 0
        assert "version" in capsys.readouterr().out

    def test_missing_csv_is_a_clean_error(self, tmp_path, capsys):
        rc = main(
            [
                "watch",
                "run",
                str(tmp_path / "nope.csv"),
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_thresholds_are_a_clean_error(
        self, tmp_path, stream_csv, capsys
    ):
        rc = main(
            [
                "watch",
                "run",
                str(stream_csv),
                "--clean-sigmas",
                "9",
                "--quarantine-sigmas",
                "8",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestWatchStatusCommand:
    def test_renders_text_and_json(self, tmp_path, capsys):
        status = WatchStatus(
            running=False,
            model_version=2,
            watch_metrics={"rows_seen": 10, "rows_quarantined": 1},
        )
        path = tmp_path / "status.json"
        status.save(path)
        assert main(["watch", "status", str(path)]) == 0
        assert "version 2" in capsys.readouterr().out
        assert (
            main(["watch", "status", str(path), "--format", "json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["model_version"] == 2

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["watch", "status", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "status.json"
        path.write_text("{not json")
        rc = main(["watch", "status", str(path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
