"""Tests for the ``--store``/``--tenant``/``--keep-last`` CLI flags.

The durable tier's command-line surface: ``serve-batch`` and
``serve-http`` can mount a :class:`~repro.store.ModelStore` instead of
(or in addition to) a model file, and ``pipeline`` can publish every
refresh durably into a tenant namespace.
"""

import threading
import time

import numpy as np
import pytest

from repro.cli import _cmd_serve_http, build_parser, main
from repro.core.model import RatioRuleModel
from repro.io.csv_format import save_csv_matrix
from repro.io.schema import TableSchema
from repro.serve import ModelRegistry
from repro.store import DEFAULT_NAMESPACE, ModelStore

from tests.serve.conftest import http_get, http_post

pytestmark = [pytest.mark.serve, pytest.mark.store]

SCHEMA = TableSchema.from_names(["a", "b", "c"])


@pytest.fixture
def train_matrix(rng):
    factor = rng.normal(5.0, 2.0, size=120)
    return np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (120, 3))


@pytest.fixture
def model_file(tmp_path, train_matrix):
    path = tmp_path / "model.npz"
    RatioRuleModel(cutoff=1).fit(train_matrix, SCHEMA).save(path)
    return path


@pytest.fixture
def holey_csv(tmp_path, train_matrix, rng):
    matrix = train_matrix[:20].copy()
    matrix[rng.random(matrix.shape) < 0.3] = np.nan
    path = tmp_path / "requests.csv"
    save_csv_matrix(path, matrix, SCHEMA)
    return path


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve-batch", "m.npz", "d.csv"],
            ["serve-http", "m.npz"],
            ["pipeline", "d.csv"],
        ],
    )
    def test_store_flags_default_off(self, argv):
        args = build_parser().parse_args(argv)
        assert args.store is None
        assert args.tenant is None
        assert args.keep_last is None

    def test_store_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve-batch",
                "--store", "s",
                "--tenant", "acme/sales",
                "--keep-last", "3",
                "d.csv",
            ]
        )
        assert args.store == "s"
        assert args.tenant == "acme/sales"
        assert args.keep_last == 3
        # With a store the model positional becomes optional.
        assert args.model == "d.csv" or args.data == "d.csv"


class TestServeBatchStore:
    def test_model_file_is_published_into_the_store(
        self, model_file, holey_csv, store_dir, capsys
    ):
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(holey_csv),
                "--store", str(store_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("a,b,c")
        assert ModelStore(store_dir).versions(DEFAULT_NAMESPACE) == [1]

    def test_serves_from_store_without_a_model_file(
        self, model_file, holey_csv, store_dir, tmp_path, capsys
    ):
        ModelStore(store_dir).publish(
            RatioRuleModel.load(model_file), namespace="acme"
        )
        out_path = tmp_path / "filled.csv"
        assert main(
            [
                "serve-batch",
                str(holey_csv),
                "--store", str(store_dir),
                "--tenant", "acme",
                "--output", str(out_path),
            ]
        ) == 0
        assert "model version 1" in capsys.readouterr().out
        assert out_path.exists()

    def test_store_only_run_matches_model_file_run(
        self, model_file, holey_csv, store_dir, tmp_path, capsys
    ):
        from_file = tmp_path / "file.csv"
        from_store = tmp_path / "store.csv"
        assert main(
            [
                "serve-batch", str(model_file), str(holey_csv),
                "--output", str(from_file),
            ]
        ) == 0
        ModelStore(store_dir).publish(RatioRuleModel.load(model_file))
        assert main(
            [
                "serve-batch", str(holey_csv),
                "--store", str(store_dir),
                "--output", str(from_store),
            ]
        ) == 0
        assert from_file.read_text() == from_store.read_text()

    def test_keep_last_trims_history(
        self, model_file, holey_csv, store_dir, train_matrix, capsys
    ):
        for cutoff in (1, 2, 1):
            store = ModelStore(store_dir)
            store.publish(
                RatioRuleModel(cutoff=cutoff).fit(train_matrix, SCHEMA)
            )
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(holey_csv),
                "--store", str(store_dir),
                "--keep-last", "2",
            ]
        ) == 0
        assert ModelStore(store_dir).versions(DEFAULT_NAMESPACE) == [3, 4]

    def test_stats_include_the_store_section(
        self, model_file, holey_csv, store_dir, capsys
    ):
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(holey_csv),
                "--store", str(store_dir),
                "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Serving statistics" in out
        assert "Model store statistics" in out

    def test_empty_tenant_is_an_error(self, holey_csv, store_dir, capsys):
        assert main(
            ["serve-batch", str(holey_csv), "--store", str(store_dir)]
        ) == 2
        err = capsys.readouterr().err
        assert "has no published models" in err

    def test_tenant_requires_store(self, model_file, holey_csv, capsys):
        assert main(
            [
                "serve-batch", str(model_file), str(holey_csv),
                "--tenant", "acme",
            ]
        ) == 2
        assert "--tenant requires --store" in capsys.readouterr().err

    def test_keep_last_requires_store(self, model_file, holey_csv, capsys):
        assert main(
            [
                "serve-batch", str(model_file), str(holey_csv),
                "--keep-last", "2",
            ]
        ) == 2
        assert "--keep-last requires --store" in capsys.readouterr().err

    def test_no_model_and_no_store_is_an_error(self, holey_csv, capsys):
        assert main(["serve-batch", str(holey_csv)]) == 2
        assert "provide a model file, --store, or both" in (
            capsys.readouterr().err
        )


class _RunningServer:
    """Drives ``_cmd_serve_http`` on a thread via its testing hooks."""

    def __init__(self, argv):
        self.args = build_parser().parse_args(argv)
        self.args._stop_event = threading.Event()
        self.exit_code = None
        self._thread = threading.Thread(target=self._run)

    def _run(self):
        self.exit_code = _cmd_serve_http(self.args)

    def __enter__(self):
        self._thread.start()
        deadline = time.monotonic() + 10.0
        while not hasattr(self.args, "_server"):
            assert time.monotonic() < deadline, "server never came up"
            assert self._thread.is_alive(), "serve-http exited early"
            time.sleep(0.005)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.args._stop_event.set()
        self._thread.join(timeout=10.0)

    @property
    def url(self):
        return self.args._server.url


class TestServeHttpStore:
    def test_serves_tenants_from_the_store(
        self, model_file, store_dir, capsys
    ):
        model = RatioRuleModel.load(model_file)
        ModelStore(store_dir).publish(model, namespace="acme/sales")
        with _RunningServer(
            [
                "serve-http",
                "--store", str(store_dir),
                "--tenant", "acme/sales",
                "--port", "0",
                "--stats",
            ]
        ) as server:
            status, body, _ = http_post(
                server.url + "/v1/fill",
                {"row": [None, 4.0, 6.0], "timeout_ms": 2000},
            )
            assert status == 200
            assert body["fingerprint"] == model.fingerprint()
            status, listing, _ = http_get(server.url + "/v1/tenants")
            assert status == 200
            assert listing["default"] == "acme/sales"
        assert server.exit_code == 0
        out = capsys.readouterr().out
        assert f"tenant 'acme/sales' of store {store_dir}" in out
        assert "Model store statistics" in out

    def test_model_file_seeds_the_store(
        self, model_file, store_dir, capsys
    ):
        with _RunningServer(
            [
                "serve-http",
                str(model_file),
                "--store", str(store_dir),
                "--port", "0",
            ]
        ):
            pass
        registry = ModelRegistry(store=ModelStore(store_dir))
        assert registry.current().fingerprint == (
            RatioRuleModel.load(model_file).fingerprint()
        )

    def test_no_model_and_no_store_is_an_error(self, capsys):
        assert main(["serve-http"]) == 2
        assert "provide a model file, --store, or both" in (
            capsys.readouterr().err
        )

    def test_tenant_requires_store(self, model_file, capsys):
        assert main(
            ["serve-http", str(model_file), "--tenant", "acme"]
        ) == 2
        assert "--tenant requires --store" in capsys.readouterr().err


class TestPipelineStore:
    def test_refreshes_publish_durably(
        self, tmp_path, store_dir, train_matrix, capsys
    ):
        data = tmp_path / "stream.csv"
        save_csv_matrix(data, train_matrix, SCHEMA)
        assert main(
            [
                "pipeline",
                str(data),
                "--cutoff", "1",
                "--min-rows", "32",
                "--store", str(store_dir),
                "--tenant", "acme/sales",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "published version" in out
        # The publishes landed in the store; a cold registry (a whole
        # new serving process) recovers them without refitting.
        store = ModelStore(store_dir)
        versions = store.versions("acme/sales")
        assert versions and versions[-1] == len(versions)
        registry = ModelRegistry(store=store, namespace="acme/sales")
        assert registry.latest_version == versions[-1]
        assert registry.current().model.schema_.names == SCHEMA.names

    def test_tenant_requires_store(self, tmp_path, capsys):
        data = tmp_path / "stream.csv"
        data.write_text("a,b,c\n1,2,3\n")
        assert main(["pipeline", str(data), "--tenant", "acme"]) == 2
        assert "--tenant requires --store" in capsys.readouterr().err
