"""Small behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.guessing_error import guessing_error
from repro.core.interpret import loading_table
from repro.core.model import RatioRuleModel
from repro.core.visualize import Projection
from repro.experiments.fig8_scaleup import DEFAULT_SIZES, PAPER_SIZES
from repro.io.rowstore import RowStore


class TestProjectionExtremes:
    def test_count_clamped_to_points(self):
        projection = Projection(
            x=np.array([0.0, 1.0]), y=np.array([0.0, 1.0]), x_rule=0, y_rule=1
        )
        assert len(projection.extremes(10)) == 2


class TestLoadingTableOptions:
    def test_digits_respected(self, correlated_model):
        table = loading_table(correlated_model.rules_, digits=5)
        # A 5-decimal value appears somewhere in the table body.
        assert any(
            "." in cell and len(cell.split(".")[-1]) == 5
            for line in table.splitlines()[2:]
            for cell in line.split()
            if any(ch.isdigit() for ch in cell)
        )


class TestGuessingErrorInputFlexibility:
    def test_numpy_integer_hole_sets(self, correlated_model, correlated_matrix):
        sets = [np.array([0]), np.array([2])]
        report = guessing_error(
            correlated_model, correlated_matrix[:10], h=1, hole_sets=sets
        )
        assert report.n_hole_sets == 2


class TestRowStoreBlockedWrite:
    def test_small_block_rows(self, tmp_path, rng):
        matrix = rng.standard_normal((17, 2))
        path = tmp_path / "blocked.rr"
        RowStore.write_matrix(path, matrix, block_rows=4)
        restored, _schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, matrix)
        assert RowStore.verify(path)


class TestCLIGenerateAllDatasets:
    @pytest.mark.parametrize(
        "name,rows", [("baseball", 1574), ("abalone", 4177)]
    )
    def test_generate(self, tmp_path, name, rows, capsys):
        out = tmp_path / f"{name}.csv"
        assert main(["generate", name, str(out), "--seed", "3"]) == 0
        assert str(rows) in capsys.readouterr().out


class TestFig8Constants:
    def test_paper_sizes_reach_100k(self):
        assert max(PAPER_SIZES) == 100_000
        assert max(DEFAULT_SIZES) == 100_000
        assert list(PAPER_SIZES) == sorted(PAPER_SIZES)


class TestModelEffortSurface:
    def test_fill_after_load_without_refit(self, tmp_path, correlated_model):
        """A loaded model is immediately usable (no hidden fit state)."""
        path = tmp_path / "m.npz"
        correlated_model.save(path)
        loaded = RatioRuleModel.load(path)
        row = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        np.testing.assert_allclose(
            loaded.fill_row(row), correlated_model.fill_row(row)
        )
        # And it can score, project, and describe.
        assert "RR1" in loaded.describe()
        assert loaded.transform(np.ones((1, 5))).shape[1] == loaded.k
