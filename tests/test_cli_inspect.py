"""Tests for the `inspect` CLI subcommand."""

import numpy as np
import pytest

from repro.cli import main
from repro.io.csv_format import save_csv_matrix
from repro.io.schema import TableSchema


@pytest.fixture
def data_file(tmp_path, rng):
    factor = rng.normal(5.0, 2.0, size=200)
    matrix = np.outer(factor, [1.0, 2.0, 0.1]) + rng.normal(0, 0.05, (200, 3))
    matrix[:, 2] = rng.normal(7.0, 1.0, size=200)  # independent column
    path = tmp_path / "data.csv"
    save_csv_matrix(path, matrix, TableSchema.from_names(["a", "b", "c"]))
    return path


class TestInspectCommand:
    def test_reports_shape_and_stats(self, data_file, capsys):
        assert main(["inspect", str(data_file)]) == 0
        out = capsys.readouterr().out
        assert "200 rows x 3 columns" in out
        assert "mean" in out and "stddev" in out

    def test_reports_strong_correlation(self, data_file, capsys):
        main(["inspect", str(data_file)])
        out = capsys.readouterr().out
        assert "a ~ b" in out
        # a~b is near-perfect; the line should show +0.9-something.
        line = next(l for l in out.splitlines() if "a ~ b" in l)
        assert "+0.9" in line or "+1.0" in line

    def test_suggests_cutoff(self, data_file, capsys):
        main(["inspect", str(data_file)])
        out = capsys.readouterr().out
        assert "Suggested cutoff" in out
        assert "k = " in out

    def test_top_correlations_flag(self, data_file, capsys):
        assert main(["inspect", str(data_file), "--top-correlations", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("~") == 1
