"""The watch daemon: routing, events, and the accumulator guarantee.

The acceptance-criterion test lives in :class:`TestEndToEnd`: a daemon
tailing a CSV with injected outlier rows must quarantine them with
their bytes preserved, the accumulator must provably never see them
(the post-refresh model is bit-identical to an offline fit over only
the clean rows), and each quarantine must produce exactly one
structured event in a JSONL sink.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema
from repro.obs.metrics import WatchMetrics
from repro.pipeline import CSVTailSource, QueueSource, RefreshPolicy
from repro.pipeline.drift import DriftDetector
from repro.watch import (
    CallableSink,
    JsonlSink,
    NotificationManager,
    RoutingPolicy,
    RowQuarantine,
    WatchDaemon,
)
from tests.watch.conftest import COLUMNS, make_regime_matrix, make_seeded_parts

pytestmark = pytest.mark.watch

#: An obviously-broken transaction (the regime is ~[1, 2, 0.5] ratios).
OUTLIER_ROW = [5.0, 500.0, -300.0]


def make_daemon(source, tmp_path, *, parts=None, sinks=None, **kwargs):
    """A daemon wired the way most tests want it."""
    metrics = WatchMetrics()
    notifier = NotificationManager(list(sinks or []), metrics=metrics)
    defaults = dict(
        quarantine=RowQuarantine(tmp_path / "quarantine.jsonl"),
        notifier=notifier,
        metrics=metrics,
        cutoff=1,
        refresh_policy=RefreshPolicy(min_rows=10**9),  # no auto-refresh
    )
    if parts is not None:
        defaults["registry"] = parts.registry
        defaults["calibration"] = parts.calibration
        # The seed model is named; refits must agree on the schema.
        defaults["schema"] = TableSchema.from_names(COLUMNS)
    defaults.update(kwargs)
    return WatchDaemon(source, **defaults)


def feed_and_close(source: QueueSource, *matrices) -> None:
    for matrix in matrices:
        source.put(matrix)
    source.close()


def events_of_kind(sink_events, kind):
    return [e for e in sink_events if e.kind == kind]


class TestDaemonSmoke:
    def test_start_score_quarantine_stop(self, tmp_path, seeded_parts):
        """Tier-1 smoke: background start -> score -> quarantine -> stop."""
        seen = []
        source = QueueSource(3)
        stream = make_regime_matrix(1, n_rows=60)
        feed_and_close(source, stream, np.array([OUTLIER_ROW]))
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
            policy=RoutingPolicy(clean_sigmas=8.0, quarantine_sigmas=8.0),
            batch_rows=60,
        )
        daemon.start()
        deadline = time.monotonic() + 30.0
        while daemon.running and time.monotonic() < deadline:
            time.sleep(0.01)
        daemon.stop()
        assert not daemon.running
        assert daemon.metrics.rows_seen == 61
        assert daemon.metrics.rows_quarantined == 1
        assert daemon.metrics.rows_passed == 60
        assert daemon.quarantine.n_quarantined == 1
        kinds = [e.kind for e in seen]
        assert kinds[0] == "watch-started"
        assert kinds[-1] == "watch-stopped"
        assert kinds.count("row-quarantined") == 1

    def test_start_twice_raises(self, tmp_path, seeded_parts):
        source = QueueSource(3)
        daemon = make_daemon(source, tmp_path, parts=seeded_parts)
        daemon.start(max_batches=10**9, idle_sleep=0.01)
        try:
            with pytest.raises(RuntimeError, match="already running"):
                daemon.start()
        finally:
            daemon.stop()
            source.close()

    def test_stop_interrupts_an_idle_follow_loop_quickly(
        self, tmp_path, seeded_parts
    ):
        source = QueueSource(3)  # never closed: the loop idles forever
        daemon = make_daemon(source, tmp_path, parts=seeded_parts)
        daemon.start(idle_sleep=0.01)
        time.sleep(0.05)
        started = time.monotonic()
        daemon.stop(timeout=5.0)
        assert time.monotonic() - started < 2.0
        source.close()


class TestEndToEnd:
    """The ISSUE acceptance criterion, against a real tailed CSV."""

    def test_outliers_quarantined_accumulator_never_sees_them(self, tmp_path):
        parts = make_seeded_parts(seed=0)
        clean = make_regime_matrix(1, n_rows=900)
        outlier_rows = np.array(
            [OUTLIER_ROW, [2.0, -900.0, 400.0], [0.1, 77.0, -55.0]]
        )
        # Interleave the outliers mid-stream.
        stream, outlier_positions = [], [200, 500, 800]
        cursor = 0
        for position, outlier in zip(outlier_positions, outlier_rows):
            stream.append(clean[cursor:position])
            stream.append(outlier.reshape(1, -1))
            cursor = position
        stream.append(clean[cursor:])
        matrix = np.vstack(stream)
        csv_path = tmp_path / "stream.csv"
        with open(csv_path, "w") as handle:
            handle.write(",".join(COLUMNS) + "\n")
            for row in matrix:
                handle.write(",".join(repr(float(v)) for v in row) + "\n")

        events_path = tmp_path / "events.jsonl"
        source = CSVTailSource(csv_path, follow=False)
        daemon = make_daemon(
            source,
            tmp_path,
            parts=parts,
            sinks=[JsonlSink(events_path)],
            # Equal thresholds: no clean band, so every admitted row is
            # an untouched original -- the bit-identity precondition.
            policy=RoutingPolicy(clean_sigmas=8.0, quarantine_sigmas=8.0),
            block_rows=256,
            batch_rows=173,  # deliberately unaligned with everything
        )
        daemon.run()
        snapshot = daemon.pipeline.refresh_now(reason="final")

        # 1. The outliers -- and only the outliers -- were quarantined,
        #    bytes preserved.
        records = daemon.quarantine.read_all()
        assert len(records) == len(outlier_rows)
        assert daemon.metrics.rows_quarantined == len(outlier_rows)
        assert daemon.metrics.rows_cleaned == 0
        for record, original in zip(records, outlier_rows):
            recovered = RowQuarantine.decode_values(record)
            assert recovered.tobytes() == original.tobytes()

        # 2. The accumulator provably never saw them: the refreshed
        #    model is bit-identical to an offline fit over only the
        #    clean rows.
        offline = RatioRuleModel(cutoff=1, block_rows=256).fit(
            clean, TableSchema.from_names(COLUMNS)
        )
        assert snapshot.fingerprint == offline.fingerprint()
        np.testing.assert_array_equal(
            snapshot.model.rules_matrix, offline.rules_matrix
        )
        assert snapshot.model.n_rows_ == clean.shape[0]
        assert daemon.pipeline_metrics.n_rows_diverted == len(outlier_rows)

        # 3. Each quarantine produced exactly one structured event in
        #    the JSONL sink, carrying the routing provenance.
        events = JsonlSink.read_events(events_path)
        quarantined = events_of_kind(events, "row-quarantined")
        assert len(quarantined) == len(outlier_rows)
        assert [e.payload["seq"] for e in quarantined] == [0, 1, 2]
        for event in quarantined:
            assert event.payload["z_score"] > 8.0
            assert "quarantine_sigmas" in event.payload["reason"]
            assert event.payload["model_version"] == 1
        assert [e.kind for e in events][0] == "watch-started"
        assert [e.kind for e in events][-1] == "watch-stopped"


class TestRouting:
    def test_mild_anomaly_is_cleaned_not_quarantined(
        self, tmp_path, seeded_parts
    ):
        seen = []
        source = QueueSource(3)
        feed_and_close(source, np.array([OUTLIER_ROW]))
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
            # A bottomless quarantine band: everything flagged is
            # repairable.
            policy=RoutingPolicy(clean_sigmas=4.0, quarantine_sigmas=1e18),
        )
        daemon.run()
        assert daemon.metrics.rows_cleaned == 1
        assert daemon.metrics.rows_quarantined == 0
        assert len(events_of_kind(seen, "row-cleaned")) == 1
        # The repaired row reached the accumulator (nothing diverted).
        assert daemon.pipeline_metrics.n_rows_diverted == 0
        assert daemon.pipeline_metrics.rows_since_refresh == 1

    def test_repair_reduces_the_residual(self, seeded_parts, tmp_path):
        from repro.core.outliers import reconstruction_residuals

        daemon = make_daemon(QueueSource(3), tmp_path, parts=seeded_parts)
        broken = np.array(OUTLIER_ROW)
        repaired = daemon._clean_row(seeded_parts.model, broken)
        before = reconstruction_residuals(
            seeded_parts.model, broken.reshape(1, -1)
        )[0]
        after = reconstruction_residuals(
            seeded_parts.model, repaired.reshape(1, -1)
        )[0]
        assert after < before

    def test_rows_pass_unscored_until_a_model_exists(self, tmp_path):
        seen = []
        source = QueueSource(3)
        stream = make_regime_matrix(2, n_rows=400)
        feed_and_close(source, stream)
        daemon = make_daemon(
            source,
            tmp_path,
            sinks=[CallableSink(seen.append)],
            refresh_policy=RefreshPolicy(min_rows=100),
            batch_rows=100,
        )
        daemon.run()
        assert daemon.metrics.rows_unscored > 0
        assert daemon.registry.latest_version >= 1
        assert events_of_kind(seen, "refresh-published")
        # Once published, later batches are scored.
        assert daemon.metrics.rows_scored > 0

    def test_burst_emits_one_event(self, tmp_path, seeded_parts):
        seen = []
        source = QueueSource(3)
        burst = np.tile(np.array([OUTLIER_ROW]), (10, 1))
        feed_and_close(source, burst)
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
            policy=RoutingPolicy(
                clean_sigmas=8.0,
                quarantine_sigmas=8.0,
                burst_min_rows=8,
                burst_fraction=0.5,
            ),
        )
        daemon.run()
        assert daemon.metrics.rows_quarantined == 10
        assert daemon.metrics.n_bursts == 1
        assert len(events_of_kind(seen, "outlier-burst")) == 1
        payload = events_of_kind(seen, "outlier-burst")[0].payload
        assert payload["n_flagged"] == 10

    def test_quarantine_growth_event_every_n_rows(
        self, tmp_path, seeded_parts
    ):
        seen = []
        source = QueueSource(3)
        feed_and_close(source, np.tile(np.array([OUTLIER_ROW]), (5, 1)))
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
            policy=RoutingPolicy(
                clean_sigmas=8.0,
                quarantine_sigmas=8.0,
                growth_every_rows=2,
            ),
        )
        daemon.run()
        growth = events_of_kind(seen, "quarantine-growth")
        assert len(growth) == 1  # 5 rows // 2 per mark, one batch
        assert growth[0].payload["rows"] == 5


class TestCalibration:
    def test_recalibrates_on_model_refresh(self, tmp_path, seeded_parts):
        source = QueueSource(3)
        stream = make_regime_matrix(3, n_rows=600)
        feed_and_close(source, stream[:300], stream[300:])
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            refresh_policy=RefreshPolicy(min_rows=250, max_rows=250),
            batch_rows=300,
        )
        daemon.run()
        assert daemon.registry.latest_version >= 2
        assert daemon.metrics.n_calibration_resets >= 1

    def test_refresh_keeps_calibration_when_disabled(
        self, tmp_path, seeded_parts
    ):
        source = QueueSource(3)
        stream = make_regime_matrix(3, n_rows=600)
        feed_and_close(source, stream[:300], stream[300:])
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            policy=RoutingPolicy(recalibrate_on_refresh=False),
            refresh_policy=RefreshPolicy(min_rows=250, max_rows=250),
            batch_rows=300,
        )
        daemon.run()
        assert daemon.registry.latest_version >= 2
        assert daemon.metrics.n_calibration_resets == 0

    def test_warmup_batches_pass_unscored(self, tmp_path):
        parts = make_seeded_parts()
        source = QueueSource(3)
        stream = make_regime_matrix(4, n_rows=200)
        feed_and_close(source, stream[:100], stream[100:])
        daemon = make_daemon(
            source,
            tmp_path,
            registry=parts.registry,  # published model, cold calibration
            policy=RoutingPolicy(min_calibration_rows=64),
            batch_rows=100,
        )
        daemon.run()
        assert daemon.metrics.rows_unscored == 100
        assert daemon.metrics.rows_scored == 100


class TestSourceEvents:
    """CSVTailSource rotation/truncation must surface as events."""

    def test_rotation_mid_watch_emits_an_event(self, tmp_path, seeded_parts):
        seen = []
        csv_path = tmp_path / "data.csv"
        header = ",".join(COLUMNS) + "\n"
        clean = make_regime_matrix(5, n_rows=4)
        rows = "".join(
            ",".join(repr(float(v)) for v in row) + "\n" for row in clean
        )
        csv_path.write_text(header + rows)
        source = CSVTailSource(csv_path, follow=True)
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
        )
        assert daemon.step()
        # Rotate: a replacement file swaps in atomically.
        replacement = tmp_path / "data.csv.new"
        replacement.write_text(header + rows)
        os.replace(replacement, csv_path)
        deadline = time.monotonic() + 10.0
        while (
            not events_of_kind(seen, "source-rotation")
            and time.monotonic() < deadline
        ):
            daemon.step()
        rotation = events_of_kind(seen, "source-rotation")
        assert len(rotation) == 1
        assert rotation[0].payload == {"n_rotations": 1}
        # The daemon kept consuming: replacement rows were routed too.
        assert daemon.metrics.rows_seen == 8
        source.close()

    def test_truncation_mid_watch_emits_an_event(
        self, tmp_path, seeded_parts
    ):
        seen = []
        csv_path = tmp_path / "data.csv"
        header = ",".join(COLUMNS) + "\n"
        clean = make_regime_matrix(6, n_rows=50)
        rows = "".join(
            ",".join(repr(float(v)) for v in row) + "\n" for row in clean
        )
        csv_path.write_text(header + rows)
        source = CSVTailSource(csv_path, follow=True)
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            sinks=[CallableSink(seen.append)],
        )
        assert daemon.step()
        # Truncate in place (same inode, shorter than the read offset).
        csv_path.write_text(
            header + ",".join(repr(float(v)) for v in clean[0]) + "\n"
        )
        deadline = time.monotonic() + 10.0
        while (
            not events_of_kind(seen, "source-truncation")
            and time.monotonic() < deadline
        ):
            daemon.step()
        truncation = events_of_kind(seen, "source-truncation")
        assert len(truncation) == 1
        assert truncation[0].payload == {"n_truncations": 1}
        assert daemon.metrics.rows_seen == 51
        source.close()


class TestPipelineEvents:
    def test_drift_and_refresh_surface_as_events(self, tmp_path):
        seen = []
        before = make_regime_matrix(7, loadings=(1.0, 2.0, 0.5), n_rows=1500)
        after = make_regime_matrix(8, loadings=(1.0, 0.3, 2.5), n_rows=1500)
        source = QueueSource(3)
        feed_and_close(source, np.vstack([before, after]))
        daemon = make_daemon(
            source,
            tmp_path,
            sinks=[CallableSink(seen.append)],
            # Loose thresholds: regime change must reach the detector,
            # not the quarantine.
            policy=RoutingPolicy(clean_sigmas=1e18, quarantine_sigmas=1e18),
            refresh_policy=RefreshPolicy(min_rows=500),
            detector=DriftDetector(
                reservoir_capacity=128, angle_threshold_degrees=10.0
            ),
            batch_rows=250,
            block_rows=256,
        )
        daemon.run()
        drift = events_of_kind(seen, "drift-detected")
        refreshes = events_of_kind(seen, "refresh-published")
        assert drift, "the regime change must surface as an event"
        assert "angle_degrees" in drift[0].payload
        assert len(refreshes) == daemon.registry.latest_version
        versions = [e.payload["version"] for e in refreshes]
        assert versions == sorted(versions)
        assert daemon.metrics.rows_quarantined == 0


class TestStatus:
    def test_status_snapshot_reflects_the_daemon(
        self, tmp_path, seeded_parts
    ):
        source = QueueSource(3)
        feed_and_close(
            source, make_regime_matrix(9, n_rows=50), np.array([OUTLIER_ROW])
        )
        daemon = make_daemon(
            source,
            tmp_path,
            parts=seeded_parts,
            policy=RoutingPolicy(clean_sigmas=8.0, quarantine_sigmas=8.0),
        )
        daemon.run()
        status = daemon.status()
        assert status.running is False
        assert status.source_exhausted is True
        assert status.model_version == 1
        assert status.watch_metrics["rows_quarantined"] == 1
        assert status.calibration["ready"] is True
        assert status.quarantine_path.endswith("quarantine.jsonl")
        # It round-trips through the status file.
        path = tmp_path / "status.json"
        status.save(path)
        from repro.watch import WatchStatus

        assert WatchStatus.load(path) == status
