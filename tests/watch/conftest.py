"""Shared fixtures for the watch-daemon suite.

The regime-matrix factory lives in :mod:`tests.conftest`; it is
re-exported here so watch tests keep the same import path the pipeline
suite uses.  ``seeded_daemon_parts`` bundles the boilerplate most
daemon tests share: a model fitted on clean regime data, a registry
already serving it, and a residual calibration warmed on the training
matrix so scoring starts at the first polled row.
"""

from __future__ import annotations

from typing import NamedTuple

import pytest

from repro.core.model import RatioRuleModel
from repro.core.outliers import ResidualCalibration, calibrate_residuals
from repro.io.schema import TableSchema
from repro.serve.registry import ModelRegistry
from tests.conftest import make_regime_matrix

__all__ = ["make_regime_matrix"]

#: Column names shared by fixtures and the CSV files tests write.
COLUMNS = ["bread", "milk", "butter"]


class SeededParts(NamedTuple):
    """A fitted model, a registry serving it, a warm calibration."""

    model: RatioRuleModel
    registry: ModelRegistry
    calibration: ResidualCalibration


def make_seeded_parts(
    seed: int = 0, n_rows: int = 400, cutoff: int = 1
) -> SeededParts:
    """Build the standard scoring setup over clean regime data."""
    train = make_regime_matrix(seed, n_rows=n_rows)
    model = RatioRuleModel(cutoff=cutoff).fit(
        train, TableSchema.from_names(COLUMNS)
    )
    registry = ModelRegistry()
    registry.publish(model)
    calibration = calibrate_residuals(model, train)
    return SeededParts(model, registry, calibration)


@pytest.fixture
def seeded_parts() -> SeededParts:
    """Model + registry + warm calibration on seed-0 regime data."""
    return make_seeded_parts()
