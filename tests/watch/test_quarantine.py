"""Append-only quarantine: sequencing, durability, bit-exactness."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.watch import RowQuarantine

pytestmark = pytest.mark.watch


def _quarantine(tmp_path, name="q.jsonl"):
    return RowQuarantine(tmp_path / name, clock=lambda: 99.0)


class TestAppend:
    def test_records_carry_provenance(self, tmp_path):
        quarantine = _quarantine(tmp_path)
        record = quarantine.append(
            np.array([1.5, -2.25]),
            residual=3.5,
            z_score=12.0,
            reason="z=12.00 > quarantine_sigmas=8",
            model_version=4,
        )
        assert record["seq"] == 0
        assert record["unix_time"] == 99.0
        assert record["model_version"] == 4
        assert record["residual"] == 3.5
        assert record["z_score"] == 12.0
        assert record["values"] == [1.5, -2.25]
        assert quarantine.n_quarantined == 1
        assert quarantine.total_bytes > 0

    def test_sequence_increments_and_read_all_orders(self, tmp_path):
        quarantine = _quarantine(tmp_path)
        for i in range(5):
            quarantine.append(
                np.array([float(i)]),
                residual=0.0,
                z_score=0.0,
                reason="r",
                model_version=1,
            )
        records = quarantine.read_all()
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["values"][0] for r in records] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_reopen_continues_the_sequence(self, tmp_path):
        first = _quarantine(tmp_path)
        first.append(
            np.array([1.0]), residual=0.0, z_score=0.0, reason="r",
            model_version=1,
        )
        reopened = _quarantine(tmp_path)
        assert reopened.n_quarantined == 1
        record = reopened.append(
            np.array([2.0]), residual=0.0, z_score=0.0, reason="r",
            model_version=1,
        )
        assert record["seq"] == 1
        assert len(reopened.read_all()) == 2

    def test_file_is_plain_jsonl(self, tmp_path):
        quarantine = _quarantine(tmp_path)
        quarantine.append(
            np.array([1.0]), residual=0.0, z_score=0.0, reason="r",
            model_version=1,
        )
        lines = (tmp_path / "q.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["seq"] == 0

    def test_missing_file_reads_empty(self, tmp_path):
        quarantine = _quarantine(tmp_path, name="never-written.jsonl")
        assert quarantine.read_all() == []
        assert quarantine.n_quarantined == 0
        assert quarantine.total_bytes == 0


class TestBitExactness:
    @given(
        st.lists(
            st.floats(
                allow_nan=False,
                allow_infinity=False,
                width=64,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_hex_round_trip_is_bit_exact(self, values):
        """Property: any finite float64 row survives JSON bit-for-bit."""
        row = np.array(values, dtype=np.float64)
        record = json.loads(
            json.dumps(
                {"values_hex": [float(v).hex() for v in row]}, sort_keys=True
            )
        )
        decoded = RowQuarantine.decode_values(record)
        assert decoded.dtype == np.float64
        for original, recovered in zip(row, decoded):
            # Bit-pattern equality, not just numeric closeness: -0.0
            # and subnormals must survive too.
            assert math.copysign(1.0, original) == math.copysign(
                1.0, recovered
            )
            assert np.float64(original).tobytes() == np.float64(
                recovered
            ).tobytes()

    def test_adversarial_values_through_the_file(self, tmp_path):
        row = np.array(
            [-0.0, 5e-324, 1.7976931348623157e308, 1 / 3, -1e-200],
            dtype=np.float64,
        )
        quarantine = _quarantine(tmp_path)
        quarantine.append(
            row, residual=0.0, z_score=0.0, reason="r", model_version=1
        )
        record = RowQuarantine(tmp_path / "q.jsonl").read_all()[0]
        decoded = RowQuarantine.decode_values(record)
        assert decoded.tobytes() == row.tobytes()
