"""Tests for :mod:`repro.watch` -- the anomaly/cleaning daemon."""
