"""Sinks and the fan-out manager: delivery, isolation, accounting."""

from __future__ import annotations

import io

import pytest

from repro.obs.metrics import WatchMetrics
from repro.watch import (
    CallableSink,
    JsonlSink,
    NotificationManager,
    StdoutSink,
    WatchEvent,
)


pytestmark = pytest.mark.watch


def event(kind: str = "watch-started", **payload) -> WatchEvent:
    return WatchEvent.now(kind, payload, clock=lambda: 7.0)


class TestSinks:
    def test_stdout_sink_writes_rendered_line(self):
        stream = io.StringIO()
        StdoutSink(stream).emit(event("row-quarantined", seq=1))
        assert stream.getvalue() == "[watch] row-quarantined seq=1\n"

    def test_jsonl_sink_appends_and_reads_back(self, tmp_path):
        path = tmp_path / "events" / "log.jsonl"
        sink = JsonlSink(path)  # parent dir created
        first, second = event("watch-started"), event("watch-stopped")
        sink.emit(first)
        sink.emit(second)
        sink.close()
        assert JsonlSink.read_events(path) == [first, second]
        # Reopening appends; existing events are preserved.
        reopened = JsonlSink(path)
        reopened.emit(event("outlier-burst", n_flagged=9))
        reopened.close()
        kinds = [e.kind for e in JsonlSink.read_events(path)]
        assert kinds == ["watch-started", "watch-stopped", "outlier-burst"]

    def test_jsonl_sink_raises_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "log.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit(event())

    def test_jsonl_sink_flushes_per_event(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonlSink(path)
        sink.emit(event("row-quarantined", seq=0))
        # Visible to a concurrent reader before close().
        assert len(JsonlSink.read_events(path)) == 1
        sink.close()

    def test_callable_sink_forwards(self):
        seen = []
        CallableSink(seen.append).emit(event())
        assert [e.kind for e in seen] == ["watch-started"]


class TestNotificationManager:
    def test_fans_out_to_every_sink(self):
        first, second = [], []
        manager = NotificationManager(
            [CallableSink(first.append), CallableSink(second.append)]
        )
        manager.publish(event())
        assert len(first) == len(second) == 1
        assert manager.n_published == 1

    def test_add_sink_after_construction(self):
        seen = []
        manager = NotificationManager()
        manager.add_sink(CallableSink(seen.append))
        manager.publish(event())
        assert len(seen) == 1

    def test_failing_sink_is_contained_and_counted(self, caplog):
        delivered = []

        def explode(_event):
            raise RuntimeError("channel down")

        metrics = WatchMetrics()
        manager = NotificationManager(
            [CallableSink(explode), CallableSink(delivered.append)],
            metrics=metrics,
        )
        with caplog.at_level("ERROR"):
            manager.publish(event("row-quarantined", seq=0))
        # The broken sink never stalls delivery to the healthy one.
        assert len(delivered) == 1
        assert manager.n_sink_failures == 1
        assert metrics.n_sink_failures == 1
        assert any("continuing" in r.message for r in caplog.records)

    def test_metrics_record_every_publish(self):
        metrics = WatchMetrics()
        manager = NotificationManager(metrics=metrics)
        manager.publish(event("watch-started"))
        manager.publish(event("row-quarantined", seq=0))
        manager.publish(event("row-quarantined", seq=1))
        assert metrics.n_events == 3
        assert metrics.events_by_kind == {
            "watch-started": 1,
            "row-quarantined": 2,
        }
        assert metrics.last_event_kind == "row-quarantined"

    def test_close_contains_sink_close_failures(self, tmp_path):
        class BadClose:
            def emit(self, _event):
                pass

            def close(self):
                raise RuntimeError("already gone")

        manager = NotificationManager(
            [BadClose(), JsonlSink(tmp_path / "log.jsonl")]
        )
        manager.close()  # must not raise
