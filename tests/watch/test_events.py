"""The event taxonomy and its wire format."""

from __future__ import annotations

import json

import pytest

from repro.watch import EVENT_KINDS, WatchEvent

pytestmark = pytest.mark.watch


class TestWatchEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            WatchEvent(kind="row-eaten", unix_time=0.0)

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_every_kind_constructs(self, kind):
        event = WatchEvent(kind=kind, unix_time=1.5, payload={"a": 1})
        assert event.kind == kind

    def test_now_uses_injected_clock(self):
        event = WatchEvent.now("watch-started", clock=lambda: 123.25)
        assert event.unix_time == 123.25
        assert event.payload == {}

    def test_now_copies_payload(self):
        payload = {"rows": 3}
        event = WatchEvent.now("outlier-burst", payload, clock=lambda: 0.0)
        payload["rows"] = 99
        assert event.payload == {"rows": 3}

    def test_dict_round_trip(self):
        event = WatchEvent.now(
            "row-quarantined",
            {"seq": 7, "z_score": 12.5},
            clock=lambda: 42.0,
        )
        assert WatchEvent.from_dict(event.to_dict()) == event

    def test_json_is_one_stable_line(self):
        event = WatchEvent(
            kind="refresh-published", unix_time=1.0, payload={"b": 2, "a": 1}
        )
        text = event.to_json()
        assert "\n" not in text
        assert json.loads(text) == event.to_dict()
        assert text.index('"a"') < text.index('"b"')  # sorted keys

    def test_render_is_human_readable(self):
        event = WatchEvent(
            kind="row-quarantined", unix_time=0.0, payload={"seq": 3}
        )
        assert event.render() == "[watch] row-quarantined seq=3"
        bare = WatchEvent(kind="watch-stopped", unix_time=0.0)
        assert bare.render() == "[watch] watch-stopped"
