"""Routing policy: thresholds, validation, burst detection."""

from __future__ import annotations

import pytest

from repro.core.outliers import RowScore
from repro.watch import ROUTE_ACTIONS, RoutingPolicy

pytestmark = pytest.mark.watch


class TestRouteZ:
    def test_three_way_partition(self):
        policy = RoutingPolicy(clean_sigmas=4.0, quarantine_sigmas=8.0)
        assert policy.route_z(1.0).action == "pass"
        assert policy.route_z(5.0).action == "clean"
        assert policy.route_z(50.0).action == "quarantine"

    def test_thresholds_are_exclusive_above(self):
        policy = RoutingPolicy(clean_sigmas=4.0, quarantine_sigmas=8.0)
        # Exactly at a threshold stays in the lower band.
        assert policy.route_z(4.0).action == "pass"
        assert policy.route_z(8.0).action == "clean"

    def test_equal_thresholds_disable_the_clean_band(self):
        policy = RoutingPolicy(clean_sigmas=6.0, quarantine_sigmas=6.0)
        assert policy.route_z(6.0).action == "pass"
        assert policy.route_z(6.0001).action == "quarantine"

    def test_reason_names_the_threshold(self):
        policy = RoutingPolicy(clean_sigmas=4.0, quarantine_sigmas=8.0)
        assert "quarantine_sigmas=8" in policy.route_z(9.0).reason
        assert "clean_sigmas=4" in policy.route_z(5.0).reason

    def test_route_score_delegates(self):
        policy = RoutingPolicy()
        score = RowScore(row=0, residual=1.0, z_score=100.0, is_outlier=True)
        assert policy.route(score).action == "quarantine"

    def test_every_action_is_in_route_actions(self):
        policy = RoutingPolicy(clean_sigmas=4.0, quarantine_sigmas=8.0)
        for z in (0.0, 5.0, 9.0):
            assert policy.route_z(z).action in ROUTE_ACTIONS


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"clean_sigmas": 0.0}, "clean_sigmas"),
            ({"clean_sigmas": 9.0, "quarantine_sigmas": 8.0}, "must be >="),
            ({"min_calibration_rows": 1}, "min_calibration_rows"),
            ({"burst_min_rows": 0}, "burst_min_rows"),
            ({"burst_fraction": 0.0}, "burst_fraction"),
            ({"burst_fraction": 1.5}, "burst_fraction"),
            ({"growth_every_rows": 0}, "growth_every_rows"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RoutingPolicy(**kwargs)


class TestBurst:
    def test_needs_both_count_and_fraction(self):
        policy = RoutingPolicy(burst_min_rows=8, burst_fraction=0.5)
        assert not policy.is_burst(7, 8)  # count too low
        assert not policy.is_burst(8, 100)  # fraction too low
        assert policy.is_burst(8, 16)
        assert policy.is_burst(100, 100)

    def test_empty_batch_is_never_a_burst(self):
        assert not RoutingPolicy().is_burst(0, 0)
