"""Nightly soak: a live producer, a following daemon, zero stalls.

A writer thread appends batches (with occasional injected outliers) to
a CSV for ``WATCH_SOAK_SECONDS`` while a background daemon follows it.
The soak passes when the daemon kept up (every produced row was seen
and routed), every injected outlier was quarantined, and no sink ever
failed.  Marked ``slow``: tier-1 skips it, nightly runs it.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import WatchMetrics
from repro.pipeline import CSVTailSource, RefreshPolicy
from repro.watch import (
    JsonlSink,
    NotificationManager,
    RoutingPolicy,
    RowQuarantine,
    WatchDaemon,
)
from tests.watch.conftest import COLUMNS, make_seeded_parts

pytestmark = [pytest.mark.watch, pytest.mark.slow]

SOAK_SECONDS = float(os.environ.get("WATCH_SOAK_SECONDS", "30"))
OUTLIER_ROW = [5.0, 500.0, -300.0]


class Producer(threading.Thread):
    """Appends a clean batch (sometimes plus one outlier) every tick."""

    def __init__(self, path, stop_event):
        super().__init__(name="soak-producer", daemon=True)
        self.path = path
        self.stop_event = stop_event
        self.rows_written = 0
        self.outliers_written = 0
        self._rng = np.random.default_rng(42)

    def run(self) -> None:
        batch_index = 0
        while not self.stop_event.is_set():
            volume = self._rng.uniform(0.5, 4.0, size=20)
            batch = np.outer(volume, [1.0, 2.0, 0.5])
            batch += self._rng.normal(0.0, 0.05, batch.shape)
            lines = [
                ",".join(repr(float(v)) for v in row) + "\n" for row in batch
            ]
            self.rows_written += batch.shape[0]
            if batch_index % 10 == 5:
                lines.append(
                    ",".join(repr(float(v)) for v in OUTLIER_ROW) + "\n"
                )
                self.rows_written += 1
                self.outliers_written += 1
            with open(self.path, "a") as handle:
                handle.writelines(lines)
                handle.flush()
            batch_index += 1
            self.stop_event.wait(0.02)


def test_thirty_second_soak(tmp_path):
    parts = make_seeded_parts(seed=0, n_rows=600)
    csv_path = tmp_path / "soak.csv"
    csv_path.write_text(",".join(COLUMNS) + "\n")
    source = CSVTailSource(csv_path, follow=True)
    metrics = WatchMetrics()
    events_path = tmp_path / "events.jsonl"
    daemon = WatchDaemon(
        source,
        quarantine=RowQuarantine(tmp_path / "quarantine.jsonl"),
        notifier=NotificationManager(
            [JsonlSink(events_path)], metrics=metrics
        ),
        metrics=metrics,
        registry=parts.registry,
        calibration=parts.calibration,
        policy=RoutingPolicy(clean_sigmas=8.0, quarantine_sigmas=8.0),
        cutoff=1,
        refresh_policy=RefreshPolicy(min_rows=10**9),
        batch_rows=256,
    )

    stop_writer = threading.Event()
    producer = Producer(csv_path, stop_writer)
    producer.start()
    daemon.start(idle_sleep=0.01)
    time.sleep(SOAK_SECONDS)
    stop_writer.set()
    producer.join(timeout=10.0)
    assert not producer.is_alive()
    # Drain: let the daemon catch up with the final appends.
    deadline = time.monotonic() + 30.0
    while (
        daemon.metrics.rows_seen < producer.rows_written
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    daemon.stop()

    # No stalls: every produced row was seen and every row was routed.
    assert daemon.metrics.rows_seen == producer.rows_written
    assert daemon.metrics.rows_seen > 0
    routed = (
        daemon.metrics.rows_passed
        + daemon.metrics.rows_cleaned
        + daemon.metrics.rows_quarantined
        + daemon.metrics.rows_unscored
    )
    assert routed == daemon.metrics.rows_seen
    # Every injected outlier was caught, and nothing else.
    assert daemon.metrics.rows_quarantined == producer.outliers_written
    assert daemon.quarantine.n_quarantined == producer.outliers_written
    # The notification channel stayed healthy throughout.
    assert daemon.metrics.n_sink_failures == 0
    events = JsonlSink.read_events(events_path)
    quarantine_events = [e for e in events if e.kind == "row-quarantined"]
    assert len(quarantine_events) == producer.outliers_written
    # Sustained throughput is worth a floor: the daemon must not be
    # orders of magnitude behind a 20-rows-per-20ms producer.
    assert daemon.metrics.rows_per_second > 100.0
