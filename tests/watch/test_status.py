"""Status snapshots: persistence, atomicity, and rendering."""

from __future__ import annotations

import json

import pytest

from repro.watch import STATUS_FORMATS, WatchStatus, format_status

pytestmark = pytest.mark.watch


def sample_status() -> WatchStatus:
    return WatchStatus(
        running=True,
        uptime_seconds=12.5,
        model_version=3,
        source_exhausted=False,
        calibration={
            "n_observed": 400,
            "mean": 0.05,
            "std": 0.02,
            "min_rows": 64,
            "ready": True,
        },
        quarantine_path="/tmp/q.jsonl",
        watch_metrics={
            "rows_seen": 500,
            "rows_passed": 490,
            "rows_cleaned": 4,
            "rows_quarantined": 6,
            "rows_unscored": 0,
            "quarantine_rows": 6,
            "quarantine_bytes": 1234,
            "n_events": 9,
            "n_sink_failures": 0,
            "events_by_kind": {"row-quarantined": 6, "watch-started": 1},
        },
        pipeline_metrics={"n_batches": 5},
    )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        status = sample_status()
        path = tmp_path / "nested" / "status.json"
        status.save(path)  # parent dir created
        assert WatchStatus.load(path) == status

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "status.json"
        status = sample_status()
        status.save(path)
        status.save(path)  # overwrite goes through the same rename
        assert not path.with_name("status.json.tmp").exists()
        assert WatchStatus.load(path) == status

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown WatchStatus fields"):
            WatchStatus.from_dict({"running": True, "surprise": 1})

    def test_to_json_parses(self):
        payload = json.loads(sample_status().to_json())
        assert payload["model_version"] == 3


class TestFormatting:
    def test_text_summarizes_the_daemon(self):
        text = format_status(sample_status(), "text")
        assert "running" in text
        assert "version 3" in text
        assert "490 passed" in text
        assert "6 quarantined" in text
        assert "row-quarantined x6" in text

    def test_stopped_and_exhausted_states_render(self):
        status = sample_status()
        status.running = False
        status.source_exhausted = True
        text = format_status(status, "text")
        assert "stopped (source exhausted)" in text

    def test_warming_up_renders(self):
        status = sample_status()
        status.calibration = {"n_observed": 3, "ready": False}
        assert "warming up" in format_status(status, "text")

    def test_json_format_is_the_snapshot(self):
        status = sample_status()
        assert json.loads(format_status(status, "json")) == status.to_dict()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            format_status(sample_status(), "yaml")

    def test_formats_constant_is_exhaustive(self):
        for fmt in STATUS_FORMATS:
            assert format_status(sample_status(), fmt)
