"""Tests for the `stability` CLI subcommand."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import RatioRuleModel
from repro.io.csv_format import save_csv_matrix
from repro.io.schema import TableSchema


@pytest.fixture
def model_and_data(tmp_path, rng):
    factor = rng.normal(5.0, 2.0, size=200)
    matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (200, 3))
    schema = TableSchema.from_names(["a", "b", "c"])
    model_path = tmp_path / "m.npz"
    RatioRuleModel(cutoff=1).fit(matrix, schema).save(model_path)
    data_path = tmp_path / "train.csv"
    save_csv_matrix(data_path, matrix, schema)
    return model_path, data_path


class TestStabilityCommand:
    def test_reports_per_rule_angles(self, model_and_data, capsys):
        model_path, data_path = model_and_data
        assert main(["stability", str(model_path), str(data_path),
                     "--resamples", "8"]) == 0
        out = capsys.readouterr().out
        assert "RR1" in out
        assert "median angle" in out
        assert "subspace" in out

    def test_column_mismatch(self, model_and_data, tmp_path, capsys):
        model_path, _data = model_and_data
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y\n1,2\n3,4\n")
        assert main(["stability", str(model_path), str(bad)]) == 2
        assert "columns" in capsys.readouterr().err
