"""Tests for the ``serve-batch`` CLI subcommand."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.model import RatioRuleModel
from repro.core.reconstruction import fill_matrix
from repro.io.csv_format import save_csv_matrix
from repro.io.schema import TableSchema

pytestmark = pytest.mark.serve

SCHEMA = TableSchema.from_names(["a", "b", "c"])


@pytest.fixture
def train_matrix(rng):
    factor = rng.normal(5.0, 2.0, size=120)
    return np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (120, 3))


@pytest.fixture
def model_file(tmp_path, train_matrix):
    path = tmp_path / "model.npz"
    RatioRuleModel(cutoff=1).fit(train_matrix, SCHEMA).save(path)
    return path


@pytest.fixture
def holey_csv(tmp_path, train_matrix, rng):
    matrix = train_matrix[:20].copy()
    matrix[rng.random(matrix.shape) < 0.3] = np.nan
    matrix[0] = np.nan  # one all-holes row
    path = tmp_path / "requests.csv"
    save_csv_matrix(path, matrix, SCHEMA)
    return path, matrix


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve-batch", "m.npz", "d.csv"])
        assert args.command == "serve-batch"
        assert args.cache_entries == 1024
        assert args.underdetermined == "truncate"
        assert args.batch_size is None
        assert args.stats is False

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-batch", "m.npz", "d.csv", "--underdetermined", "zero"]
            )


class TestServeBatch:
    def test_fills_to_stdout(self, model_file, holey_csv, capsys):
        path, _ = holey_csv
        assert main(["serve-batch", str(model_file), str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("a,b,c")
        assert "nan" not in out

    def test_output_file_matches_fill_matrix(
        self, model_file, holey_csv, tmp_path, capsys
    ):
        path, matrix = holey_csv
        out_path = tmp_path / "filled.csv"
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(path),
                "--output",
                str(out_path),
            ]
        ) == 0
        assert "model version 1" in capsys.readouterr().out
        model = RatioRuleModel.load(model_file)
        expected = fill_matrix(matrix, model.rules_matrix, model.means_)
        from repro.io.csv_format import load_csv_matrix

        filled, schema = load_csv_matrix(out_path)
        assert schema.names == SCHEMA.names
        np.testing.assert_allclose(filled, expected, atol=1e-9)
        assert not np.isnan(filled).any()

    def test_batched_equals_single_shot(
        self, model_file, holey_csv, tmp_path, capsys
    ):
        path, _ = holey_csv
        one_shot = tmp_path / "one.csv"
        chunked = tmp_path / "chunked.csv"
        assert main(
            ["serve-batch", str(model_file), str(path), "--output", str(one_shot)]
        ) == 0
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(path),
                "--output",
                str(chunked),
                "--batch-size",
                "3",
            ]
        ) == 0
        assert one_shot.read_text() == chunked.read_text()

    def test_stats_flag_renders_metrics(self, model_file, holey_csv, capsys):
        path, _ = holey_csv
        assert main(
            ["serve-batch", str(model_file), str(path), "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "Serving statistics" in out

    def test_column_mismatch_is_an_error(
        self, model_file, tmp_path, rng, capsys
    ):
        other = tmp_path / "other.csv"
        save_csv_matrix(
            other,
            rng.normal(size=(4, 3)),
            TableSchema.from_names(["x", "y", "z"]),
        )
        assert main(["serve-batch", str(model_file), str(other)]) == 2
        assert "column mismatch" in capsys.readouterr().err

    def test_bad_batch_size_is_an_error(self, model_file, holey_csv, capsys):
        path, _ = holey_csv
        assert main(
            ["serve-batch", str(model_file), str(path), "--batch-size", "0"]
        ) == 2
        assert "batch-size" in capsys.readouterr().err
