"""Tests for the from-scratch CSR matrix."""

import numpy as np
import pytest

from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def dense(rng):
    matrix = rng.standard_normal((15, 9))
    matrix[rng.random(matrix.shape) < 0.7] = 0.0  # ~70% sparse
    return matrix


class TestConstruction:
    def test_from_dense_round_trip(self, dense):
        sparse = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(sparse.to_dense(), dense)
        assert sparse.nnz == np.count_nonzero(dense)
        assert 0.0 <= sparse.density() <= 1.0

    def test_from_coo(self):
        sparse = CSRMatrix.from_coo(
            rows=[0, 2, 1], cols=[1, 0, 2], values=[5.0, 3.0, 7.0], shape=(3, 3)
        )
        expected = np.array([[0, 5, 0], [0, 0, 7], [3, 0, 0]], dtype=float)
        np.testing.assert_array_equal(sparse.to_dense(), expected)

    def test_from_coo_sums_duplicates(self):
        sparse = CSRMatrix.from_coo(
            rows=[0, 0, 0], cols=[1, 1, 2], values=[2.0, 3.0, 1.0], shape=(1, 3)
        )
        np.testing.assert_array_equal(sparse.to_dense(), [[0.0, 5.0, 1.0]])
        assert sparse.nnz == 2

    def test_empty_rows_allowed(self):
        sparse = CSRMatrix.from_coo(rows=[2], cols=[0], values=[1.0], shape=(4, 2))
        assert sparse.to_dense()[0].sum() == 0
        np.testing.assert_array_equal(sparse.matvec(np.array([1.0, 0.0])),
                                      [0.0, 0.0, 1.0, 0.0])

    def test_coo_validation(self):
        with pytest.raises(ValueError, match="row index"):
            CSRMatrix.from_coo([5], [0], [1.0], shape=(3, 2))
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix.from_coo([0], [9], [1.0], shape=(3, 2))
        with pytest.raises(ValueError, match="equal length"):
            CSRMatrix.from_coo([0, 1], [0], [1.0], shape=(3, 2))

    def test_csr_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (3, 2))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(
                np.array([0, 2, 1]), np.array([0, 0]), np.array([1.0, 1.0]), (2, 2)
            )

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            CSRMatrix.from_dense(np.ones(4))


class TestKernels:
    def test_matvec_matches_dense(self, dense, rng):
        sparse = CSRMatrix.from_dense(dense)
        vector = rng.standard_normal(9)
        np.testing.assert_allclose(sparse.matvec(vector), dense @ vector, atol=1e-12)

    def test_rmatvec_matches_dense(self, dense, rng):
        sparse = CSRMatrix.from_dense(dense)
        vector = rng.standard_normal(15)
        np.testing.assert_allclose(sparse.rmatvec(vector), dense.T @ vector, atol=1e-12)

    def test_column_statistics(self, dense):
        sparse = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(sparse.column_sums(), dense.sum(axis=0), atol=1e-12)
        np.testing.assert_allclose(
            sparse.column_squared_sums(), (dense**2).sum(axis=0), atol=1e-12
        )

    def test_kernel_shape_validation(self, dense):
        sparse = CSRMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="shape"):
            sparse.matvec(np.ones(3))
        with pytest.raises(ValueError, match="shape"):
            sparse.rmatvec(np.ones(3))


class TestWideMiningIntegration:
    def test_sparse_mine_wide_matches_dense(self, rng):
        from repro.core.model import RatioRuleModel
        from repro.core.wide import mine_wide

        # Basket-like data: mostly zeros, low-rank structure.
        scores = rng.standard_normal((300, 2)) * np.array([8.0, 3.0])
        loadings = rng.standard_normal((2, 60))
        dense = scores @ loadings
        dense[rng.random(dense.shape) < 0.5] = 0.0

        sparse_model = mine_wide(CSRMatrix.from_dense(dense), 2)
        dense_model = RatioRuleModel(cutoff=2).fit(dense)
        np.testing.assert_allclose(
            sparse_model.eigenvalues_, dense_model.eigenvalues_, rtol=1e-6
        )
        np.testing.assert_allclose(
            sparse_model.rules_matrix, dense_model.rules_matrix, atol=1e-4
        )

    def test_sparse_operator_matches_explicit(self, dense, rng):
        from repro.core.wide import implicit_covariance_operator

        sparse = CSRMatrix.from_dense(dense)
        matvec, means, total_variance = implicit_covariance_operator(sparse)
        centered = dense - dense.mean(axis=0)
        explicit = centered.T @ centered
        vector = rng.standard_normal(9)
        np.testing.assert_allclose(matvec(vector), explicit @ vector, atol=1e-9)
        np.testing.assert_allclose(total_variance, np.trace(explicit), rtol=1e-10)
        np.testing.assert_allclose(means, dense.mean(axis=0), atol=1e-12)
