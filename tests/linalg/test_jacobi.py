"""Tests for the cyclic Jacobi eigensolver."""

import numpy as np
import pytest

from repro.linalg.jacobi import JacobiNotConverged, jacobi_eigensystem
from tests.conftest import assert_eigenpairs_valid, random_symmetric_psd


class TestJacobiBasics:
    def test_diagonal_matrix(self):
        values, vectors = jacobi_eigensystem(np.diag([1.0, 5.0, 3.0]))
        np.testing.assert_allclose(values, [5.0, 3.0, 1.0])
        # Eigenvectors are the (permuted, possibly sign-flipped) axes.
        assert np.allclose(np.abs(vectors), np.eye(3)[:, [1, 2, 0]])

    def test_known_2x2(self):
        # [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        values, vectors = jacobi_eigensystem(np.array([[2.0, 1.0], [1.0, 2.0]]))
        np.testing.assert_allclose(values, [3.0, 1.0], atol=1e-12)
        assert_eigenpairs_valid(np.array([[2.0, 1.0], [1.0, 2.0]]), values, vectors)

    def test_1x1(self):
        values, vectors = jacobi_eigensystem(np.array([[7.0]]))
        np.testing.assert_allclose(values, [7.0])
        np.testing.assert_allclose(vectors, [[1.0]])

    def test_descending_order(self, rng):
        matrix = random_symmetric_psd(rng, 8)
        values, _vectors = jacobi_eigensystem(matrix)
        assert np.all(np.diff(values) <= 1e-9)

    def test_zero_matrix(self):
        values, vectors = jacobi_eigensystem(np.zeros((3, 3)))
        np.testing.assert_allclose(values, 0.0)
        assert_eigenpairs_valid(np.zeros((3, 3)), values, vectors)


class TestJacobiAgainstNumpy:
    @pytest.mark.parametrize("size", [2, 3, 5, 10, 20])
    def test_eigenvalues_match_lapack(self, rng, size):
        matrix = random_symmetric_psd(rng, size)
        our_values, our_vectors = jacobi_eigensystem(matrix)
        ref_values = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(our_values, ref_values, rtol=1e-9, atol=1e-9)
        assert_eigenpairs_valid(matrix, our_values, our_vectors)

    def test_negative_eigenvalues_handled(self, rng):
        # Jacobi works for any symmetric matrix, not just PSD.
        matrix = rng.standard_normal((6, 6))
        matrix = (matrix + matrix.T) / 2
        values, vectors = jacobi_eigensystem(matrix)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-9, atol=1e-9)
        assert_eigenpairs_valid(matrix, values, vectors)

    def test_repeated_eigenvalues(self):
        # Identity: all eigenvalues equal; any orthonormal basis works.
        values, vectors = jacobi_eigensystem(np.eye(4))
        np.testing.assert_allclose(values, 1.0)
        assert_eigenpairs_valid(np.eye(4), values, vectors)


class TestJacobiConvergence:
    def test_raises_when_sweeps_exhausted(self, rng):
        matrix = random_symmetric_psd(rng, 12)
        with pytest.raises(JacobiNotConverged):
            jacobi_eigensystem(matrix, max_sweeps=0)

    def test_tight_tolerance_still_converges(self, rng):
        matrix = random_symmetric_psd(rng, 6)
        values, vectors = jacobi_eigensystem(matrix, tol=1e-15)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-10)

    def test_does_not_modify_input(self, rng):
        matrix = random_symmetric_psd(rng, 5)
        original = matrix.copy()
        jacobi_eigensystem(matrix)
        np.testing.assert_array_equal(matrix, original)
