"""Tests for the from-scratch SVD and Moore-Penrose pseudo-inverse."""

import numpy as np
import pytest

from repro.linalg.svd import (
    least_squares_solve,
    pseudo_inverse,
    svd_decompose,
)


class TestSVDDecompose:
    @pytest.mark.parametrize("shape", [(4, 4), (6, 3), (3, 6), (10, 2)])
    def test_reconstruction(self, rng, shape):
        matrix = rng.standard_normal(shape)
        result = svd_decompose(matrix)
        np.testing.assert_allclose(result.reconstruct(), matrix, atol=1e-9)

    @pytest.mark.parametrize("backend", ["jacobi", "numpy"])
    def test_singular_values_match_numpy(self, rng, backend):
        matrix = rng.standard_normal((7, 4))
        result = svd_decompose(matrix, backend=backend)
        ref = np.linalg.svd(matrix, compute_uv=False)
        np.testing.assert_allclose(result.singular_values, ref, rtol=1e-8)

    def test_orthonormal_factors(self, rng):
        matrix = rng.standard_normal((5, 3))
        result = svd_decompose(matrix)
        np.testing.assert_allclose(
            result.u.T @ result.u, np.eye(result.rank), atol=1e-9
        )
        np.testing.assert_allclose(
            result.vt @ result.vt.T, np.eye(result.rank), atol=1e-9
        )

    def test_descending_singular_values(self, rng):
        matrix = rng.standard_normal((8, 5))
        result = svd_decompose(matrix)
        assert np.all(np.diff(result.singular_values) <= 1e-12)

    def test_rank_detection(self):
        # Rank-1 matrix: only one singular triplet survives the cutoff.
        matrix = np.outer([1.0, 2.0, 3.0], [4.0, 5.0])
        result = svd_decompose(matrix)
        assert result.rank == 1
        np.testing.assert_allclose(result.reconstruct(), matrix, atol=1e-10)

    def test_zero_matrix(self):
        result = svd_decompose(np.zeros((3, 4)))
        assert result.rank == 0
        np.testing.assert_allclose(result.reconstruct(), np.zeros((3, 4)))

    def test_rejects_bad_backend(self, rng):
        with pytest.raises(ValueError, match="backend"):
            svd_decompose(rng.standard_normal((2, 2)), backend="mystery")

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            svd_decompose(np.ones(3))


class TestPseudoInverse:
    def test_matches_numpy_pinv(self, rng):
        matrix = rng.standard_normal((6, 3))
        np.testing.assert_allclose(
            pseudo_inverse(matrix), np.linalg.pinv(matrix), atol=1e-9
        )

    def test_moore_penrose_axioms(self, rng):
        """All four Moore-Penrose conditions."""
        a = rng.standard_normal((5, 3))
        a_plus = pseudo_inverse(a)
        np.testing.assert_allclose(a @ a_plus @ a, a, atol=1e-9)
        np.testing.assert_allclose(a_plus @ a @ a_plus, a_plus, atol=1e-9)
        np.testing.assert_allclose(a @ a_plus, (a @ a_plus).T, atol=1e-9)
        np.testing.assert_allclose(a_plus @ a, (a_plus @ a).T, atol=1e-9)

    def test_rank_deficient(self):
        matrix = np.outer([1.0, 1.0, 0.0], [1.0, 2.0])
        np.testing.assert_allclose(
            pseudo_inverse(matrix), np.linalg.pinv(matrix), atol=1e-10
        )

    def test_zero_matrix(self):
        result = pseudo_inverse(np.zeros((2, 5)))
        assert result.shape == (5, 2)
        np.testing.assert_array_equal(result, 0.0)

    def test_invertible_square_equals_inverse(self, rng):
        matrix = rng.standard_normal((4, 4)) + 4.0 * np.eye(4)
        np.testing.assert_allclose(
            pseudo_inverse(matrix), np.linalg.inv(matrix), atol=1e-8
        )


class TestLeastSquaresSolve:
    def test_exact_system(self):
        matrix = np.array([[2.0, 0.0], [0.0, 4.0]])
        solution = least_squares_solve(matrix, np.array([2.0, 8.0]))
        np.testing.assert_allclose(solution, [1.0, 2.0], atol=1e-12)

    def test_overdetermined_matches_lstsq(self, rng):
        matrix = rng.standard_normal((10, 3))
        rhs = rng.standard_normal(10)
        ours = least_squares_solve(matrix, rhs)
        ref, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        np.testing.assert_allclose(ours, ref, atol=1e-9)

    def test_underdetermined_gives_min_norm(self, rng):
        matrix = rng.standard_normal((2, 5))
        rhs = rng.standard_normal(2)
        ours = least_squares_solve(matrix, rhs)
        ref, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)  # min-norm solution
        np.testing.assert_allclose(ours, ref, atol=1e-9)
        np.testing.assert_allclose(matrix @ ours, rhs, atol=1e-9)
