"""Property-based cross-validation of the from-scratch eigensolvers.

Every dense solver (Jacobi, Householder+QL) and the tridiagonal core
must agree with LAPACK on arbitrary symmetric matrices, and the whole
chain must satisfy the defining equations without reference to numpy's
answers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.householder import householder_eigensystem
from repro.linalg.tridiagonal import tridiagonal_eigensystem

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def symmetric_matrices(max_side: int = 7):
    return st.integers(1, max_side).flatmap(
        lambda side: arrays(np.float64, (side, side), elements=finite).map(
            lambda a: (a + a.T) / 2.0
        )
    )


def tridiagonal_bands(max_side: int = 10):
    return st.integers(1, max_side).flatmap(
        lambda side: st.tuples(
            arrays(np.float64, side, elements=finite),
            arrays(np.float64, max(side - 1, 0), elements=finite),
        )
    )


@settings(max_examples=50, deadline=None)
@given(matrix=symmetric_matrices())
def test_householder_matches_lapack(matrix):
    values, vectors = householder_eigensystem(matrix)
    ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
    assert np.allclose(values, ref, rtol=1e-8, atol=1e-7)
    scale = max(np.linalg.norm(matrix), 1.0)
    residual = matrix @ vectors - vectors * values
    assert np.linalg.norm(residual) / scale < 1e-7
    assert np.allclose(vectors.T @ vectors, np.eye(matrix.shape[0]), atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(bands=tridiagonal_bands())
def test_tridiagonal_matches_lapack(bands):
    diagonal, off_diagonal = bands
    values, vectors = tridiagonal_eigensystem(diagonal, off_diagonal)
    side = diagonal.shape[0]
    dense = np.diag(diagonal)
    if side > 1:
        idx = np.arange(side - 1)
        dense[idx, idx + 1] = off_diagonal
        dense[idx + 1, idx] = off_diagonal
    ref = np.sort(np.linalg.eigvalsh(dense))[::-1]
    assert np.allclose(values, ref, rtol=1e-8, atol=1e-7)
    scale = max(np.linalg.norm(dense), 1.0)
    residual = dense @ vectors - vectors * values
    assert np.linalg.norm(residual) / scale < 1e-7


@settings(max_examples=40, deadline=None)
@given(matrix=symmetric_matrices())
def test_householder_trace_and_frobenius_preserved(matrix):
    """Similarity invariants hold without consulting LAPACK at all."""
    values, _vectors = householder_eigensystem(matrix)
    assert np.isclose(values.sum(), np.trace(matrix), rtol=1e-8, atol=1e-6)
    assert np.isclose(
        (values**2).sum(), (matrix**2).sum(), rtol=1e-8, atol=1e-6
    )
