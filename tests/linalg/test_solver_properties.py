"""Property-based cross-validation of the from-scratch eigensolvers.

Every dense solver (Jacobi, Householder+QL) and the tridiagonal core
must agree with LAPACK on arbitrary symmetric matrices, and the whole
chain must satisfy the defining equations without reference to numpy's
answers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.householder import householder_eigensystem
from repro.linalg.tridiagonal import tridiagonal_eigensystem

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def _lapack_trustworthy(a: np.ndarray) -> np.ndarray:
    """Snap magnitudes below 1e-100 to zero.

    These cross-validation tests treat LAPACK as the oracle, but
    ``dsyevd`` itself loses accuracy once an entry's *square*
    underflows toward subnormals (e.g. a 2e-160 coupling next to O(1)
    entries shifts its eigenvalues by ~7e-5, while the per-column
    rescaling in our Householder reduction stays exact there --
    see ``test_householder_survives_subnormal_couplings``).  Keep the
    randomized comparison inside the region where the oracle is
    trustworthy.
    """
    return np.where(np.abs(a) < 1e-100, 0.0, a)


def symmetric_matrices(max_side: int = 7):
    return st.integers(1, max_side).flatmap(
        lambda side: arrays(np.float64, (side, side), elements=finite).map(
            lambda a: _lapack_trustworthy((a + a.T) / 2.0)
        )
    )


def tridiagonal_bands(max_side: int = 10):
    return st.integers(1, max_side).flatmap(
        lambda side: st.tuples(
            arrays(np.float64, side, elements=finite).map(_lapack_trustworthy),
            arrays(np.float64, max(side - 1, 0), elements=finite).map(
                _lapack_trustworthy
            ),
        )
    )


@settings(max_examples=50, deadline=None)
@given(matrix=symmetric_matrices())
def test_householder_matches_lapack(matrix):
    values, vectors = householder_eigensystem(matrix)
    ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
    assert np.allclose(values, ref, rtol=1e-8, atol=1e-7)
    scale = max(np.linalg.norm(matrix), 1.0)
    residual = matrix @ vectors - vectors * values
    assert np.linalg.norm(residual) / scale < 1e-7
    assert np.allclose(vectors.T @ vectors, np.eye(matrix.shape[0]), atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(bands=tridiagonal_bands())
def test_tridiagonal_matches_lapack(bands):
    diagonal, off_diagonal = bands
    values, vectors = tridiagonal_eigensystem(diagonal, off_diagonal)
    side = diagonal.shape[0]
    dense = np.diag(diagonal)
    if side > 1:
        idx = np.arange(side - 1)
        dense[idx, idx + 1] = off_diagonal
        dense[idx + 1, idx] = off_diagonal
    ref = np.sort(np.linalg.eigvalsh(dense))[::-1]
    assert np.allclose(values, ref, rtol=1e-8, atol=1e-7)
    scale = max(np.linalg.norm(dense), 1.0)
    residual = dense @ vectors - vectors * values
    assert np.linalg.norm(residual) / scale < 1e-7


def test_householder_survives_subnormal_couplings():
    """Hypothesis-found matrices where the LAPACK oracle itself drifts.

    Entries around 1e-145..1e-160 have squares in subnormal territory;
    ``np.linalg.eigvalsh`` answers 1.49993 for an exact +-1.5 pair on
    the first matrix (the general ``eig`` driver and the e -> 0 limit
    both agree on 1.5).  Our solver must satisfy the *defining*
    equations on these inputs -- no LAPACK reference involved.
    """
    tiny = 2.31657174e-160
    coupled = np.zeros((4, 4))
    coupled[0, 1] = coupled[1, 0] = tiny
    coupled[1, 2] = coupled[2, 1] = 1.5
    rank_one = np.full((4, 4), 2.1186324e-145)
    rank_one[0, 0] = 1.0
    for matrix in (coupled, rank_one):
        values, vectors = householder_eigensystem(matrix)
        scale = max(np.linalg.norm(matrix), 1.0)
        residual = matrix @ vectors - vectors * values
        assert np.linalg.norm(residual) / scale < 1e-12
        assert np.allclose(
            vectors.T @ vectors, np.eye(matrix.shape[0]), atol=1e-12
        )
    exact = np.sort(householder_eigensystem(coupled)[0])[::-1]
    np.testing.assert_allclose(exact, [1.5, 0.0, 0.0, -1.5], atol=1e-15)


@settings(max_examples=40, deadline=None)
@given(matrix=symmetric_matrices())
def test_householder_trace_and_frobenius_preserved(matrix):
    """Similarity invariants hold without consulting LAPACK at all."""
    values, _vectors = householder_eigensystem(matrix)
    assert np.isclose(values.sum(), np.trace(matrix), rtol=1e-8, atol=1e-6)
    assert np.isclose(
        (values**2).sum(), (matrix**2).sum(), rtol=1e-8, atol=1e-6
    )
