"""Tests for the Lanczos eigensolver."""

import numpy as np
import pytest

from repro.linalg.lanczos import lanczos_eigensystem
from tests.conftest import assert_eigenpairs_valid, random_symmetric_psd


class TestLanczos:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_top_k_match_lapack(self, rng, k):
        matrix = random_symmetric_psd(rng, 30)
        values, vectors = lanczos_eigensystem(matrix, k)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1][:k]
        np.testing.assert_allclose(values, ref, rtol=1e-7, atol=1e-8)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-6)

    def test_large_matrix_small_k(self, rng):
        matrix = random_symmetric_psd(rng, 150)
        values, vectors = lanczos_eigensystem(matrix, 3)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1][:3]
        np.testing.assert_allclose(values, ref, rtol=1e-6)
        assert vectors.shape == (150, 3)

    def test_callable_operator(self, rng):
        dense = random_symmetric_psd(rng, 25)
        values, _vectors = lanczos_eigensystem(
            lambda v: dense @ v, 2, dimension=25
        )
        ref = np.sort(np.linalg.eigvalsh(dense))[::-1][:2]
        np.testing.assert_allclose(values, ref, rtol=1e-6)

    def test_callable_without_dimension_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            lanczos_eigensystem(lambda v: v, 1)

    def test_low_rank_matrix(self):
        # Rank-2 matrix in 20 dims: Lanczos must find both nonzero pairs.
        u = np.zeros(20)
        u[3] = 1.0
        w = np.zeros(20)
        w[11] = 1.0
        matrix = 4.0 * np.outer(u, u) + 2.0 * np.outer(w, w)
        values, vectors = lanczos_eigensystem(matrix, 2)
        np.testing.assert_allclose(values, [4.0, 2.0], atol=1e-8)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-7)

    def test_deterministic_given_seed(self, rng):
        matrix = random_symmetric_psd(rng, 12)
        first = lanczos_eigensystem(matrix, 3, seed=5)
        second = lanczos_eigensystem(matrix, 3, seed=5)
        np.testing.assert_array_equal(first[0], second[0])

    def test_invalid_k(self, rng):
        matrix = random_symmetric_psd(rng, 4)
        with pytest.raises(ValueError, match="k must be"):
            lanczos_eigensystem(matrix, 0)
        with pytest.raises(ValueError, match="k must be"):
            lanczos_eigensystem(matrix, 5)

    def test_k_equals_dimension(self, rng):
        matrix = random_symmetric_psd(rng, 6)
        values, vectors = lanczos_eigensystem(matrix, 6)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-7, atol=1e-8)

    def test_zero_matrix_keeps_shape_contract(self):
        values, vectors = lanczos_eigensystem(np.zeros((4, 4)), 2)
        np.testing.assert_allclose(values, [0.0, 0.0])
        assert vectors.shape == (4, 2)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(2), atol=1e-10)

    def test_rank_deficient_restart(self):
        """Invariant-subspace breakdown restarts instead of shortchanging k."""
        direction = np.array([1.0, 2.0, 3.0, 4.0])
        matrix = np.outer(direction, direction)
        values, vectors = lanczos_eigensystem(matrix, 3)
        assert values.shape == (3,)
        np.testing.assert_allclose(values[0], direction @ direction, rtol=1e-9)
        np.testing.assert_allclose(values[1:], 0.0, atol=1e-8)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(3), atol=1e-8)

    def test_fully_degenerate_identity(self):
        """All-equal eigenvalues: restarts build an orthonormal Ritz set."""
        values, vectors = lanczos_eigensystem(np.eye(5), 3)
        np.testing.assert_allclose(values, 1.0, atol=1e-12)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(3), atol=1e-8)
        residual = np.eye(5) @ vectors - vectors * values
        assert np.linalg.norm(residual) < 1e-10
