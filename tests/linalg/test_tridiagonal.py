"""Tests for the QL-with-implicit-shifts tridiagonal eigensolver."""

import numpy as np
import pytest

from repro.linalg.tridiagonal import TridiagonalNotConverged, tridiagonal_eigensystem


def dense_from(diagonal, off_diagonal):
    n = len(diagonal)
    dense = np.diag(np.asarray(diagonal, dtype=np.float64))
    for i in range(n - 1):
        dense[i, i + 1] = off_diagonal[i]
        dense[i + 1, i] = off_diagonal[i]
    return dense


class TestTridiagonal:
    def test_1x1(self):
        values, vectors = tridiagonal_eigensystem(np.array([4.0]), np.array([]))
        np.testing.assert_allclose(values, [4.0])
        np.testing.assert_allclose(vectors, [[1.0]])

    def test_2x2_known(self):
        # [[2, 1], [1, 2]] -> eigenvalues 3, 1.
        values, vectors = tridiagonal_eigensystem(
            np.array([2.0, 2.0]), np.array([1.0])
        )
        np.testing.assert_allclose(values, [3.0, 1.0], atol=1e-12)
        dense = dense_from([2.0, 2.0], [1.0])
        residual = dense @ vectors - vectors * values
        assert np.linalg.norm(residual) < 1e-12

    def test_diagonal_matrix(self):
        values, _vectors = tridiagonal_eigensystem(
            np.array([3.0, 1.0, 2.0]), np.array([0.0, 0.0])
        )
        np.testing.assert_allclose(values, [3.0, 2.0, 1.0])

    @pytest.mark.parametrize("size", [2, 3, 5, 10, 25, 60])
    def test_matches_lapack(self, rng, size):
        diagonal = rng.standard_normal(size) * 3
        off_diagonal = rng.standard_normal(size - 1)
        values, vectors = tridiagonal_eigensystem(diagonal, off_diagonal)
        dense = dense_from(diagonal, off_diagonal)
        ref = np.sort(np.linalg.eigvalsh(dense))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-10, atol=1e-10)
        # Residual + orthonormality.
        residual = dense @ vectors - vectors * values
        assert np.linalg.norm(residual) / max(np.linalg.norm(dense), 1) < 1e-10
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(size), atol=1e-10)

    def test_repeated_eigenvalues(self):
        values, vectors = tridiagonal_eigensystem(
            np.array([5.0, 5.0, 5.0]), np.array([0.0, 0.0])
        )
        np.testing.assert_allclose(values, 5.0)
        np.testing.assert_allclose(vectors.T @ vectors, np.eye(3), atol=1e-12)

    def test_toeplitz_closed_form(self):
        """The -1/2/-1 Laplacian has a textbook closed-form spectrum."""
        n = 12
        values, _vectors = tridiagonal_eigensystem(
            np.full(n, 2.0), np.full(n - 1, -1.0)
        )
        expected = np.sort(
            2.0 - 2.0 * np.cos(np.pi * np.arange(1, n + 1) / (n + 1))
        )[::-1]
        np.testing.assert_allclose(values, expected, atol=1e-10)

    def test_wrong_off_diagonal_length(self):
        with pytest.raises(ValueError, match="off_diagonal"):
            tridiagonal_eigensystem(np.ones(3), np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            tridiagonal_eigensystem(np.array([]), np.array([]))

    def test_iteration_cap(self, rng):
        diagonal = rng.standard_normal(20)
        off_diagonal = rng.standard_normal(19)
        with pytest.raises(TridiagonalNotConverged):
            tridiagonal_eigensystem(diagonal, off_diagonal, max_iter=0)
