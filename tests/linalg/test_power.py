"""Tests for power iteration with deflation."""

import numpy as np
import pytest

from repro.linalg.power import (
    PowerIterationNotConverged,
    power_iteration_eigensystem,
)
from tests.conftest import assert_eigenpairs_valid, random_symmetric_psd


class TestPowerIteration:
    def test_dominant_pair_of_diagonal(self):
        values, vectors = power_iteration_eigensystem(np.diag([5.0, 2.0, 1.0]), k=1)
        np.testing.assert_allclose(values, [5.0], atol=1e-9)
        np.testing.assert_allclose(np.abs(vectors[:, 0]), [1.0, 0.0, 0.0], atol=1e-6)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_top_k_match_lapack(self, rng, k):
        matrix = random_symmetric_psd(rng, 7)
        values, vectors = power_iteration_eigensystem(matrix, k=k)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1][:k]
        np.testing.assert_allclose(values, ref, rtol=1e-6, atol=1e-8)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-5)

    def test_full_spectrum(self, rng):
        matrix = random_symmetric_psd(rng, 5)
        values, vectors = power_iteration_eigensystem(matrix)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-5, atol=1e-7)
        assert vectors.shape == (5, 5)

    def test_deterministic_given_seed(self, rng):
        matrix = random_symmetric_psd(rng, 6)
        first = power_iteration_eigensystem(matrix, k=3, seed=7)
        second = power_iteration_eigensystem(matrix, k=3, seed=7)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_rank_deficient_matrix(self):
        # Rank-1 PSD: remaining eigenvalues are zero.
        direction = np.array([1.0, 2.0, 3.0])
        matrix = np.outer(direction, direction)
        values, _vectors = power_iteration_eigensystem(matrix, k=3)
        np.testing.assert_allclose(values[0], direction @ direction, rtol=1e-9)
        np.testing.assert_allclose(values[1:], 0.0, atol=1e-8)

    def test_invalid_k(self, rng):
        matrix = random_symmetric_psd(rng, 4)
        with pytest.raises(ValueError, match="k must be"):
            power_iteration_eigensystem(matrix, k=0)
        with pytest.raises(ValueError, match="k must be"):
            power_iteration_eigensystem(matrix, k=5)

    def test_nonconvergence_raises(self):
        # Two exactly equal dominant eigenvalues stall the direction test
        # only in degenerate subspaces; force failure with max_iter=0-ish.
        matrix = np.diag([3.0, 1.0])
        with pytest.raises(PowerIterationNotConverged):
            power_iteration_eigensystem(matrix, k=1, max_iter=1, tol=1e-15)

    def test_does_not_modify_input(self, rng):
        matrix = random_symmetric_psd(rng, 4)
        original = matrix.copy()
        power_iteration_eigensystem(matrix, k=2)
        np.testing.assert_array_equal(matrix, original)
