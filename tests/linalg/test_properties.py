"""Property-based tests for the linear-algebra substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.eigen import solve_eigensystem
from repro.linalg.jacobi import jacobi_eigensystem
from repro.linalg.matrix_utils import canonicalize_sign, center_columns
from repro.linalg.svd import pseudo_inverse, svd_decompose

# Bounded, finite floats keep the numerics honest without pathological
# overflow cases.
finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


def sym_psd_matrices(max_side: int = 6):
    """Strategy: random symmetric PSD matrices as A^t A."""
    return st.integers(min_value=1, max_value=max_side).flatmap(
        lambda side: arrays(
            np.float64, (side + 1, side), elements=finite_floats
        ).map(lambda a: a.T @ a)
    )


def rect_matrices(max_rows: int = 7, max_cols: int = 5):
    """Strategy: random rectangular matrices."""
    return st.tuples(
        st.integers(min_value=1, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(max_examples=60, deadline=None)
@given(matrix=sym_psd_matrices())
def test_jacobi_residual_and_orthonormality(matrix):
    values, vectors = jacobi_eigensystem(matrix)
    scale = max(np.linalg.norm(matrix), 1.0)
    residual = matrix @ vectors - vectors * values[np.newaxis, :]
    assert np.linalg.norm(residual) / scale < 1e-8
    gram = vectors.T @ vectors
    assert np.allclose(gram, np.eye(matrix.shape[0]), atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(matrix=sym_psd_matrices())
def test_eigenvalue_sum_equals_trace(matrix):
    values, _vectors = jacobi_eigensystem(matrix)
    assert np.isclose(values.sum(), np.trace(matrix), rtol=1e-8, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(matrix=sym_psd_matrices())
def test_solver_eigenvalues_nonnegative_descending(matrix):
    result = solve_eigensystem(matrix)
    assert np.all(result.eigenvalues >= 0)
    assert np.all(np.diff(result.eigenvalues) <= 1e-9)


@settings(max_examples=50, deadline=None)
@given(matrix=rect_matrices())
def test_svd_reconstructs(matrix):
    # The contract: reconstruction error is bounded by the rank cutoff
    # (singular values below DEFAULT_RCOND * s_max are discarded), plus
    # round-off.
    result = svd_decompose(matrix)
    scale = max(np.linalg.norm(matrix), 1.0)
    assert np.linalg.norm(result.reconstruct() - matrix) / scale < 5e-7


@settings(max_examples=50, deadline=None)
@given(matrix=rect_matrices())
def test_pseudo_inverse_moore_penrose(matrix):
    # Tolerances reflect the Gram-matrix construction: singular values
    # carry ~eps * cond(A)^2 relative error, which 1/s amplifies in the
    # pseudo-inverse.  (The library's hole-filling use case only ever
    # inverts slices of orthonormal matrices, where cond is small.)
    a_plus = pseudo_inverse(matrix)
    scale = max(np.linalg.norm(matrix), 1.0)
    assert np.linalg.norm(matrix @ a_plus @ matrix - matrix) / scale < 1e-6
    plus_scale = max(np.linalg.norm(a_plus), 1.0)
    assert np.linalg.norm(a_plus @ matrix @ a_plus - a_plus) / plus_scale < 1e-5


@settings(max_examples=60, deadline=None)
@given(matrix=rect_matrices())
def test_canonicalize_sign_is_idempotent_and_norm_preserving(matrix):
    once = canonicalize_sign(matrix)
    twice = canonicalize_sign(once)
    assert np.array_equal(once, twice)
    assert np.allclose(
        np.linalg.norm(once, axis=0), np.linalg.norm(matrix, axis=0)
    )


@settings(max_examples=60, deadline=None)
@given(matrix=rect_matrices(max_rows=10, max_cols=6))
def test_centering_zeroes_column_means(matrix):
    centered, means = center_columns(matrix)
    assert np.allclose(centered.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(centered + means, matrix)
