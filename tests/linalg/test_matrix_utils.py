"""Tests for repro.linalg.matrix_utils."""

import numpy as np
import pytest

from repro.linalg.matrix_utils import (
    as_float_matrix,
    canonicalize_sign,
    center_columns,
    is_orthonormal,
    relative_residual,
    symmetrize,
)


class TestAsFloatMatrix:
    def test_accepts_lists(self):
        matrix = as_float_matrix([[1, 2], [3, 4]])
        assert matrix.dtype == np.float64
        assert matrix.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            as_float_matrix([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_float_matrix(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_float_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_float_matrix([[1.0, np.inf]])

    def test_error_uses_name(self):
        with pytest.raises(ValueError, match="mydata"):
            as_float_matrix([1.0], name="mydata")


class TestCenterColumns:
    def test_zero_mean_columns(self):
        matrix = np.array([[1.0, 10.0], [3.0, 20.0], [5.0, 30.0]])
        centered, means = center_columns(matrix)
        np.testing.assert_allclose(centered.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(means, [3.0, 20.0])

    def test_explicit_means(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        centered, means = center_columns(matrix, means=np.array([1.0, 1.0]))
        np.testing.assert_allclose(centered, [[0.0, 1.0], [2.0, 3.0]])
        np.testing.assert_allclose(means, [1.0, 1.0])

    def test_wrong_means_shape(self):
        with pytest.raises(ValueError, match="means must have shape"):
            center_columns(np.ones((2, 3)), means=np.ones(2))

    def test_does_not_modify_input(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        original = matrix.copy()
        center_columns(matrix)
        np.testing.assert_array_equal(matrix, original)


class TestSymmetrize:
    def test_symmetric_output(self, rng):
        matrix = rng.standard_normal((5, 5))
        result = symmetrize(matrix)
        np.testing.assert_array_equal(result, result.T)

    def test_already_symmetric_unchanged(self):
        matrix = np.array([[2.0, 1.0], [1.0, 3.0]])
        np.testing.assert_allclose(symmetrize(matrix), matrix)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize(np.ones((2, 3)))


class TestCanonicalizeSign:
    def test_flips_negative_peak(self):
        vectors = np.array([[0.1, -0.9], [-0.8, 0.3]])
        result = canonicalize_sign(vectors)
        # Column 0 peak is -0.8 -> flipped; column 1 peak is -0.9 -> flipped.
        np.testing.assert_allclose(result, [[-0.1, 0.9], [0.8, -0.3]])

    def test_positive_peak_unchanged(self):
        vectors = np.array([[0.9], [0.1]])
        np.testing.assert_allclose(canonicalize_sign(vectors), vectors)

    def test_idempotent(self, rng):
        vectors = rng.standard_normal((6, 3))
        once = canonicalize_sign(vectors)
        twice = canonicalize_sign(once)
        np.testing.assert_array_equal(once, twice)

    def test_1d_input(self):
        vector = np.array([-0.6, 0.2])
        result = canonicalize_sign(vector)
        assert result.ndim == 1
        np.testing.assert_allclose(result, [0.6, -0.2])

    def test_does_not_modify_input(self):
        vectors = np.array([[-1.0], [0.5]])
        original = vectors.copy()
        canonicalize_sign(vectors)
        np.testing.assert_array_equal(vectors, original)


class TestIsOrthonormal:
    def test_identity_is_orthonormal(self):
        assert is_orthonormal(np.eye(4))

    def test_scaled_identity_is_not(self):
        assert not is_orthonormal(2.0 * np.eye(4))

    def test_rotation_is_orthonormal(self):
        theta = 0.7
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert is_orthonormal(rotation)

    def test_1d_rejected(self):
        assert not is_orthonormal(np.array([1.0, 0.0]))


class TestRelativeResidual:
    def test_exact_eigenpairs_give_zero(self):
        matrix = np.diag([3.0, 2.0, 1.0])
        values = np.array([3.0, 2.0, 1.0])
        vectors = np.eye(3)
        assert relative_residual(matrix, values, vectors) < 1e-15

    def test_wrong_eigenpairs_give_large(self):
        matrix = np.diag([3.0, 2.0])
        values = np.array([1.0, 1.0])
        vectors = np.eye(2)
        assert relative_residual(matrix, values, vectors) > 0.1
