"""Tests for the Householder+QL dense eigensolver."""

import numpy as np
import pytest

from repro.linalg.householder import (
    householder_eigensystem,
    householder_tridiagonalize,
)
from tests.conftest import assert_eigenpairs_valid, random_symmetric_psd


class TestTridiagonalization:
    @pytest.mark.parametrize("size", [2, 3, 5, 12, 30])
    def test_similarity_preserved(self, rng, size):
        matrix = random_symmetric_psd(rng, size)
        diagonal, off_diagonal, q = householder_tridiagonalize(matrix)
        tri = np.diag(diagonal)
        idx = np.arange(size - 1)
        tri[idx, idx + 1] = off_diagonal
        tri[idx + 1, idx] = off_diagonal
        np.testing.assert_allclose(q @ tri @ q.T, matrix, atol=1e-8)

    def test_q_orthogonal(self, rng):
        matrix = random_symmetric_psd(rng, 10)
        _d, _e, q = householder_tridiagonalize(matrix)
        np.testing.assert_allclose(q.T @ q, np.eye(10), atol=1e-10)

    def test_already_tridiagonal_unchanged_bands(self):
        tri = (
            np.diag([3.0, 2.0, 1.0]) + np.diag([0.5, 0.4], 1) + np.diag([0.5, 0.4], -1)
        )
        diagonal, off_diagonal, _q = householder_tridiagonalize(tri)
        np.testing.assert_allclose(diagonal, [3.0, 2.0, 1.0], atol=1e-12)
        np.testing.assert_allclose(np.abs(off_diagonal), [0.5, 0.4], atol=1e-12)

    def test_mixed_scale_column_keeps_q_orthogonal(self):
        # Hypothesis-found regression: one O(1) entry next to entries
        # ~1e-145 leaves the second reduction column at ~1e-161, whose
        # squared norm underflows to subnormals -- without per-column
        # rescaling the "unit" reflector drifts and Q's orthogonality
        # error reached ~1.5e-4.
        tiny = 2.1186324e-145
        matrix = np.full((4, 4), tiny)
        matrix[0, 0] = 1.0
        _d, _e, q = householder_tridiagonalize(matrix)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-12)
        values, vectors = householder_eigensystem(matrix)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-8, atol=1e-12)
        np.testing.assert_allclose(
            vectors.T @ vectors, np.eye(4), atol=1e-12
        )


class TestEigensystem:
    @pytest.mark.parametrize("size", [1, 2, 3, 6, 15, 40])
    def test_matches_lapack(self, rng, size):
        matrix = random_symmetric_psd(rng, size)
        values, vectors = householder_eigensystem(matrix)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-8, atol=1e-8)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-7)

    def test_indefinite_matrix(self, rng):
        matrix = rng.standard_normal((8, 8))
        matrix = (matrix + matrix.T) / 2
        values, vectors = householder_eigensystem(matrix)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        np.testing.assert_allclose(values, ref, rtol=1e-8, atol=1e-8)
        assert_eigenpairs_valid(matrix, values, vectors, atol=1e-7)

    def test_agrees_with_jacobi(self, rng):
        from repro.linalg.jacobi import jacobi_eigensystem

        matrix = random_symmetric_psd(rng, 12)
        hh_values, _ = householder_eigensystem(matrix)
        jac_values, _ = jacobi_eigensystem(matrix)
        np.testing.assert_allclose(hh_values, jac_values, rtol=1e-8, atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            householder_eigensystem(np.ones((2, 3)))

    def test_rejects_non_finite_entries(self):
        """NaN/inf must fail loudly, not silently skip the column's
        elimination and return a non-tridiagonal T with a wrong Q."""
        bad = np.eye(4)
        bad[2, 1] = bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="NaN or infinite"):
            householder_tridiagonalize(bad)
        with pytest.raises(ValueError, match="NaN or infinite"):
            householder_eigensystem(np.full((3, 3), np.inf))

    def test_does_not_modify_input(self, rng):
        matrix = random_symmetric_psd(rng, 6)
        original = matrix.copy()
        householder_eigensystem(matrix)
        np.testing.assert_array_equal(matrix, original)
