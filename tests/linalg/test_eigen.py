"""Tests for the unified eigensystem front-end."""

import numpy as np
import pytest

from repro.linalg.eigen import BACKENDS, EigenResult, solve_eigensystem
from tests.conftest import assert_eigenpairs_valid, random_symmetric_psd


class TestSolveEigensystem:
    @pytest.mark.parametrize("backend", ["numpy", "jacobi"])
    def test_full_spectrum_backends(self, rng, backend):
        matrix = random_symmetric_psd(rng, 9)
        result = solve_eigensystem(matrix, backend=backend)
        assert result.k == 9
        assert result.backend == backend
        assert_eigenpairs_valid(matrix, result.eigenvalues, result.eigenvectors)

    @pytest.mark.parametrize("backend", ["numpy", "jacobi", "power", "lanczos"])
    def test_top_k_agreement_across_backends(self, rng, backend):
        matrix = random_symmetric_psd(rng, 10)
        result = solve_eigensystem(matrix, backend=backend, k=3)
        ref = np.sort(np.linalg.eigvalsh(matrix))[::-1][:3]
        np.testing.assert_allclose(result.eigenvalues, ref, rtol=1e-5, atol=1e-7)

    def test_eigenvectors_agree_up_to_sign_canonicalization(self, rng):
        matrix = random_symmetric_psd(rng, 8)
        results = {
            backend: solve_eigensystem(matrix, backend=backend, k=2)
            for backend in BACKENDS
        }
        reference = results["numpy"].eigenvectors
        for backend, result in results.items():
            # Sign canonicalization makes them directly comparable.
            np.testing.assert_allclose(
                result.eigenvectors, reference, atol=1e-5,
                err_msg=f"backend {backend} disagrees",
            )

    def test_descending_and_nonnegative(self, rng):
        matrix = random_symmetric_psd(rng, 6)
        result = solve_eigensystem(matrix)
        assert np.all(np.diff(result.eigenvalues) <= 1e-12)
        assert np.all(result.eigenvalues >= 0)

    def test_total_variance_is_trace(self, rng):
        matrix = random_symmetric_psd(rng, 5)
        result = solve_eigensystem(matrix, k=2)
        np.testing.assert_allclose(result.total_variance, np.trace(matrix))

    def test_lanczos_requires_k(self, rng):
        with pytest.raises(ValueError, match="requires an explicit k"):
            solve_eigensystem(random_symmetric_psd(rng, 4), backend="lanczos")

    def test_unknown_backend(self, rng):
        with pytest.raises(ValueError, match="unknown backend"):
            solve_eigensystem(random_symmetric_psd(rng, 3), backend="magma")

    def test_invalid_k(self, rng):
        matrix = random_symmetric_psd(rng, 3)
        with pytest.raises(ValueError, match="k must be"):
            solve_eigensystem(matrix, k=0)
        with pytest.raises(ValueError, match="k must be"):
            solve_eigensystem(matrix, k=4)


class TestEigenResult:
    def _make(self, rng) -> EigenResult:
        return solve_eigensystem(random_symmetric_psd(rng, 6))

    def test_energy_fractions_monotone_to_one(self, rng):
        result = self._make(rng)
        fractions = result.energy_fractions()
        assert np.all(np.diff(fractions) >= -1e-12)
        np.testing.assert_allclose(fractions[-1], 1.0, atol=1e-9)

    def test_truncate(self, rng):
        result = self._make(rng)
        truncated = result.truncate(2)
        assert truncated.k == 2
        np.testing.assert_array_equal(truncated.eigenvalues, result.eigenvalues[:2])
        assert truncated.total_variance == result.total_variance

    def test_truncate_bounds(self, rng):
        result = self._make(rng)
        with pytest.raises(ValueError):
            result.truncate(result.k + 1)
        with pytest.raises(ValueError):
            result.truncate(-1)

    def test_zero_variance_energy_fractions(self):
        result = solve_eigensystem(np.zeros((3, 3)))
        np.testing.assert_allclose(result.energy_fractions(), 1.0)
