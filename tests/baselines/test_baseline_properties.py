"""Cross-estimator properties on generated data (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.column_average import ColumnAverageBaseline
from repro.baselines.linear_regression import LinearRegressionBaseline
from repro.core.guessing_error import single_hole_error
from repro.core.model import RatioRuleModel


def make_linear_data(seed, n_cols, noise):
    rng = np.random.default_rng(seed)
    factor = rng.normal(5.0, 2.0, size=300)
    loadings = rng.uniform(0.5, 3.0, size=n_cols)
    return np.outer(factor, loadings) + rng.normal(0, noise, (300, n_cols))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_cols=st.integers(3, 6),
    noise=st.floats(0.01, 0.5),
)
def test_rr_and_regression_beat_colavgs_on_linear_data(seed, n_cols, noise):
    """On rank-1-plus-noise data, structure-aware estimators must beat
    the structureless baseline -- for any seed, width, and noise level."""
    matrix = make_linear_data(seed, n_cols, noise)
    train, test = matrix[:250], matrix[250:]
    rr = RatioRuleModel(cutoff=1).fit(train)
    regression = LinearRegressionBaseline().fit(train)
    col = ColumnAverageBaseline().fit(train)

    ge_rr = single_hole_error(rr, test).value
    ge_reg = single_hole_error(regression, test).value
    ge_col = single_hole_error(col, test).value
    assert ge_rr < ge_col
    assert ge_reg < ge_col


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_colavgs_ge_equals_test_deviation_rms(seed):
    """col-avgs GE1 has a closed form; it must hold for any draw."""
    rng = np.random.default_rng(seed)
    train = rng.normal(3.0, 2.0, size=(100, 4))
    test = rng.normal(3.0, 2.0, size=(20, 4))
    baseline = ColumnAverageBaseline().fit(train)
    expected = np.sqrt(((test - train.mean(axis=0)) ** 2).mean())
    assert single_hole_error(baseline, test).value == pytest.approx(
        expected, rel=1e-12
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 3))
def test_rr_ge_is_train_test_split_stable(seed, k):
    """Reversing which half is train vs test never breaks finiteness or
    sign -- a smoke property over the full estimator pipeline."""
    matrix = make_linear_data(seed, 4, 0.2)
    for train, test in ((matrix[:150], matrix[150:]), (matrix[150:], matrix[:150])):
        model = RatioRuleModel(cutoff=k).fit(train)
        value = single_hole_error(model, test).value
        assert np.isfinite(value) and value >= 0
