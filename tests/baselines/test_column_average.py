"""Tests for the col-avgs baseline."""

import numpy as np
import pytest

from repro.baselines.column_average import ColumnAverageBaseline
from repro.core.guessing_error import single_hole_error
from repro.core.model import RatioRuleModel


class TestColumnAverageBaseline:
    def test_fill_row(self, rng):
        matrix = rng.standard_normal((50, 3)) + 7
        baseline = ColumnAverageBaseline().fit(matrix)
        filled = baseline.fill_row(np.array([1.0, np.nan, 2.0]))
        assert filled[0] == 1.0
        assert filled[2] == 2.0
        assert filled[1] == pytest.approx(matrix[:, 1].mean())

    def test_fill_row_shape_check(self, rng):
        baseline = ColumnAverageBaseline().fit(rng.standard_normal((10, 3)))
        with pytest.raises(ValueError, match="shape"):
            baseline.fill_row(np.ones(4))

    def test_predict_holes_constant_per_column(self, rng):
        matrix = rng.standard_normal((30, 4)) + 2
        baseline = ColumnAverageBaseline().fit(matrix)
        predictions = baseline.predict_holes(matrix[:5], [2, 0])
        np.testing.assert_allclose(predictions[:, 0], matrix[:, 2].mean())
        np.testing.assert_allclose(predictions[:, 1], matrix[:, 0].mean())

    def test_fill_matrix(self, rng):
        matrix = rng.standard_normal((20, 3)) + 5
        baseline = ColumnAverageBaseline().fit(matrix)
        dirty = matrix[:4].copy()
        dirty[1, 2] = np.nan
        cleaned = baseline.fill(dirty)
        assert cleaned[1, 2] == pytest.approx(matrix[:, 2].mean())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            ColumnAverageBaseline().fill_row(np.array([np.nan]))

    def test_equals_rr_with_k_zero_semantics(self, rng):
        """The paper: col-avgs == the proposed method with k = 0.

        With no rules, the RR reconstruction of an all-hole row is the
        column means; col-avgs predicts exactly that for every pattern.
        """
        matrix = rng.standard_normal((100, 4)) * 3 + 10
        baseline = ColumnAverageBaseline().fit(matrix)
        model = RatioRuleModel(cutoff=1).fit(matrix)
        row = np.full(4, np.nan)
        np.testing.assert_allclose(
            baseline.fill_row(row), model.fill_row(row), atol=1e-9
        )

    def test_ge1_equals_column_stddev_mix(self, rng):
        """GE1 of col-avgs is the RMS of test deviations from train means."""
        train = rng.standard_normal((200, 3)) * 2 + 4
        test = rng.standard_normal((40, 3)) * 2 + 4
        baseline = ColumnAverageBaseline().fit(train)
        report = single_hole_error(baseline, test)
        expected = np.sqrt(((test - train.mean(axis=0)) ** 2).mean())
        assert report.value == pytest.approx(expected, rel=1e-12)
