"""Tests for the multiple-linear-regression baseline."""

import numpy as np
import pytest

from repro.baselines.linear_regression import LinearRegressionBaseline


@pytest.fixture
def linear_data(rng):
    """y2 = 3*y0 - y1 + small noise, plus an independent y3."""
    n = 400
    y0 = rng.normal(2.0, 1.0, size=n)
    y1 = rng.normal(-1.0, 2.0, size=n)
    y2 = 3.0 * y0 - y1 + rng.normal(0, 0.01, size=n)
    y3 = rng.normal(5.0, 1.0, size=n)
    return np.column_stack([y0, y1, y2, y3])


class TestLinearRegressionBaseline:
    def test_recovers_linear_relationship(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        row = np.array([1.5, 0.5, np.nan, 5.0])
        filled = baseline.fill_row(row)
        assert filled[2] == pytest.approx(3.0 * 1.5 - 0.5, abs=0.05)

    def test_matches_numpy_lstsq(self, linear_data):
        """Single-target prediction equals the closed-form OLS fit."""
        baseline = LinearRegressionBaseline(ridge=0.0).fit(linear_data)
        known = [0, 1, 3]
        target = 2
        design = np.column_stack(
            [linear_data[:, known], np.ones(linear_data.shape[0])]
        )
        coef, *_ = np.linalg.lstsq(design, linear_data[:, target], rcond=None)
        test_rows = linear_data[:5]
        ours = baseline.predict_holes(test_rows, [target])[:, 0]
        theirs = (
            np.column_stack([test_rows[:, known], np.ones(5)]) @ coef
        )
        np.testing.assert_allclose(ours, theirs, atol=1e-6)

    def test_multiple_simultaneous_holes(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        row = linear_data[10].copy()
        truth = row.copy()
        row[[2, 3]] = np.nan
        filled = baseline.fill_row(row)
        assert not np.isnan(filled).any()
        # y2 = 3*y0 - y1 stays predictable from the remaining columns;
        # y3 is independent, so its best guess is (near) the mean.
        assert filled[2] == pytest.approx(truth[2], abs=0.1)
        assert filled[3] == pytest.approx(baseline.means_[3], abs=0.3)

    def test_all_holes_gives_means(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        row = np.full(4, np.nan)
        np.testing.assert_allclose(baseline.fill_row(row), baseline.means_)

    def test_no_holes_identity(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        row = linear_data[0]
        np.testing.assert_array_equal(baseline.fill_row(row), row)

    def test_coefficient_cache_reused(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        baseline.predict_holes(linear_data[:3], [2])
        assert len(baseline._coefficient_cache) == 1
        baseline.predict_holes(linear_data[:3], [2])
        assert len(baseline._coefficient_cache) == 1
        baseline.predict_holes(linear_data[:3], [1])
        assert len(baseline._coefficient_cache) == 2

    def test_collinear_predictors_survive(self, rng):
        """Ridge keeps duplicated columns from blowing up the solve."""
        base = rng.normal(0, 1, size=(100, 1))
        matrix = np.hstack([base, base, rng.normal(0, 1, (100, 1))])
        baseline = LinearRegressionBaseline().fit(matrix)
        filled = baseline.fill_row(np.array([1.0, 1.0, np.nan]))
        assert np.isfinite(filled).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            LinearRegressionBaseline().fill_row(np.array([np.nan]))

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError, match="ridge"):
            LinearRegressionBaseline(ridge=-1.0)

    def test_refit_clears_cache(self, linear_data):
        baseline = LinearRegressionBaseline().fit(linear_data)
        baseline.predict_holes(linear_data[:2], [0])
        baseline.fit(linear_data[:100])
        assert not baseline._coefficient_cache
