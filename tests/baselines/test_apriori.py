"""Tests for the from-scratch Apriori implementation."""

import numpy as np
import pytest

from repro.baselines.apriori import AprioriMiner, binarize_matrix
from repro.io.schema import TableSchema

# Classic textbook transactions.
TRANSACTIONS = [
    frozenset({"bread", "milk"}),
    frozenset({"bread", "diapers", "beer", "eggs"}),
    frozenset({"milk", "diapers", "beer", "cola"}),
    frozenset({"bread", "milk", "diapers", "beer"}),
    frozenset({"bread", "milk", "diapers", "cola"}),
]


class TestFrequentItemsets:
    def test_singleton_supports(self):
        miner = AprioriMiner(min_support=0.4, min_confidence=0.6).fit(TRANSACTIONS)
        supports = miner.frequent_itemsets()
        assert supports[frozenset({"bread"})] == pytest.approx(0.8)
        assert supports[frozenset({"beer"})] == pytest.approx(0.6)
        assert frozenset({"eggs"}) not in supports  # support 0.2 < 0.4

    def test_pair_supports(self):
        miner = AprioriMiner(min_support=0.4, min_confidence=0.6).fit(TRANSACTIONS)
        supports = miner.frequent_itemsets()
        assert supports[frozenset({"milk", "bread"})] == pytest.approx(0.6)
        assert supports[frozenset({"diapers", "beer"})] == pytest.approx(0.6)

    def test_apriori_property_holds(self):
        """Every subset of a frequent itemset is itself frequent."""
        miner = AprioriMiner(min_support=0.3, min_confidence=0.5).fit(TRANSACTIONS)
        supports = miner.frequent_itemsets()
        for itemset in supports:
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert subset in supports
                    assert supports[subset] >= supports[itemset] - 1e-12

    def test_supports_match_brute_force(self):
        miner = AprioriMiner(min_support=0.2, min_confidence=0.5).fit(TRANSACTIONS)
        for itemset, support in miner.frequent_itemsets().items():
            brute = sum(1 for t in TRANSACTIONS if itemset <= t) / len(TRANSACTIONS)
            assert support == pytest.approx(brute)

    def test_max_itemset_size_respected(self):
        miner = AprioriMiner(
            min_support=0.2, min_confidence=0.5, max_itemset_size=2
        ).fit(TRANSACTIONS)
        assert max(len(s) for s in miner.frequent_itemsets()) <= 2


class TestRules:
    def test_confidence_definition(self):
        miner = AprioriMiner(min_support=0.4, min_confidence=0.6).fit(TRANSACTIONS)
        rule = next(
            r
            for r in miner.rules()
            if r.antecedent == frozenset({"beer"})
            and r.consequent == frozenset({"diapers"})
        )
        # support(beer, diapers) / support(beer) = 0.6 / 0.6 = 1.0.
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(0.6)
        assert rule.lift == pytest.approx(1.0 / 0.8)

    def test_min_confidence_filters(self):
        strict = AprioriMiner(min_support=0.4, min_confidence=0.99).fit(TRANSACTIONS)
        loose = AprioriMiner(min_support=0.4, min_confidence=0.5).fit(TRANSACTIONS)
        assert len(strict.rules()) < len(loose.rules())
        assert all(r.confidence >= 0.99 for r in strict.rules())

    def test_rules_sorted_by_confidence(self):
        miner = AprioriMiner(min_support=0.2, min_confidence=0.5).fit(TRANSACTIONS)
        confidences = [r.confidence for r in miner.rules()]
        assert confidences == sorted(confidences, reverse=True)

    def test_antecedent_consequent_disjoint(self):
        miner = AprioriMiner(min_support=0.2, min_confidence=0.5).fit(TRANSACTIONS)
        for rule in miner.rules():
            assert not rule.antecedent & rule.consequent

    def test_str_rendering(self):
        miner = AprioriMiner(min_support=0.4, min_confidence=0.9).fit(TRANSACTIONS)
        text = str(miner.rules()[0])
        assert "=>" in text
        assert "confidence" in text


class TestBinarize:
    def test_threshold(self):
        matrix = np.array([[0.0, 2.5], [1.0, 0.0]])
        schema = TableSchema.from_names(["bread", "milk"])
        transactions = binarize_matrix(matrix, schema)
        assert transactions == [frozenset({"milk"}), frozenset({"bread"})]

    def test_custom_threshold(self):
        matrix = np.array([[0.5, 2.5]])
        schema = TableSchema.from_names(["bread", "milk"])
        transactions = binarize_matrix(matrix, schema, threshold=1.0)
        assert transactions == [frozenset({"milk"})]

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            binarize_matrix(np.ones((2, 3)), TableSchema.from_names(["a"]))


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0.0)
        with pytest.raises(ValueError):
            AprioriMiner(min_confidence=1.5)
        with pytest.raises(ValueError):
            AprioriMiner(max_itemset_size=0)

    def test_empty_transactions(self):
        with pytest.raises(ValueError, match="at least one"):
            AprioriMiner().fit([])

    def test_unfitted_accessors(self):
        miner = AprioriMiner()
        with pytest.raises(RuntimeError):
            miner.rules()
        with pytest.raises(RuntimeError):
            miner.frequent_itemsets()
