"""Tests for the k-NN imputation baseline."""

import numpy as np
import pytest

from repro.baselines.knn import KNNImputationBaseline


@pytest.fixture
def clustered_data(rng):
    """Two clusters with different column-2 levels (non-linear structure)."""
    a = rng.normal([0.0, 0.0, 10.0], 0.3, size=(100, 3))
    b = rng.normal([5.0, 5.0, -10.0], 0.3, size=(100, 3))
    return np.vstack([a, b])


class TestKNN:
    def test_exact_match_recovered(self, rng):
        matrix = rng.standard_normal((50, 3))
        baseline = KNNImputationBaseline(n_neighbors=1).fit(matrix)
        row = matrix[7].copy()
        truth = row[2]
        row[2] = np.nan
        assert baseline.fill_row(row)[2] == pytest.approx(truth, abs=1e-9)

    def test_cluster_structure_exploited(self, clustered_data):
        """k-NN nails the cluster-dependent column a linear rule smears."""
        baseline = KNNImputationBaseline(n_neighbors=5).fit(clustered_data)
        near_a = baseline.fill_row(np.array([0.1, -0.1, np.nan]))
        near_b = baseline.fill_row(np.array([5.1, 4.9, np.nan]))
        assert near_a[2] == pytest.approx(10.0, abs=0.5)
        assert near_b[2] == pytest.approx(-10.0, abs=0.5)

    def test_beats_linear_model_on_clusters(self, clustered_data, rng):
        from repro.core.guessing_error import single_hole_error
        from repro.core.model import RatioRuleModel

        train, test = clustered_data[:180], clustered_data[180:]
        knn = KNNImputationBaseline(n_neighbors=5).fit(train)
        rr = RatioRuleModel().fit(train)
        ge_knn = single_hole_error(knn, test).value
        ge_rr = single_hole_error(rr, test).value
        # Two clusters break the single-hyper-plane assumption; k-NN
        # should win here (this is the quantitative-rules trade-off
        # of Sec. 6.3, realized by a different neighbour method).
        assert ge_knn < ge_rr

    def test_all_holes_fall_back_to_means(self, clustered_data):
        baseline = KNNImputationBaseline().fit(clustered_data)
        filled = baseline.fill_row(np.full(3, np.nan))
        np.testing.assert_allclose(filled, clustered_data.mean(axis=0))

    def test_uniform_weights(self, clustered_data):
        baseline = KNNImputationBaseline(n_neighbors=3, weights="uniform").fit(
            clustered_data
        )
        filled = baseline.fill_row(np.array([0.0, 0.0, np.nan]))
        assert filled[2] == pytest.approx(10.0, abs=1.0)

    def test_predict_holes_batch_matches_fill_row(self, clustered_data):
        baseline = KNNImputationBaseline(n_neighbors=4).fit(clustered_data)
        test = clustered_data[:6]
        batch = baseline.predict_holes(test, [1])
        for i in range(6):
            row = test[i].copy()
            row[1] = np.nan
            assert batch[i, 0] == pytest.approx(baseline.fill_row(row)[1])

    def test_k_clamped_to_train_size(self, rng):
        matrix = rng.standard_normal((3, 2))
        baseline = KNNImputationBaseline(n_neighbors=50).fit(matrix)
        filled = baseline.fill_row(np.array([0.0, np.nan]))
        assert np.isfinite(filled).all()

    def test_standardization_matters(self, rng):
        """A huge-scale irrelevant column must not dominate distances."""
        relevant = rng.uniform(0, 1, size=(200, 1))
        target = 3.0 * relevant
        noise_col = rng.normal(0, 1e6, size=(200, 1))
        matrix = np.hstack([relevant, noise_col, target])
        baseline = KNNImputationBaseline(n_neighbors=5, standardize=True).fit(matrix)
        filled = baseline.fill_row(np.array([0.5, 0.0, np.nan]))
        assert filled[2] == pytest.approx(1.5, abs=0.3)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNNImputationBaseline(n_neighbors=0)
        with pytest.raises(ValueError, match="weights"):
            KNNImputationBaseline(weights="quadratic")
        with pytest.raises(RuntimeError, match="fit"):
            KNNImputationBaseline().fill_row(np.array([np.nan]))
        baseline = KNNImputationBaseline().fit(rng.standard_normal((5, 2)))
        with pytest.raises(ValueError, match="shape"):
            baseline.fill_row(np.ones(3))
