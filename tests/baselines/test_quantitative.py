"""Tests for quantitative association rules (Srikant-Agrawal style)."""

import numpy as np
import pytest

from repro.baselines.quantitative import Interval, QuantitativeRuleModel
from repro.io.schema import TableSchema


@pytest.fixture
def bread_butter(rng):
    """2-d cloud along butter ~= 0.7 * bread, bread in [1, 6]."""
    bread = rng.uniform(1.0, 6.0, size=300)
    butter = 0.7 * bread + rng.normal(0, 0.15, size=300)
    return np.column_stack([bread, butter])


@pytest.fixture
def schema():
    return TableSchema.from_names(["bread", "butter"], unit="$")


class TestInterval:
    def test_half_open_membership(self):
        interval = Interval(column=0, low=1.0, high=2.0)
        assert interval.contains(1.0)
        assert interval.contains(1.99)
        assert not interval.contains(2.0)

    def test_closed_right(self):
        interval = Interval(column=0, low=1.0, high=2.0, closed_right=True)
        assert interval.contains(2.0)

    def test_midpoint_and_label(self):
        interval = Interval(column=1, low=2.0, high=4.0)
        assert interval.midpoint == 3.0
        assert interval.label("butter") == "butter: [2-4]"


class TestFitAndRules:
    def test_rules_mined(self, bread_butter, schema):
        model = QuantitativeRuleModel(
            n_intervals=4, min_support=0.05, min_confidence=0.4
        ).fit(bread_butter, schema)
        rules = model.rules()
        assert rules, "no quantitative rules mined from correlated data"
        # Rules never mix a column on both sides.
        for rule in rules:
            lhs = {i.column for i in rule.antecedent}
            rhs = {i.column for i in rule.consequent}
            assert not lhs & rhs

    def test_describe_uses_names(self, bread_butter, schema):
        model = QuantitativeRuleModel(min_support=0.05, min_confidence=0.4).fit(
            bread_butter, schema
        )
        text = model.rules()[0].describe(schema)
        assert "bread" in text or "butter" in text
        assert "=>" in text

    def test_equi_depth_buckets_balanced(self, bread_butter, schema):
        model = QuantitativeRuleModel(n_intervals=4).fit(bread_butter, schema)
        counts = []
        for interval in model.intervals_[0]:
            counts.append(
                sum(1 for v in bread_butter[:, 0] if interval.contains(float(v)))
            )
        # Equi-depth: all buckets within 20% of each other.
        assert max(counts) <= 1.2 * max(min(counts), 1) + 2

    def test_heavily_tied_column_handled(self, schema):
        matrix = np.column_stack([np.ones(50), np.arange(50.0)])
        model = QuantitativeRuleModel(n_intervals=4, min_support=0.05).fit(
            matrix, schema
        )
        assert model.intervals_[0]  # degenerate column still gets buckets


class TestPrediction:
    def test_in_range_prediction_close(self, bread_butter, schema):
        model = QuantitativeRuleModel(
            n_intervals=4, min_support=0.05, min_confidence=0.3
        ).fit(bread_butter, schema)
        prediction = model.predict(np.array([3.0, np.nan]), target=1)
        assert prediction is not None
        assert prediction == pytest.approx(0.7 * 3.0, abs=0.9)

    def test_out_of_range_no_rule_fires(self, bread_butter, schema):
        """The Fig. 12 failure mode: extrapolation is impossible."""
        model = QuantitativeRuleModel(
            n_intervals=4, min_support=0.05, min_confidence=0.3
        ).fit(bread_butter, schema)
        assert model.predict(np.array([50.0, np.nan]), target=1) is None

    def test_target_value_never_leaks(self, bread_butter, schema):
        model = QuantitativeRuleModel(min_support=0.05, min_confidence=0.3).fit(
            bread_butter, schema
        )
        with_truth = model.predict(np.array([3.0, 99999.0]), target=1)
        with_nan = model.predict(np.array([3.0, np.nan]), target=1)
        assert with_truth == with_nan

    def test_coverage_accounting(self, bread_butter, schema):
        model = QuantitativeRuleModel(min_support=0.05, min_confidence=0.3).fit(
            bread_butter, schema
        )
        model.predict(np.array([3.0, np.nan]), target=1)
        model.predict(np.array([50.0, np.nan]), target=1)
        assert model.prediction_attempts_ == 2
        assert model.prediction_misses_ == 1
        assert model.coverage() == pytest.approx(0.5)

    def test_coverage_nan_before_any_attempt(self, bread_butter, schema):
        model = QuantitativeRuleModel().fit(bread_butter, schema)
        assert np.isnan(model.coverage())

    def test_fill_row_falls_back_to_means(self, bread_butter, schema):
        model = QuantitativeRuleModel(min_support=0.05, min_confidence=0.3).fit(
            bread_butter, schema
        )
        filled = model.fill_row(np.array([50.0, np.nan]))
        assert filled[1] == pytest.approx(bread_butter[:, 1].mean())

    def test_unfitted_raises(self):
        model = QuantitativeRuleModel()
        with pytest.raises(RuntimeError):
            model.predict(np.array([1.0, np.nan]), target=1)
        with pytest.raises(RuntimeError):
            model.rules()


class TestValidation:
    def test_n_intervals_bounds(self):
        with pytest.raises(ValueError, match="n_intervals"):
            QuantitativeRuleModel(n_intervals=1)

    def test_schema_mismatch(self, bread_butter):
        with pytest.raises(ValueError, match="width"):
            QuantitativeRuleModel().fit(
                bread_butter, TableSchema.from_names(["only-one"])
            )

    def test_rejects_1d(self, schema):
        with pytest.raises(ValueError, match="2-d"):
            QuantitativeRuleModel().fit(np.ones(5), schema)
