"""Tests for the latent-factor generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    Archetype,
    Factor,
    LatentFactorSpec,
    generate_latent_factor,
)
from repro.io.schema import TableSchema


def simple_spec(n_rows=100, clip_min=None, round_digits=None):
    schema = TableSchema.from_names(["x", "y", "z"])
    return LatentFactorSpec(
        name="toy",
        n_rows=n_rows,
        schema=schema,
        factors=(
            Factor(loadings=np.array([1.0, 2.0, 3.0]), name="volume"),
            Factor(loadings=np.array([1.0, -1.0, 0.0]), name="contrast"),
        ),
        archetypes=(
            Archetype(
                weight=0.7, score_means=(2.0, 0.0), score_stds=(0.5, 1.0), name="big"
            ),
            Archetype(
                weight=0.3, score_means=(0.5, 0.0), score_stds=(0.2, 0.5), name="small"
            ),
        ),
        base_row=np.array([10.0, 20.0, 30.0]),
        noise_stds=np.array([0.1, 0.1, 0.1]),
        clip_min=clip_min,
        round_digits=round_digits,
    )


class TestSpecValidation:
    def test_happy_path(self):
        simple_spec()  # must not raise

    def test_base_row_shape(self):
        with pytest.raises(ValueError, match="base_row"):
            LatentFactorSpec(
                name="bad",
                n_rows=10,
                schema=TableSchema.from_names(["x", "y"]),
                factors=(Factor(loadings=np.array([1.0, 2.0])),),
                archetypes=(
                    Archetype(weight=1.0, score_means=(0.0,), score_stds=(1.0,)),
                ),
                base_row=np.zeros(3),
                noise_stds=np.zeros(2),
            )

    def test_factor_width_mismatch(self):
        with pytest.raises(ValueError, match="loadings must have shape"):
            LatentFactorSpec(
                name="bad",
                n_rows=10,
                schema=TableSchema.from_names(["x", "y"]),
                factors=(Factor(loadings=np.array([1.0, 2.0, 3.0])),),
                archetypes=(
                    Archetype(weight=1.0, score_means=(0.0,), score_stds=(1.0,)),
                ),
                base_row=np.zeros(2),
                noise_stds=np.zeros(2),
            )

    def test_archetype_score_count_mismatch(self):
        with pytest.raises(ValueError, match="score all"):
            LatentFactorSpec(
                name="bad",
                n_rows=10,
                schema=TableSchema.from_names(["x"]),
                factors=(Factor(loadings=np.array([1.0])),),
                archetypes=(
                    Archetype(
                        weight=1.0, score_means=(0.0, 0.0), score_stds=(1.0, 1.0)
                    ),
                ),
                base_row=np.zeros(1),
                noise_stds=np.zeros(1),
            )

    def test_archetype_validation(self):
        with pytest.raises(ValueError, match="weight"):
            Archetype(weight=0.0, score_means=(0.0,), score_stds=(1.0,))
        with pytest.raises(ValueError, match="equal length"):
            Archetype(weight=1.0, score_means=(0.0, 1.0), score_stds=(1.0,))
        with pytest.raises(ValueError, match=">= 0"):
            Archetype(weight=1.0, score_means=(0.0,), score_stds=(-1.0,))


class TestGeneration:
    def test_shape_and_labels(self):
        dataset = generate_latent_factor(simple_spec(), seed=0)
        assert dataset.shape == (100, 3)
        assert len(dataset.row_labels) == 100
        assert dataset.row_labels[0] == "toy-row-0"

    def test_deterministic(self):
        first = generate_latent_factor(simple_spec(), seed=4)
        second = generate_latent_factor(simple_spec(), seed=4)
        np.testing.assert_array_equal(first.matrix, second.matrix)

    def test_seeds_differ(self):
        first = generate_latent_factor(simple_spec(), seed=1)
        second = generate_latent_factor(simple_spec(), seed=2)
        assert not np.array_equal(first.matrix, second.matrix)

    def test_factor_structure_recovered(self):
        """The spectral check: generated data has the designed rank."""
        dataset = generate_latent_factor(simple_spec(n_rows=2000), seed=0)
        centered = dataset.matrix - dataset.matrix.mean(axis=0)
        singular = np.linalg.svd(centered, compute_uv=False)
        energy = singular**2 / (singular**2).sum()
        # Two real factors + tiny noise: the first two dominate.
        assert energy[:2].sum() > 0.99

    def test_clipping(self):
        spec = simple_spec(clip_min=25.0)
        dataset = generate_latent_factor(spec, seed=0)
        assert dataset.matrix.min() >= 25.0

    def test_rounding(self):
        spec = simple_spec(round_digits=0)
        dataset = generate_latent_factor(spec, seed=0)
        np.testing.assert_array_equal(dataset.matrix, np.round(dataset.matrix))

    def test_extra_rows_appended(self):
        extra = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        dataset = generate_latent_factor(
            simple_spec(n_rows=10), seed=0, extra_rows=extra, extra_labels=["p", "q"]
        )
        assert dataset.shape == (12, 3)
        np.testing.assert_array_equal(dataset.matrix[-2:], extra)
        assert dataset.row_labels[-2:] == ("p", "q")

    def test_extra_rows_width_validated(self):
        with pytest.raises(ValueError, match="width"):
            generate_latent_factor(
                simple_spec(n_rows=10), extra_rows=np.ones((1, 5))
            )

    def test_extra_labels_count_validated(self):
        with pytest.raises(ValueError, match="extra_labels"):
            generate_latent_factor(
                simple_spec(n_rows=10),
                extra_rows=np.ones((2, 3)),
                extra_labels=["only-one"],
            )
