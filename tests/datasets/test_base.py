"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.io.schema import TableSchema


@pytest.fixture
def dataset(rng):
    matrix = rng.standard_normal((50, 3))
    schema = TableSchema.from_names(["a", "b", "c"])
    labels = tuple(f"row{i}" for i in range(50))
    return Dataset(name="toy", matrix=matrix, schema=schema, row_labels=labels)


class TestDataset:
    def test_shape_properties(self, dataset):
        assert dataset.n_rows == 50
        assert dataset.n_cols == 3
        assert dataset.shape == (50, 3)

    def test_schema_width_validated(self, rng):
        with pytest.raises(ValueError, match="width"):
            Dataset(
                name="bad",
                matrix=rng.standard_normal((5, 3)),
                schema=TableSchema.from_names(["a", "b"]),
            )

    def test_label_count_validated(self, rng):
        with pytest.raises(ValueError, match="labels"):
            Dataset(
                name="bad",
                matrix=rng.standard_normal((5, 2)),
                schema=TableSchema.from_names(["a", "b"]),
                row_labels=("only-one",),
            )

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            Dataset(name="bad", matrix=np.ones(3), schema=TableSchema.generic(3))


class TestTrainTestSplit:
    def test_sizes(self, dataset):
        train, test = dataset.train_test_split(0.1, seed=0)
        assert test.n_rows == 5
        assert train.n_rows == 45

    def test_partition_is_complete_and_disjoint(self, dataset):
        train, test = dataset.train_test_split(0.2, seed=3)
        combined = sorted(
            map(tuple, np.vstack([train.matrix, test.matrix]).tolist())
        )
        original = sorted(map(tuple, dataset.matrix.tolist()))
        assert combined == original

    def test_labels_follow_rows(self, dataset):
        train, _test = dataset.train_test_split(0.1, seed=1)
        for label, row in zip(train.row_labels, train.matrix):
            index = int(label[3:])
            np.testing.assert_array_equal(row, dataset.matrix[index])

    def test_deterministic(self, dataset):
        first = dataset.train_test_split(0.1, seed=5)
        second = dataset.train_test_split(0.1, seed=5)
        np.testing.assert_array_equal(first[0].matrix, second[0].matrix)

    def test_different_seeds_differ(self, dataset):
        first, _ = dataset.train_test_split(0.5, seed=1)
        second, _ = dataset.train_test_split(0.5, seed=2)
        assert not np.array_equal(first.matrix, second.matrix)

    def test_both_halves_nonempty_even_extreme(self, dataset):
        train, test = dataset.train_test_split(0.999, seed=0)
        assert train.n_rows >= 1
        assert test.n_rows >= 1

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.train_test_split(0.0)
        with pytest.raises(ValueError):
            dataset.train_test_split(1.0)
