"""Tests for the original-file loaders (synthetic files in UCI format)."""

import gzip

import numpy as np
import pytest

from repro.datasets.loaders import read_abalone_file


def write_uci_abalone(path, n_rows=20, seed=0, gzipped=False):
    """Emit a file in the exact UCI abalone format."""
    rng = np.random.default_rng(seed)
    lines = []
    for i in range(n_rows):
        sex = "MFI"[i % 3]
        size = float(np.exp(rng.normal(0, 0.3)))
        fields = [
            sex,
            f"{0.52 * size:.3f}",
            f"{0.41 * size:.3f}",
            f"{0.14 * size:.3f}",
            f"{0.83 * size**3:.4f}",
            f"{0.36 * size**3:.4f}",
            f"{0.18 * size**3:.4f}",
            f"{0.24 * size**3:.4f}",
            str(int(5 + 10 * size)),
        ]
        lines.append(",".join(fields))
    payload = "\n".join(lines) + "\n"
    if gzipped:
        with gzip.open(path, "wt") as handle:
            handle.write(payload)
    else:
        path.write_text(payload)


class TestReadAbaloneFile:
    def test_parses_shape_and_schema(self, tmp_path):
        path = tmp_path / "abalone.data"
        write_uci_abalone(path, n_rows=25)
        dataset = read_abalone_file(path)
        assert dataset.shape == (25, 7)
        assert dataset.schema.names[0] == "length"
        assert dataset.schema.names[-1] == "shell weight"
        assert dataset.matrix.min() > 0

    def test_sex_and_rings_dropped(self, tmp_path):
        path = tmp_path / "abalone.data"
        write_uci_abalone(path, n_rows=5)
        dataset = read_abalone_file(path)
        # No column is categorical-coded or integer-ring-like: all 7
        # measurements track the allometric size variable.
        lengths = dataset.matrix[:, 0]
        wholes = dataset.matrix[:, 3]
        assert np.corrcoef(lengths**3, wholes)[0, 1] > 0.99

    def test_gzipped_file(self, tmp_path):
        path = tmp_path / "abalone.data.gz"
        write_uci_abalone(path, n_rows=10, gzipped=True)
        dataset = read_abalone_file(path)
        assert dataset.shape == (10, 7)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "abalone.data"
        write_uci_abalone(path, n_rows=3)
        path.write_text(path.read_text() + "\n\n")
        assert read_abalone_file(path).shape == (3, 7)

    def test_model_pipeline_works(self, tmp_path):
        """The loaded dataset drops straight into the paper pipeline."""
        from repro.core.model import RatioRuleModel

        path = tmp_path / "abalone.data"
        write_uci_abalone(path, n_rows=200)
        dataset = read_abalone_file(path)
        model = RatioRuleModel().fit(dataset.matrix, schema=dataset.schema)
        assert model.rules_[0].energy_fraction > 0.8  # allometric rank-1

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "abalone.data"
        path.write_text("M,0.5,0.4\n")
        with pytest.raises(ValueError, match=":1:"):
            read_abalone_file(path)

    def test_bad_sex_code(self, tmp_path):
        path = tmp_path / "abalone.data"
        path.write_text("X,0.5,0.4,0.1,1.0,0.4,0.2,0.3,9\n")
        with pytest.raises(ValueError, match="sex code"):
            read_abalone_file(path)

    def test_bad_measurement(self, tmp_path):
        path = tmp_path / "abalone.data"
        path.write_text("M,0.5,oops,0.1,1.0,0.4,0.2,0.3,9\n")
        with pytest.raises(ValueError, match=":1:"):
            read_abalone_file(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "abalone.data"
        path.write_text("")
        with pytest.raises(ValueError, match="no data rows"):
            read_abalone_file(path)
