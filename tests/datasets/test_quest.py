"""Tests for the Quest-style market-basket generator."""

import numpy as np
import pytest

from repro.datasets.quest import QuestBasketGenerator
from repro.io.rowstore import RowStore


class TestQuestGenerator:
    def test_shape_and_nonnegativity(self):
        generator = QuestBasketGenerator(n_items=50, seed=0)
        matrix = generator.generate(500, seed=1)
        assert matrix.shape == (500, 50)
        assert matrix.min() >= 0

    def test_basket_sparsity(self):
        """Most item cells in a transaction are zero (baskets are small)."""
        generator = QuestBasketGenerator(n_items=100, seed=0)
        matrix = generator.generate(300, seed=1)
        fill = np.count_nonzero(matrix) / matrix.size
        assert fill < 0.5

    def test_every_transaction_buys_something(self):
        generator = QuestBasketGenerator(n_items=40, seed=0)
        matrix = generator.generate(200, seed=1)
        assert np.all(matrix.sum(axis=1) > 0)

    def test_amounts_are_cents(self):
        generator = QuestBasketGenerator(n_items=30, seed=0)
        matrix = generator.generate(100, seed=1)
        np.testing.assert_allclose(matrix, np.round(matrix, 2))

    def test_deterministic(self):
        generator_a = QuestBasketGenerator(n_items=30, seed=5)
        generator_b = QuestBasketGenerator(n_items=30, seed=5)
        np.testing.assert_array_equal(
            generator_a.generate(50, seed=2), generator_b.generate(50, seed=2)
        )

    def test_pattern_correlation_exists(self):
        """Items sharing a pattern must co-occur -> correlated columns."""
        generator = QuestBasketGenerator(n_items=60, n_patterns=10, seed=0)
        matrix = generator.generate(2000, seed=1)
        correlation = np.corrcoef(matrix, rowvar=False)
        np.fill_diagonal(correlation, 0.0)
        assert np.nanmax(correlation) > 0.5

    def test_iter_blocks_sizes(self):
        generator = QuestBasketGenerator(n_items=20, seed=0)
        blocks = list(generator.iter_blocks(250, block_rows=100, seed=1))
        assert [b.shape[0] for b in blocks] == [100, 100, 50]

    def test_write_rowstore(self, tmp_path):
        generator = QuestBasketGenerator(n_items=25, seed=0)
        path = tmp_path / "quest.rr"
        generator.write_rowstore(path, 321, block_rows=100, seed=1)
        matrix, schema = RowStore.read_all(path)
        assert matrix.shape == (321, 25)
        assert schema.names[0] == "item00"

    def test_schema_names_padded(self):
        generator = QuestBasketGenerator(n_items=100, seed=0)
        names = generator.schema.names
        assert names[0] == "item00"
        assert names[99] == "item99"

    def test_validation(self):
        with pytest.raises(ValueError, match="n_items"):
            QuestBasketGenerator(n_items=1)
        with pytest.raises(ValueError, match="n_patterns"):
            QuestBasketGenerator(n_patterns=0)
        with pytest.raises(ValueError, match="popularity_decay"):
            QuestBasketGenerator(popularity_decay=1.5)
        generator = QuestBasketGenerator(seed=0)
        with pytest.raises(ValueError, match="n_transactions"):
            generator.generate(0)
