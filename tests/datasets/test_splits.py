"""Tests for the matrix-level train/test split."""

import numpy as np
import pytest

from repro.datasets.splits import train_test_split


class TestTrainTestSplit:
    def test_90_10_protocol(self, rng):
        matrix = rng.standard_normal((100, 4))
        train, test = train_test_split(matrix, 0.1, seed=0)
        assert train.shape == (90, 4)
        assert test.shape == (10, 4)

    def test_partition_complete(self, rng):
        matrix = rng.standard_normal((37, 3))
        train, test = train_test_split(matrix, 0.25, seed=2)
        combined = sorted(map(tuple, np.vstack([train, test]).tolist()))
        assert combined == sorted(map(tuple, matrix.tolist()))

    def test_deterministic(self, rng):
        matrix = rng.standard_normal((20, 2))
        a = train_test_split(matrix, 0.2, seed=7)
        b = train_test_split(matrix, 0.2, seed=7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_both_sides_nonempty(self, rng):
        matrix = rng.standard_normal((3, 2))
        train, test = train_test_split(matrix, 0.01, seed=0)
        assert train.shape[0] >= 1
        assert test.shape[0] >= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="2-d"):
            train_test_split(np.ones(5))
        with pytest.raises(ValueError, match="at least 2"):
            train_test_split(np.ones((1, 3)))
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(np.ones((5, 2)), 0.0)
