"""Tests for the drifting transaction stream generator."""

import numpy as np
import pytest

from repro.core.compare import compare_models
from repro.core.model import RatioRuleModel
from repro.core.online import OnlineRatioRuleModel
from repro.datasets.streams import StreamPhase, TransactionStream


@pytest.fixture
def two_phase_stream():
    return TransactionStream(
        [
            StreamPhase(loadings=(1.0, 2.0, 0.5), n_blocks=3, name="before"),
            StreamPhase(loadings=(1.0, 0.8, 2.0), n_blocks=3, name="after"),
        ],
        block_rows=500,
        seed=0,
    )


class TestTransactionStream:
    def test_block_schedule(self, two_phase_stream):
        pairs = list(two_phase_stream.blocks())
        assert len(pairs) == 6
        assert [phase.name for phase, _b in pairs] == ["before"] * 3 + ["after"] * 3
        assert all(block.shape == (500, 3) for _p, block in pairs)

    def test_deterministic_replay(self, two_phase_stream):
        first = two_phase_stream.materialize()
        second = two_phase_stream.materialize()
        np.testing.assert_array_equal(first, second)

    def test_non_negative(self, two_phase_stream):
        assert two_phase_stream.materialize().min() >= 0.0

    def test_phase_ratios_realized(self, two_phase_stream):
        """A model per phase recovers each phase's spending ratio."""
        pairs = list(two_phase_stream.blocks())
        before = np.vstack([b for p, b in pairs if p.name == "before"])
        after = np.vstack([b for p, b in pairs if p.name == "after"])
        model_before = RatioRuleModel(cutoff=1).fit(before)
        model_after = RatioRuleModel(cutoff=1).fit(after)
        rule_before = model_before.rules_[0].loadings
        rule_after = model_after.rules_[0].loadings
        assert rule_before[1] / rule_before[0] == pytest.approx(2.0, rel=0.1)
        assert rule_after[2] / rule_after[0] == pytest.approx(2.0, rel=0.1)
        assert compare_models(model_before, model_after).is_drifted()

    def test_online_model_tracks_drift(self, two_phase_stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        snapshots = []
        for _phase, block in two_phase_stream.blocks():
            online.update(block)
            snapshots.append(online.model().rules_[0].loadings.copy())
        # After the first phase only, milk-ish column dominates...
        assert snapshots[2][1] > snapshots[2][2]
        # ...the final mixture reflects the post-drift data too.
        assert snapshots[-1][2] > snapshots[2][2]

    def test_schema_helpers(self, two_phase_stream):
        assert two_phase_stream.schema().names == ["product0", "product1", "product2"]
        named = two_phase_stream.schema(["a", "b", "c"])
        assert named.names == ["a", "b", "c"]
        with pytest.raises(ValueError, match="names"):
            two_phase_stream.schema(["only", "two"])

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one phase"):
            TransactionStream([])
        with pytest.raises(ValueError, match="disagree"):
            TransactionStream(
                [
                    StreamPhase(loadings=(1.0, 2.0), n_blocks=1),
                    StreamPhase(loadings=(1.0,), n_blocks=1),
                ]
            )
        with pytest.raises(ValueError, match="n_blocks"):
            StreamPhase(loadings=(1.0,), n_blocks=0)
        with pytest.raises(ValueError, match="block_rows"):
            TransactionStream(
                [StreamPhase(loadings=(1.0,), n_blocks=1)], block_rows=0
            )
