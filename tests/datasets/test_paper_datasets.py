"""Tests for the three simulated paper datasets.

Beyond shape checks, these tests pin down the *spectral stories* each
dataset must tell for the paper's experiments to be meaningful (see
DESIGN.md's substitution table).
"""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.datasets import load_dataset
from repro.datasets.abalone import generate_abalone
from repro.datasets.baseball import generate_baseball
from repro.datasets.nba import NBA_OUTLIER_LABELS, generate_nba


class TestNBA:
    def test_paper_shape(self):
        dataset = generate_nba()
        assert dataset.shape == (459, 12)

    def test_fields_match_table2(self):
        dataset = generate_nba()
        assert "minutes played" in dataset.schema.names
        assert "total rebounds" in dataset.schema.names
        assert len(dataset.schema.names) == 12

    def test_non_negative_integers(self):
        matrix = generate_nba().matrix
        assert matrix.min() >= 0
        np.testing.assert_array_equal(matrix, np.round(matrix))

    def test_outliers_present_and_labelled(self):
        dataset = generate_nba()
        for label in NBA_OUTLIER_LABELS:
            assert label in dataset.row_labels

    def test_without_outliers(self):
        dataset = generate_nba(with_outliers=False)
        assert dataset.shape == (459, 12)
        for label in NBA_OUTLIER_LABELS:
            assert label not in dataset.row_labels

    def test_first_rule_is_court_action(self):
        """RR1 must be the all-positive volume factor of Table 2."""
        dataset = generate_nba()
        model = RatioRuleModel(cutoff=3).fit(dataset.matrix, schema=dataset.schema)
        rr1 = model.rules_[0]
        dominant = rr1.dominant_attributes()
        assert all(value > 0 for _name, value in dominant)
        assert dominant[0][0] == "minutes played"

    def test_deterministic(self):
        np.testing.assert_array_equal(
            generate_nba(seed=3).matrix, generate_nba(seed=3).matrix
        )

    def test_n_rows_must_exceed_outliers(self):
        with pytest.raises(ValueError, match="exceed"):
            generate_nba(n_rows=4)


class TestBaseball:
    def test_paper_shape(self):
        assert generate_baseball().shape == (1574, 17)

    def test_non_negative(self):
        assert generate_baseball().matrix.min() >= 0

    def test_batting_average_plausible(self):
        dataset = generate_baseball()
        ba = dataset.matrix[:, dataset.schema.index_of("batting average")]
        assert 0.0 <= ba.min()
        assert ba.max() < 0.6

    def test_playing_time_dominates_spectrum(self):
        dataset = generate_baseball()
        model = RatioRuleModel().fit(dataset.matrix, schema=dataset.schema)
        assert model.rules_[0].energy_fraction > 0.7


class TestAbalone:
    def test_paper_shape(self):
        assert generate_abalone().shape == (4177, 7)

    def test_strictly_positive(self):
        assert generate_abalone().matrix.min() > 0

    def test_near_rank_one(self):
        """Allometric growth: one size factor soaks up the variance.

        This is what makes RR beat col-avgs by the largest margin here.
        """
        dataset = generate_abalone()
        model = RatioRuleModel().fit(dataset.matrix, schema=dataset.schema)
        assert model.rules_[0].energy_fraction > 0.9

    def test_weights_scale_cubically(self):
        """Bigger specimens are disproportionately heavier."""
        dataset = generate_abalone(n_rows=2000)
        length = dataset.matrix[:, dataset.schema.index_of("length")]
        whole = dataset.matrix[:, dataset.schema.index_of("whole weight")]
        # Fit the allometric exponent in log space; expect ~3.
        slope = np.polyfit(np.log(length), np.log(whole), 1)[0]
        assert 2.7 < slope < 3.3


class TestLoadDataset:
    @pytest.mark.parametrize(
        "name,shape",
        [("nba", (459, 12)), ("baseball", (1574, 17)), ("abalone", (4177, 7))],
    )
    def test_registry_shapes(self, name, shape):
        assert load_dataset(name).shape == shape

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("stocks")

    def test_seed_forwarded(self):
        assert not np.array_equal(
            load_dataset("abalone", seed=1).matrix,
            load_dataset("abalone", seed=2).matrix,
        )
