"""Tests for the CLI observability surface.

Covers the shared ``--trace`` / ``--metrics-port`` flags (parser
defaults, trace-file production, endpoint announcement, global-state
hygiene) and the ``obs dump`` pretty-printer for both payload kinds.
"""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.model import RatioRuleModel
from repro.io.csv_format import save_csv_matrix
from repro.io.schema import TableSchema
from repro.obs import MetricsRegistry, get_tracer, register_scan_metrics, to_json
from repro.obs.metrics import ScanMetrics

pytestmark = pytest.mark.obs

SCHEMA = TableSchema.from_names(["a", "b", "c"])


@pytest.fixture
def train_csv(tmp_path, rng):
    factor = rng.normal(5.0, 2.0, size=150)
    matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (150, 3))
    path = tmp_path / "train.csv"
    save_csv_matrix(path, matrix, SCHEMA)
    return path


@pytest.fixture
def holey_csv(tmp_path, train_csv, rng):
    matrix = np.loadtxt(train_csv, delimiter=",", skiprows=1)[:20]
    matrix[rng.random(matrix.shape) < 0.3] = np.nan
    path = tmp_path / "requests.csv"
    save_csv_matrix(path, matrix, SCHEMA)
    return path


@pytest.fixture
def model_file(tmp_path, train_csv):
    matrix = np.loadtxt(train_csv, delimiter=",", skiprows=1)
    path = tmp_path / "model.npz"
    RatioRuleModel(cutoff=1).fit(matrix, SCHEMA).save(path)
    return path


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["fit", "d.csv"],
            ["serve-batch", "m.npz", "d.csv"],
            ["pipeline", "d.csv"],
        ],
    )
    def test_obs_flags_default_off(self, argv):
        args = build_parser().parse_args(argv)
        assert args.trace is None
        assert args.metrics_port is None

    def test_obs_dump_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "dump"])

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestTraceFlag:
    def test_fit_writes_trace_file(self, train_csv, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "fit",
                str(train_csv),
                "--executor",
                "serial",
                "--trace",
                str(trace),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "trace: wrote" in err
        assert str(trace) in err
        payload = json.loads(trace.read_text())
        names = {span["name"] for span in payload["spans"]}
        assert "engine.scan" in names
        assert "scan.chunk" in names

    def test_serve_batch_writes_trace_file(
        self, model_file, holey_csv, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "serve-batch",
                str(model_file),
                str(holey_csv),
                "--output",
                str(tmp_path / "out.csv"),
                "--trace",
                str(trace),
            ]
        ) == 0
        names = {
            span["name"] for span in json.loads(trace.read_text())["spans"]
        }
        assert any(name.startswith("serve.") for name in names)

    def test_trace_leaves_global_tracer_clean(self, train_csv, tmp_path):
        main(
            [
                "fit",
                str(train_csv),
                "--executor",
                "serial",
                "--trace",
                str(tmp_path / "trace.json"),
            ]
        )
        tracer = get_tracer()
        assert not tracer.enabled
        assert tracer.spans() == []

    def test_without_flag_no_trace_side_effects(self, train_csv, capsys):
        assert main(["fit", str(train_csv)]) == 0
        assert "trace:" not in capsys.readouterr().err
        assert get_tracer().spans() == []


class TestMetricsPortFlag:
    def test_fit_announces_endpoint_on_stderr(self, train_csv, capsys):
        assert main(
            ["fit", str(train_csv), "--metrics-port", "0"]
        ) == 0
        err = capsys.readouterr().err
        assert "metrics endpoint: http://127.0.0.1:" in err
        # An ephemeral port was bound, not the literal 0.
        port = int(err.split("127.0.0.1:")[1].split("/")[0])
        assert port != 0

    def test_endpoint_stops_after_run(self, train_csv, capsys):
        import urllib.error
        import urllib.request

        assert main(
            ["fit", str(train_csv), "--metrics-port", "0"]
        ) == 0
        err = capsys.readouterr().err
        url = "http://" + err.split("http://")[1].split()[0]
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=1)


class TestObsDump:
    def test_dump_renders_span_trace(self, train_csv, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(
            [
                "fit",
                str(train_csv),
                "--executor",
                "serial",
                "--trace",
                str(trace),
            ]
        )
        capsys.readouterr()
        assert main(["obs", "dump", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "engine.scan" in out
        assert "scan.chunk" in out

    def test_dump_renders_metrics_scrape(self, tmp_path, capsys):
        registry = MetricsRegistry()
        register_scan_metrics(registry, ScanMetrics(n_rows=123))
        path = tmp_path / "metrics.json"
        path.write_text(to_json(registry))
        assert main(["obs", "dump", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_scan_n_rows" in out
        assert "123" in out

    def test_dump_missing_file_is_error(self, tmp_path, capsys):
        assert main(["obs", "dump", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dump_invalid_json_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        assert main(["obs", "dump", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dump_unrecognized_payload_is_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}))
        assert main(["obs", "dump", str(path)]) == 2
        assert "neither a span trace" in capsys.readouterr().err
