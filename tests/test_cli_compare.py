"""Tests for the `compare` CLI subcommand."""

import numpy as np

from repro.cli import main
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema


def save_model(path, loadings, rng, schema):
    factor = rng.normal(5.0, 2.0, size=300)
    matrix = np.outer(factor, loadings) + rng.normal(0, 0.05, (300, len(loadings)))
    RatioRuleModel(cutoff=1).fit(matrix, schema).save(path)


class TestCompareCommand:
    def test_stable_models_exit_zero(self, tmp_path, rng, capsys):
        schema = TableSchema.from_names(["a", "b", "c"])
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_model(path_a, [1.0, 2.0, 3.0], rng, schema)
        save_model(path_b, [1.0, 2.0, 3.0], rng, schema)
        assert main(["compare", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "stable" in out
        assert "principal angles" in out

    def test_drifted_models_exit_one(self, tmp_path, rng, capsys):
        schema = TableSchema.from_names(["a", "b", "c"])
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_model(path_a, [1.0, 2.0, 3.0], rng, schema)
        save_model(path_b, [3.0, 0.2, 1.0], rng, schema)
        assert main(["compare", str(path_a), str(path_b)]) == 1
        assert "DRIFTED" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path, rng, capsys):
        schema = TableSchema.from_names(["a", "b", "c"])
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_model(path_a, [1.0, 2.0, 3.0], rng, schema)
        save_model(path_b, [3.0, 0.2, 1.0], rng, schema)
        # An absurdly loose threshold declares anything stable.
        assert main(["compare", str(path_a), str(path_b),
                     "--angle-threshold", "89.9"]) == 0

    def test_schema_mismatch_exit_two(self, tmp_path, rng, capsys):
        path_a = tmp_path / "a.npz"
        path_b = tmp_path / "b.npz"
        save_model(path_a, [1.0, 2.0], rng, TableSchema.from_names(["a", "b"]))
        save_model(path_b, [1.0, 2.0], rng, TableSchema.from_names(["x", "y"]))
        assert main(["compare", str(path_a), str(path_b)]) == 2
        assert "error" in capsys.readouterr().err
