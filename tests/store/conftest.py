"""Shared fixtures for the durable model-store suite.

``make_model`` builds small fitted models deterministically from a
seed: the same seed always yields byte-identical learned arrays (the
fit is a deterministic pipeline), which is what lets crash tests in
*other processes* rebuild the exact model the parent expects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import RatioRuleModel


def make_model(
    seed: int = 0, n_cols: int = 3, n_rows: int = 24
) -> RatioRuleModel:
    """A small fitted model, deterministic per (seed, shape)."""
    loadings = 1.0 + (np.arange(n_cols) + seed % 7) * 0.5
    rows = np.arange(1.0, n_rows + 1.0) + seed * 3.0
    matrix = np.outer(rows, loadings)
    matrix[:, 0] += (seed % 5) * 0.25  # break exact collinearity a bit
    return RatioRuleModel(cutoff=1).fit(matrix)


@pytest.fixture
def model() -> RatioRuleModel:
    return make_model(0)


@pytest.fixture
def store(tmp_path):
    from repro.store import ModelStore

    return ModelStore(tmp_path / "store")
