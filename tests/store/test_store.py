"""Unit suite for :mod:`repro.store`: format, store, watcher, registry.

The crash-consistency proofs (process kills mid-publish) live in
``test_crash_consistency.py``; this module covers the same machinery
in-process -- publish/load round trips, namespace hygiene, the warm
cache, locking, retention, recovery of hand-damaged files -- plus the
:class:`~repro.store.StoreWatcher` replication hook and the
:class:`~repro.serve.ModelRegistry` mount.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.store import (
    DEFAULT_NAMESPACE,
    ModelStore,
    SnapshotError,
    StoreError,
    StoreWatcher,
    decode_model,
    encode_model,
    encode_snapshot,
    load_snapshot,
    read_header,
    verify_snapshot,
)
from repro.store.snapshot import MAGIC, _LENGTH_STRUCT

from tests.store.conftest import make_model

pytestmark = pytest.mark.store


def dead_pid() -> int:
    """A real pid that is provably no longer alive."""
    process = subprocess.Popen([sys.executable, "-c", "pass"])
    process.wait()
    return process.pid


# -- snapshot format -------------------------------------------------------


class TestSnapshotFormat:
    def test_model_round_trip_is_bit_identical(self, model):
        clone = decode_model(encode_model(model))
        assert clone.fingerprint() == model.fingerprint()
        np.testing.assert_array_equal(
            clone.rules_.matrix, model.rules_.matrix
        )
        np.testing.assert_array_equal(clone.means_, model.means_)
        np.testing.assert_array_equal(
            clone.eigenvalues_, model.eigenvalues_
        )
        assert clone.n_rows_ == model.n_rows_
        assert clone.total_variance_ == model.total_variance_
        assert clone.schema_.names == model.schema_.names

    def test_unfitted_model_is_rejected(self):
        from repro.core.model import RatioRuleModel

        with pytest.raises(ValueError, match="fitted"):
            encode_model(RatioRuleModel())

    def test_snapshot_header_survives(self, model, tmp_path):
        data = encode_snapshot(
            model, version=7, created_at=123.5, meta={"who": "test"}
        )
        path = tmp_path / "v00000007.rrs"
        path.write_bytes(data)
        header = read_header(path)
        assert header.version == 7
        assert header.created_at == 123.5
        assert header.meta == {"who": "test"}
        assert header.fingerprint == model.fingerprint()
        assert verify_snapshot(path) == header
        loaded_header, loaded = load_snapshot(path)
        assert loaded_header == header
        assert loaded.fingerprint() == model.fingerprint()

    def test_version_zero_is_rejected(self, model):
        with pytest.raises(ValueError, match="version"):
            encode_snapshot(model, version=0, created_at=0.0)

    def test_decode_garbage_payload(self):
        with pytest.raises(SnapshotError, match="undecodable"):
            decode_model(b"this is not an npz archive")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="unreadable"):
            read_header(tmp_path / "absent.rrs")
        with pytest.raises(SnapshotError, match="unreadable"):
            verify_snapshot(tmp_path / "absent.rrs")

    @pytest.mark.parametrize(
        "mangle, message",
        [
            (lambda d: b"NOTSNAP!" + d[8:], "magic"),
            (lambda d: d[:4], "magic"),
            (lambda d: d[:10], "truncated before header length"),
            (
                lambda d: d[:8] + _LENGTH_STRUCT.pack(2**40) + d[16:],
                "implausible header length",
            ),
            (lambda d: d[:40], "truncated inside header"),
            (lambda d: d[:-3], "payload is"),
            (lambda d: d + b"xx", "payload is"),
            (
                lambda d: d[:-3] + bytes([d[-3] ^ 0xFF]) + d[-2:],
                "sha256 mismatch",
            ),
        ],
    )
    def test_damage_taxonomy(self, model, tmp_path, mangle, message):
        data = encode_snapshot(model, version=1, created_at=0.0)
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(mangle(data))
        with pytest.raises(SnapshotError, match=message):
            verify_snapshot(path)

    def _reframe(self, data: bytes, edit) -> bytes:
        """Re-encode ``data`` with its parsed header dict edited."""
        (header_len,) = _LENGTH_STRUCT.unpack(data[8:16])
        header = json.loads(data[16:16 + header_len])
        payload = data[16 + header_len:]
        edit(header)
        raw = json.dumps(header, sort_keys=True).encode()
        return MAGIC + _LENGTH_STRUCT.pack(len(raw)) + raw + payload

    def test_unreadable_header_json_is_rejected(self, model, tmp_path):
        data = encode_snapshot(model, version=1, created_at=0.0)
        (header_len,) = _LENGTH_STRUCT.unpack(data[8:16])
        garbage = b"\xff" * header_len  # right length, not JSON
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(data[:16] + garbage + data[16 + header_len:])
        with pytest.raises(SnapshotError, match="unreadable header"):
            verify_snapshot(path)

    def test_unknown_format_is_rejected(self, model, tmp_path):
        data = encode_snapshot(model, version=1, created_at=0.0)
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(
            self._reframe(data, lambda h: h.update(format=99))
        )
        with pytest.raises(SnapshotError, match="unknown snapshot format"):
            verify_snapshot(path)

    def test_missing_header_field_is_rejected(self, model, tmp_path):
        data = encode_snapshot(model, version=1, created_at=0.0)
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(
            self._reframe(data, lambda h: h.pop("fingerprint"))
        )
        with pytest.raises(SnapshotError, match="missing or mistyped"):
            verify_snapshot(path)

    def test_nonsensical_header_values_are_rejected(self, model, tmp_path):
        data = encode_snapshot(model, version=1, created_at=0.0)
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(
            self._reframe(data, lambda h: h.update(version=-4))
        )
        with pytest.raises(SnapshotError, match="nonsensical"):
            verify_snapshot(path)

    def test_wrong_fingerprint_fails_hydration_only(self, model, tmp_path):
        # Structurally valid file whose header lies about the model it
        # holds: verify_snapshot passes, load_snapshot must not.
        data = encode_snapshot(model, version=1, created_at=0.0)
        path = tmp_path / "v00000001.rrs"
        path.write_bytes(
            self._reframe(
                data, lambda h: h.update(fingerprint="0" * 16)
            )
        )
        verify_snapshot(path)
        with pytest.raises(SnapshotError, match="fingerprint"):
            load_snapshot(path)


# -- the store -------------------------------------------------------------


class TestPublishAndLoad:
    def test_versions_are_assigned_sequentially(self, store, model):
        first = store.publish(model)
        second = store.publish(make_model(1))
        assert (first.version, second.version) == (1, 2)
        assert first.namespace == DEFAULT_NAMESPACE
        assert first.path.name == "v00000001.rrs"
        assert store.versions(DEFAULT_NAMESPACE) == [1, 2]
        assert store.latest_version(DEFAULT_NAMESPACE) == 2

    def test_round_trip_is_bit_identical(self, store, model):
        stored = store.publish(model, meta={"origin": "unit"})
        store._cache.clear()  # force the disk path
        loaded, clone = store.load()
        assert loaded == stored
        assert loaded.meta == {"origin": "unit"}
        assert clone.fingerprint() == model.fingerprint()
        np.testing.assert_array_equal(
            clone.rules_.matrix, model.rules_.matrix
        )

    def test_unfitted_model_is_rejected(self, store):
        from repro.core.model import RatioRuleModel

        with pytest.raises(ValueError, match="fitted"):
            store.publish(RatioRuleModel())

    def test_namespaces_are_isolated(self, store):
        store.publish(make_model(0), namespace="acme/sales")
        store.publish(make_model(1), namespace="acme/ops")
        store.publish(make_model(2), namespace="acme/ops")
        assert store.namespaces() == ["acme/ops", "acme/sales"]
        assert store.latest_version("acme/sales") == 1
        assert store.latest_version("acme/ops") == 2
        assert store.latest_version("acme/empty") == 0

    def test_load_empty_namespace_raises(self, store):
        with pytest.raises(StoreError, match="no published versions"):
            store.load("nothing-here")

    def test_load_specific_version(self, store):
        models = [make_model(seed) for seed in range(3)]
        for m in models:
            store.publish(m)
        for version, m in enumerate(models, start=1):
            _, clone = store.load(DEFAULT_NAMESPACE, version)
            assert clone.fingerprint() == m.fingerprint()

    @pytest.mark.parametrize(
        "namespace",
        ["", "..", "a/../b", "a//b", ".hidden", "quarantine", "a/quarantine"],
    )
    def test_bad_namespaces_are_rejected(self, store, model, namespace):
        with pytest.raises(StoreError):
            store.publish(model, namespace=namespace)

    def test_non_string_namespace_is_rejected(self, store):
        with pytest.raises(StoreError):
            store.latest_version(None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep_last": 0},
            {"max_bytes": 0},
            {"cache_entries": -1},
            {"lock_timeout": 0.0},
        ],
    )
    def test_bad_configuration_is_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            ModelStore(tmp_path / "s", **kwargs)

    def test_repr(self, store, model):
        store.publish(model)
        assert "namespaces=1" in repr(store)


class TestWarmCache:
    def test_second_load_hits_the_cache(self, tmp_path, model):
        store = ModelStore(tmp_path)
        store.publish(model)  # publish seeds the cache
        store.load()
        assert store.metrics.n_cache_hits == 1
        assert store.metrics.n_loads == 0  # never touched the disk

    def test_lru_eviction(self, tmp_path):
        store = ModelStore(tmp_path, cache_entries=1)
        store.publish(make_model(0))
        store.publish(make_model(1))  # evicts version 1
        assert store.metrics.n_cache_evictions == 1
        store.load(DEFAULT_NAMESPACE, 1)  # miss -> disk
        assert store.metrics.n_cache_misses == 1
        assert store.metrics.n_loads == 1

    def test_cache_disabled(self, tmp_path, model):
        store = ModelStore(tmp_path, cache_entries=0)
        store.publish(model)
        store.load()
        store.load()
        assert store.metrics.n_cache_hits == 0
        assert store.metrics.n_loads == 2


class TestManifest:
    def test_incremental_equals_rebuilt(self, store):
        for seed in range(4):
            store.publish(make_model(seed), namespace="t/a")
        assert store.manifest("t/a") == store.build_manifest("t/a")

    def test_unreadable_manifest_falls_back_to_rebuild(self, store, model):
        store.publish(model)
        manifest_path = store._dir(DEFAULT_NAMESPACE) / "MANIFEST.json"
        manifest_path.write_text("{ not json")
        assert store.manifest(DEFAULT_NAMESPACE) == store.build_manifest(
            DEFAULT_NAMESPACE
        )
        # The cheap latest_version path cannot trust it either; the
        # recover fallback still answers correctly and repairs it.
        assert store.latest_version(DEFAULT_NAMESPACE) == 1
        assert json.loads(manifest_path.read_text())["format"] == 1

    def test_wrong_format_manifest_falls_back_to_rebuild(self, store, model):
        store.publish(model)
        manifest_path = store._dir(DEFAULT_NAMESPACE) / "MANIFEST.json"
        # Valid JSON, wrong shape: future format and missing versions.
        manifest_path.write_text(json.dumps({"format": 2}))
        assert store.manifest(DEFAULT_NAMESPACE) == store.build_manifest(
            DEFAULT_NAMESPACE
        )
        assert store.versions(DEFAULT_NAMESPACE) == [1]

    def test_rebuild_skips_damaged_and_misnamed_snapshots(self, store):
        store.publish(make_model(0))
        second = store.publish(make_model(1))
        third = store.publish(make_model(2))
        second.path.write_bytes(b"torn to shreds")
        # A file whose *name* claims version 3 but whose header says 2
        # is not trustworthy either.
        third.path.write_bytes(
            encode_snapshot(make_model(2), version=2, created_at=0.0)
        )
        rebuilt = store.build_manifest(DEFAULT_NAMESPACE)
        assert [e["version"] for e in rebuilt["versions"]] == [1]
        # build_manifest is a read-side tool: it must not quarantine.
        assert second.path.exists() and third.path.exists()

    def test_missing_manifest_is_rebuilt_on_publish(self, store):
        store.publish(make_model(0))
        store.publish(make_model(1))
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        (ns_dir / "MANIFEST.json").unlink()
        store.publish(make_model(2))
        assert store.metrics.n_manifest_rebuilds == 1
        assert store.versions(DEFAULT_NAMESPACE) == [1, 2, 3]
        assert store.manifest(DEFAULT_NAMESPACE) == store.build_manifest(
            DEFAULT_NAMESPACE
        )


class TestLocking:
    def test_contended_lock_times_out(self, tmp_path, model):
        store = ModelStore(tmp_path, lock_timeout=0.2)
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        ns_dir.mkdir(parents=True)
        lock = ns_dir / ".publish.lock"
        lock.write_text(
            json.dumps({"pid": os.getpid(), "acquired_at": time.time()})
        )
        with pytest.raises(StoreError, match="publish lock busy"):
            store.publish(model)
        lock.unlink()
        assert store.publish(model).version == 1

    def test_dead_owner_lock_is_broken(self, tmp_path, model):
        store = ModelStore(tmp_path, lock_timeout=5.0)
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        ns_dir.mkdir(parents=True)
        (ns_dir / ".publish.lock").write_text(
            json.dumps({"pid": dead_pid(), "acquired_at": 0.0})
        )
        assert store.publish(model).version == 1
        assert store.metrics.n_lock_breaks == 1

    def test_unreadable_lock_ages_out_by_mtime(self, tmp_path, model):
        store = ModelStore(
            tmp_path, lock_timeout=5.0, stale_lock_after=0.05
        )
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        ns_dir.mkdir(parents=True)
        lock = ns_dir / ".publish.lock"
        lock.write_text("garbage, no pid here")
        old = time.time() - 60.0
        os.utime(lock, (old, old))
        assert store.publish(model).version == 1
        assert store.metrics.n_lock_breaks == 1

    def test_fresh_unreadable_lock_is_respected(self, tmp_path, model):
        store = ModelStore(
            tmp_path, lock_timeout=0.2, stale_lock_after=60.0
        )
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        ns_dir.mkdir(parents=True)
        (ns_dir / ".publish.lock").write_text("garbage")
        with pytest.raises(StoreError, match="publish lock busy"):
            store.publish(model)


class TestRecovery:
    def test_missing_namespace_recovers_to_none(self, store):
        assert store.recover("never-published") is None

    def test_corrupt_final_is_quarantined_not_deleted(self, store):
        store.publish(make_model(0))
        stored = store.publish(make_model(1))
        damaged = bytearray(stored.path.read_bytes())
        damaged[-1] ^= 0xFF
        stored.path.write_bytes(bytes(damaged))
        store._cache.clear()

        recovered = store.recover(DEFAULT_NAMESPACE)
        assert recovered.version == 1
        quarantine = store._dir(DEFAULT_NAMESPACE) / "quarantine"
        moved = list(quarantine.iterdir())
        assert [p.name for p in moved] == ["v00000002.rrs.damaged"]
        # Never silently deleted: the damaged bytes are preserved.
        assert moved[0].read_bytes() == bytes(damaged)
        assert store.metrics.n_quarantined == 1

    def test_load_of_damaged_latest_serves_previous(self, store):
        first = store.publish(make_model(0))
        second = store.publish(make_model(1))
        second.path.write_bytes(b"RRSNAP1\n torn")
        store._cache.clear()
        loaded, clone = store.load()
        assert loaded.version == 1
        assert clone.fingerprint() == first.fingerprint

    def test_load_of_damaged_only_version_raises(self, store, model):
        stored = store.publish(model)
        stored.path.write_bytes(b"not a snapshot at all")
        store._cache.clear()
        with pytest.raises(SnapshotError):
            store.load()
        # The damage was quarantined in passing; the namespace is empty.
        assert store.latest_version(DEFAULT_NAMESPACE) == 0

    def test_misnamed_snapshot_is_quarantined(self, store):
        stored = store.publish(make_model(0))
        imposter = stored.path.with_name("v00000009.rrs")
        imposter.write_bytes(stored.path.read_bytes())  # claims version 1
        recovered = store.recover(DEFAULT_NAMESPACE)
        assert recovered.version == 1
        quarantine = store._dir(DEFAULT_NAMESPACE) / "quarantine"
        assert (quarantine / "v00000009.rrs.misnamed").exists()

    def test_dead_publishers_temp_is_quarantined(self, store, model):
        store.publish(model)
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        debris = ns_dir / f"tmp-{dead_pid()}-abcd1234.rrs"
        debris.write_bytes(b"half a snapshot")
        store.recover(DEFAULT_NAMESPACE)
        assert not debris.exists()
        assert (
            ns_dir / "quarantine" / f"{debris.name}.abandoned"
        ).exists()

    def test_live_publishers_temp_is_left_alone(self, store, model):
        store.publish(model)
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        in_flight = ns_dir / f"tmp-{os.getpid()}-abcd1234.rrs"
        in_flight.write_bytes(b"still being written")
        store.recover(DEFAULT_NAMESPACE)
        assert in_flight.exists()

    def test_quarantine_name_collisions_get_suffixes(self, store):
        ns_dir = store._dir(DEFAULT_NAMESPACE)
        ns_dir.mkdir(parents=True)
        for _ in range(3):
            (ns_dir / "v00000001.rrs").write_bytes(b"junk")
            store.recover(DEFAULT_NAMESPACE)
        names = sorted(
            p.name for p in (ns_dir / "quarantine").iterdir()
        )
        assert names == [
            "v00000001.rrs.damaged",
            "v00000001.rrs.damaged.1",
            "v00000001.rrs.damaged.2",
        ]

    def test_publish_never_overwrites_a_damaged_version(self, store):
        stored = store.publish(make_model(0))
        stored.path.write_bytes(b"damaged in place")
        next_stored = store.publish(make_model(1))
        # The damaged v1 file still holds its (damaged) bytes; the new
        # publish took the next number instead of clobbering evidence.
        assert next_stored.version == 2
        assert stored.path.read_bytes() == b"damaged in place"

    def test_recover_all_cold_start(self, tmp_path):
        writer = ModelStore(tmp_path)
        published = {
            "acme/sales": writer.publish(
                make_model(0), namespace="acme/sales"
            ),
            "globex": writer.publish(make_model(1), namespace="globex"),
        }
        writer.publish(make_model(2), namespace="globex")
        published["globex"] = writer.publish(
            make_model(3), namespace="globex"
        )

        fresh = ModelStore(tmp_path)  # a restarted process
        recovered = fresh.recover_all()
        assert set(recovered) == {"acme/sales", "globex"}
        for namespace, stored in published.items():
            assert recovered[namespace].version == stored.version
            assert recovered[namespace].fingerprint == stored.fingerprint


class TestRetention:
    def test_keep_last(self, tmp_path):
        store = ModelStore(tmp_path, keep_last=2)
        for seed in range(5):
            store.publish(make_model(seed))
        assert store.versions(DEFAULT_NAMESPACE) == [4, 5]
        assert store._listed_versions(store._dir(DEFAULT_NAMESPACE)) == [
            4,
            5,
        ]
        assert store.metrics.n_gc_removed == 3
        assert store.metrics.gc_reclaimed_bytes > 0
        # GC'd versions left the warm cache too.
        with pytest.raises(SnapshotError):
            store.load(DEFAULT_NAMESPACE, 2)

    def test_max_bytes_keeps_the_current_version(self, tmp_path):
        store = ModelStore(tmp_path, max_bytes=1)  # absurdly tight
        store.publish(make_model(0))
        stored = store.publish(make_model(1))
        # Both old versions are over budget; the newest must survive.
        assert store.versions(DEFAULT_NAMESPACE) == [stored.version]
        assert stored.path.exists()

    def test_explicit_gc(self, tmp_path):
        store = ModelStore(tmp_path)
        for seed in range(4):
            store.publish(make_model(seed))
        store.keep_last = 1
        assert store.gc(DEFAULT_NAMESPACE) == [1, 2, 3]
        assert store.gc(DEFAULT_NAMESPACE) == []
        assert store.gc("no-such-namespace") == []
        assert store.manifest(DEFAULT_NAMESPACE) == store.build_manifest(
            DEFAULT_NAMESPACE
        )


# -- the watcher -----------------------------------------------------------


class TestStoreWatcher:
    def test_poll_now_adopts_remote_publishes(self, tmp_path):
        store_a = ModelStore(tmp_path)
        store_b = ModelStore(tmp_path)
        writer = ModelRegistry(make_model(0), store=store_a)
        reader = ModelRegistry(store=store_b)
        assert reader.latest_version == 1

        watcher = StoreWatcher(reader, interval=30.0)
        writer.publish(make_model(1), allow_schema_change=True)
        assert watcher.poll_now() == 1
        assert reader.latest_version == 2
        assert watcher.poll_now() == 0  # nothing new

    def test_callable_source_sees_late_registries(self, tmp_path):
        store = ModelStore(tmp_path)
        registries = []
        watcher = StoreWatcher(lambda: registries, interval=30.0)
        assert watcher.poll_now() == 0
        ModelRegistry(make_model(0), store=store)
        registries.append(ModelRegistry(store=ModelStore(tmp_path)))
        assert registries[0].latest_version == 1

    def test_background_thread_lifecycle(self, tmp_path):
        store = ModelStore(tmp_path)
        reader = ModelRegistry(store=store)
        with StoreWatcher(reader, interval=0.02) as watcher:
            assert watcher.running
            ModelRegistry(make_model(3), store=ModelStore(tmp_path))
            deadline = time.time() + 5.0
            while reader.latest_version == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert reader.latest_version == 1
        assert not watcher.running

    def test_one_broken_registry_does_not_stop_the_poll(self, tmp_path):
        class Exploding:
            def sync(self):
                raise RuntimeError("boom")

        store = ModelStore(tmp_path)
        healthy = ModelRegistry(store=store)
        watcher = StoreWatcher([Exploding(), healthy], interval=30.0)
        ModelRegistry(make_model(0), store=ModelStore(tmp_path))
        assert watcher.poll_now() == 1
        assert healthy.latest_version == 1

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            StoreWatcher([], interval=0.0)

    def test_double_start_is_refused(self, tmp_path):
        watcher = StoreWatcher([], interval=30.0)
        watcher.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                watcher.start()
        finally:
            watcher.stop()
        # ...but a stopped watcher can be started again.
        watcher.start()
        watcher.stop()


# -- the registry mount ----------------------------------------------------


class TestRegistryIntegration:
    def test_restart_recovers_without_refit(self, tmp_path):
        model = make_model(0)
        first = ModelRegistry(model, store=ModelStore(tmp_path))
        assert first.current().version == 1

        # A brand-new process: fresh store handle, fresh registry, no
        # model argument -- state comes entirely from disk.
        revived = ModelRegistry(store=ModelStore(tmp_path))
        snapshot = revived.current()
        assert snapshot.version == 1
        assert snapshot.fingerprint == model.fingerprint()
        np.testing.assert_array_equal(
            snapshot.model.rules_.matrix, model.rules_.matrix
        )

    def test_publishes_are_durable_and_versioned_by_the_store(
        self, tmp_path
    ):
        store = ModelStore(tmp_path)
        registry = ModelRegistry(store=store, namespace="acme/sales")
        for seed in range(3):
            registry.publish(make_model(seed), allow_schema_change=True)
        assert registry.current().version == 3
        assert store.versions("acme/sales") == [1, 2, 3]
        assert registry.namespace == "acme/sales"
        assert registry.store is store

    def test_namespace_requires_store(self):
        with pytest.raises(ValueError, match="namespace requires a store"):
            ModelRegistry(namespace="acme")

    def test_sync_is_monotonic(self, tmp_path):
        writer = ModelRegistry(make_model(0), store=ModelStore(tmp_path))
        reader = ModelRegistry(store=ModelStore(tmp_path))
        assert not reader.sync()  # both at version 1 already
        writer.publish(make_model(1), allow_schema_change=True)
        assert reader.sync()
        assert reader.latest_version == 2
        assert not reader.sync()
        # Storeless registries no-op.
        assert not ModelRegistry(make_model(0)).sync()

    def test_sync_survives_a_damaged_newest_version(self, tmp_path):
        writer_store = ModelStore(tmp_path)
        writer = ModelRegistry(make_model(0), store=writer_store)
        reader = ModelRegistry(store=ModelStore(tmp_path))
        stored = writer_store.publish(make_model(1))
        stored.path.write_bytes(b"torn just after the manifest update")
        assert not reader.sync()  # v2 is damaged; stays at v1
        assert reader.latest_version == 1

    def test_schema_guard_names_namespace_versions_and_columns(
        self, tmp_path
    ):
        registry = ModelRegistry(
            make_model(0, n_cols=3),
            store=ModelStore(tmp_path),
            namespace="acme/sales",
        )
        wider = make_model(0, n_cols=4)
        with pytest.raises(ValueError) as excinfo:
            registry.publish(wider)
        message = str(excinfo.value)
        assert "'acme/sales'" in message
        assert "serving version 1" in message
        assert "col0" in message and "col3" in message
        assert "allow_schema_change" in message
        # The escape hatch works and the rejected publish left no
        # durable debris behind.
        assert registry.store.versions("acme/sales") == [1]
        registry.publish(wider, allow_schema_change=True)
        assert registry.current().version == 2
