"""Property-based tests (hypothesis) for the snapshot format and store.

Three invariants, each over randomized model populations:

* **Round-trip**: model -> snapshot bytes -> model reproduces every
  learned array bit-for-bit, for arbitrary shapes, scales, and rule
  counts -- the durable tier can never quietly perturb what it serves.
* **Manifest equivalence**: the manifest maintained incrementally
  across any publish sequence equals the one rebuilt from scratch off
  the verified directory listing.
* **Retention safety**: however tight the keep-last / byte budgets,
  GC never removes any namespace's current version.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import RatioRuleModel
from repro.store import (
    ModelStore,
    decode_model,
    encode_model,
    encode_snapshot,
    load_snapshot,
)

pytestmark = pytest.mark.store

_PROFILE = settings(max_examples=25, deadline=None)


@st.composite
def fitted_models(draw) -> RatioRuleModel:
    """A small fitted model with randomized shape, scale, and cutoff."""
    n_cols = draw(st.integers(min_value=2, max_value=6))
    n_rows = draw(st.integers(min_value=n_cols + 2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    scale = draw(
        st.floats(
            min_value=1e-3,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    cutoff = draw(st.integers(min_value=1, max_value=n_cols))
    generator = np.random.default_rng(seed)
    matrix = scale * generator.normal(
        loc=3.0, scale=1.0, size=(n_rows, n_cols)
    )
    matrix += np.outer(
        generator.normal(size=n_rows), generator.normal(size=n_cols)
    )
    return RatioRuleModel(cutoff=cutoff).fit(matrix)


@_PROFILE
@given(model=fitted_models())
def test_payload_round_trip_is_bit_identical(model):
    clone = decode_model(encode_model(model))
    assert clone.fingerprint() == model.fingerprint()
    np.testing.assert_array_equal(clone.rules_.matrix, model.rules_.matrix)
    np.testing.assert_array_equal(clone.eigenvalues_, model.eigenvalues_)
    np.testing.assert_array_equal(clone.means_, model.means_)
    assert clone.n_rows_ == model.n_rows_
    assert clone.total_variance_ == model.total_variance_
    assert clone.schema_.names == model.schema_.names
    # Idempotence: re-encoding the decoded model yields the same bytes.
    assert encode_model(clone) == encode_model(model)


@_PROFILE
@given(
    model=fitted_models(),
    version=st.integers(min_value=1, max_value=10**6),
    created_at=st.floats(
        min_value=0.0, max_value=4e9, allow_nan=False, allow_infinity=False
    ),
)
def test_snapshot_file_round_trip(tmp_path_factory, model, version, created_at):
    path = tmp_path_factory.mktemp("snap") / "snapshot.rrs"
    path.write_bytes(
        encode_snapshot(model, version=version, created_at=created_at)
    )
    header, clone = load_snapshot(path)
    assert header.version == version
    assert header.created_at == created_at
    assert clone.fingerprint() == model.fingerprint()
    np.testing.assert_array_equal(clone.rules_.matrix, model.rules_.matrix)


@_PROFILE
@given(
    models=st.lists(fitted_models(), min_size=1, max_size=4),
    namespaces=st.lists(
        st.sampled_from(["default", "acme/sales", "globex"]),
        min_size=1,
        max_size=4,
    ),
)
def test_incremental_manifest_equals_rebuild(
    tmp_path_factory, models, namespaces
):
    store = ModelStore(tmp_path_factory.mktemp("store"))
    for i, namespace in enumerate(namespaces):
        store.publish(models[i % len(models)], namespace=namespace)
    for namespace in set(namespaces):
        assert store.manifest(namespace) == store.build_manifest(namespace)


@_PROFILE
@given(
    models=st.lists(fitted_models(), min_size=1, max_size=3),
    n_publishes=st.integers(min_value=1, max_value=6),
    keep_last=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    max_bytes=st.one_of(
        st.none(), st.integers(min_value=1, max_value=50_000)
    ),
)
def test_gc_never_removes_the_current_version(
    tmp_path_factory, models, n_publishes, keep_last, max_bytes
):
    store = ModelStore(
        tmp_path_factory.mktemp("store"),
        keep_last=keep_last,
        max_bytes=max_bytes,
    )
    namespaces = ["default", "acme/sales"]
    current = {}
    for i in range(n_publishes):
        namespace = namespaces[i % 2]
        current[namespace] = store.publish(
            models[i % len(models)], namespace=namespace
        )
    for namespace, stored in current.items():
        # The current version survived every GC pass, on disk and in
        # the manifest, and still hydrates.
        assert stored.path.exists()
        assert store.versions(namespace)[-1] == stored.version
        assert store.latest_version(namespace) == stored.version
        loaded, _ = store.load(namespace)
        assert loaded.version == stored.version
        if keep_last is not None:
            assert len(store.versions(namespace)) <= keep_last
        assert store.manifest(namespace) == store.build_manifest(namespace)
