"""Crash-consistency proofs for the durable model store.

The store's contract is that a publisher killed at *any* point leaves
the namespace serving a complete version -- the new one if the rename
happened, the previous one otherwise -- and that every piece of damage
is quarantined, never silently deleted.  Two attack surfaces:

* **Process kills** (the ``faults``-marked tests): a real child
  process publishes with a :class:`~repro.testing.StoreFaultInjector`
  wired to ``os._exit`` at one of the three protocol stages
  (``snapshot-temp``, ``snapshot-rename``, ``manifest-update``); the
  parent then recovers the directory the corpse left behind.
* **Byte-level damage**: torn, truncated, and corrupted snapshot
  files produced with the :mod:`repro.testing` damage helpers; the
  recovery walk must serve the latest *complete* version
  byte-identically and preserve the damaged bytes in quarantine.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.store import (
    DEFAULT_NAMESPACE,
    ModelStore,
    SnapshotError,
    verify_snapshot,
)
from repro.testing import StoreFaultInjector, corrupted_bytes, truncated_file

from tests.store.conftest import make_model

pytestmark = pytest.mark.store

STAGES = ("snapshot-temp", "snapshot-rename", "manifest-update")


def _crash_publish(root: str, state_dir: str, seed: int, stage: str) -> None:
    """Child-process body: publish one model, die mid-publish."""
    injector = StoreFaultInjector(state_dir, kill={stage: 1})
    store = ModelStore(root, fault_hook=injector.on_publish_stage)
    store.publish(make_model(seed))


def _run_crashing_publish(root, state_dir, seed: int, stage: str) -> None:
    """Spawn a publisher child and assert it died at the injection."""
    context = multiprocessing.get_context("spawn")
    child = context.Process(
        target=_crash_publish,
        args=(str(root), str(state_dir), seed, stage),
    )
    child.start()
    child.join(timeout=60.0)
    assert child.exitcode == 13, f"publisher survived stage {stage!r}"


class TestKilledPublisher:
    """One real process kill per protocol stage, then recovery."""

    @pytest.mark.faults
    @pytest.mark.parametrize("stage", STAGES)
    def test_recovery_after_kill(self, tmp_path, stage):
        root = tmp_path / "store"
        seeded = make_model(0)
        survivor = ModelStore(root).publish(seeded)
        pristine_v1 = survivor.path.read_bytes()

        _run_crashing_publish(root, tmp_path / "faults", 1, stage)

        # The corpse left its publish lock behind; recovery must break
        # it (the owner pid is provably dead) and proceed.
        ns_dir = root / DEFAULT_NAMESPACE
        assert (ns_dir / ".publish.lock").exists()

        fresh = ModelStore(root)  # a restarted serving process
        recovered = fresh.recover(DEFAULT_NAMESPACE)
        assert fresh.metrics.n_lock_breaks == 1
        assert not (ns_dir / ".publish.lock").exists()

        if stage == "manifest-update":
            # The rename happened: version 2 is complete on disk and
            # only the manifest was stale -- the crash must NOT lose
            # the publish.
            assert recovered.version == 2
            _, served = fresh.load()
            expected = make_model(1)
            assert served.fingerprint() == expected.fingerprint()
            np.testing.assert_array_equal(
                served.rules_.matrix, expected.rules_.matrix
            )
        else:
            # Killed before the rename: the namespace still serves
            # version 1, byte-identically, and the abandoned temp file
            # (torn for snapshot-temp, complete for snapshot-rename)
            # was preserved in quarantine.
            assert recovered.version == 1
            assert survivor.path.read_bytes() == pristine_v1
            _, served = fresh.load()
            assert served.fingerprint() == seeded.fingerprint()
            quarantined = list((ns_dir / "quarantine").iterdir())
            assert len(quarantined) == 1
            assert quarantined[0].name.endswith(".rrs.abandoned")
            assert fresh.metrics.n_quarantined == 1

        # Either way the repaired manifest equals a from-scratch
        # rebuild and no temp debris remains in the namespace dir.
        assert fresh.manifest(DEFAULT_NAMESPACE) == fresh.build_manifest(
            DEFAULT_NAMESPACE
        )
        assert not [
            name
            for name in os.listdir(ns_dir)
            if name.startswith("tmp-")
        ]

    @pytest.mark.faults
    @pytest.mark.parametrize("stage", STAGES)
    def test_publishing_resumes_after_the_crash(self, tmp_path, stage):
        root = tmp_path / "store"
        ModelStore(root).publish(make_model(0))
        _run_crashing_publish(root, tmp_path / "faults", 1, stage)

        fresh = ModelStore(root)
        fresh.recover(DEFAULT_NAMESPACE)
        next_stored = fresh.publish(make_model(2))
        # A crash after the rename durably consumed version 2; before
        # the rename it did not.  Either way numbering moves forward
        # and the manifest stays exactly rebuildable.
        survivors = 2 if stage == "manifest-update" else 1
        assert next_stored.version == survivors + 1
        assert fresh.versions(DEFAULT_NAMESPACE) == sorted(
            {1, next_stored.version} | ({2} if survivors == 2 else set())
        )
        assert fresh.manifest(DEFAULT_NAMESPACE) == fresh.build_manifest(
            DEFAULT_NAMESPACE
        )

    @pytest.mark.faults
    def test_injector_counts_attempts_across_processes(self, tmp_path):
        root = tmp_path / "store"
        ModelStore(root).publish(make_model(0))
        injector = StoreFaultInjector(
            tmp_path / "faults", kill={"snapshot-rename": 1}
        )
        _run_crashing_publish(
            root, tmp_path / "faults", 1, "snapshot-rename"
        )
        assert injector.stage_attempts("snapshot-temp") == 1
        assert injector.stage_attempts("snapshot-rename") == 1
        assert injector.stage_attempts("manifest-update") == 0

    def test_unknown_stage_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown publish stage"):
            StoreFaultInjector(tmp_path, kill={"no-such-stage": 1})


class TestByteLevelDamage:
    """Torn / truncated / corrupted finals, via the damage helpers."""

    def _publish_two(self, root):
        store = ModelStore(root)
        first = store.publish(make_model(0))
        second = store.publish(make_model(1))
        return store, first, second

    def _assert_recovers_v1_and_quarantines(
        self, root, first, second, damaged_bytes
    ):
        reader = ModelStore(root)  # fresh instance: cold cache
        loaded, served = reader.load()
        assert loaded.version == first.version
        assert loaded.fingerprint == first.fingerprint
        # Byte-identical service of the surviving version.
        original = make_model(0)
        np.testing.assert_array_equal(
            served.rules_.matrix, original.rules_.matrix
        )
        np.testing.assert_array_equal(served.means_, original.means_)
        # The damaged file was moved aside with its bytes intact --
        # quarantined, never silently deleted.
        quarantine = root / DEFAULT_NAMESPACE / "quarantine"
        moved = [
            p
            for p in quarantine.iterdir()
            if p.name.startswith(second.path.name)
        ]
        assert len(moved) == 1
        assert moved[0].read_bytes() == damaged_bytes
        assert not second.path.exists()

    def test_truncated_snapshot(self, tmp_path):
        root = tmp_path / "store"
        _, first, second = self._publish_two(root)
        with truncated_file(second.path, 16) as path:
            damaged = path.read_bytes()
            with pytest.raises(SnapshotError, match="payload is"):
                verify_snapshot(path)
        second.path.write_bytes(damaged)  # make the truncation durable
        self._assert_recovers_v1_and_quarantines(
            root, first, second, damaged
        )

    def test_corrupted_snapshot(self, tmp_path):
        root = tmp_path / "store"
        _, first, second = self._publish_two(root)
        offset = second.path.stat().st_size - 32  # deep in the payload
        with corrupted_bytes(second.path, offset) as path:
            damaged = path.read_bytes()
            with pytest.raises(SnapshotError, match="sha256"):
                verify_snapshot(path)
        second.path.write_bytes(damaged)
        self._assert_recovers_v1_and_quarantines(
            root, first, second, damaged
        )

    def test_torn_head(self, tmp_path):
        """Damage at the very front: the file is not even a snapshot."""
        root = tmp_path / "store"
        _, first, second = self._publish_two(root)
        with corrupted_bytes(second.path, 0) as path:
            damaged = path.read_bytes()
            with pytest.raises(SnapshotError, match="magic"):
                verify_snapshot(path)
        second.path.write_bytes(damaged)
        self._assert_recovers_v1_and_quarantines(
            root, first, second, damaged
        )


class TestColdStart:
    def test_every_tenant_recovers_without_refit(
        self, tmp_path, monkeypatch
    ):
        tenants = ["acme/sales", "acme/ops", "globex"]
        writer = ModelStore(tmp_path)
        latest = {}
        for i, namespace in enumerate(tenants):
            for seed in (i, i + 10):
                latest[namespace] = writer.publish(
                    make_model(seed), namespace=namespace
                )

        # A refit during recovery would be a contract violation (and a
        # silent performance cliff): make any fit attempt explode.
        from repro.core.model import RatioRuleModel
        from repro.serve import ModelRegistry

        def no_fitting(*args, **kwargs):
            raise AssertionError("cold start must not refit")

        monkeypatch.setattr(RatioRuleModel, "fit", no_fitting)
        monkeypatch.setattr(
            RatioRuleModel, "fit_from_accumulator", no_fitting
        )

        cold = ModelStore(tmp_path)
        recovered = cold.recover_all()
        assert set(recovered) == set(tenants)
        for namespace in tenants:
            registry = ModelRegistry(store=cold, namespace=namespace)
            snapshot = registry.current()
            assert snapshot.version == latest[namespace].version == 2
            assert snapshot.fingerprint == latest[namespace].fingerprint
