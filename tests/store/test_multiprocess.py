"""Multi-process store sharing: N serving processes, one directory.

The replication story end to end, with real process isolation: two
HTTP serving processes mount the same store directory (two
:class:`~repro.serve.ModelRegistry` instances in two different
interpreters), a writer publishes 8 versions into the shared store
while reader threads keep filling rows over HTTP against both servers,
and every response must match the ground truth of the version it
claims -- the over-the-wire extension of the hot-swap stress suite,
with the store watcher as the swap transport.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.core.reconstruction import fill_matrix
from repro.store import ModelStore

from tests.serve.conftest import http_get, http_post
from tests.store.conftest import make_model

pytestmark = [pytest.mark.store, pytest.mark.serve]

TENANT = "acme/sales"
N_VERSIONS = 8
N_SERVERS = 2
PASSES = 3


def _serve_tenant(root, ready_queue, stop_event) -> None:
    """Child-process body: serve the shared store over HTTP until told
    to stop."""
    from repro.serve.http import HttpApiServer

    server = HttpApiServer(
        store=ModelStore(root),
        tenant=TENANT,
        port=0,
        watch_interval=0.02,
        max_batch_rows=8,
        flush_margin=0.05,
    )
    server.start()
    try:
        ready_queue.put(server.port)
        stop_event.wait(timeout=120.0)
    finally:
        server.stop()


def _row_payload(row) -> list:
    return [None if np.isnan(value) else float(value) for value in row]


def test_two_processes_share_one_store_dir(tmp_path):
    root = tmp_path / "store"
    models = {
        version: make_model(version) for version in range(1, N_VERSIONS + 1)
    }
    batch = np.outer(np.arange(1.0, 7.0), [1.0, np.nan, 2.0])
    batch[:, 1] = np.nan  # one hole per row
    expected = {
        version: fill_matrix(batch, model.rules_matrix, model.means_)
        for version, model in models.items()
    }
    fingerprints = {
        version: model.fingerprint() for version, model in models.items()
    }

    writer_store = ModelStore(root)
    writer_store.publish(models[1], namespace=TENANT)

    context = multiprocessing.get_context("spawn")
    ready_queue = context.Queue()
    stop_event = context.Event()
    servers = [
        context.Process(
            target=_serve_tenant, args=(str(root), ready_queue, stop_event)
        )
        for _ in range(N_SERVERS)
    ]
    observed = [[] for _ in range(N_SERVERS)]
    errors = []
    try:
        for process in servers:
            process.start()
        ports = sorted(ready_queue.get(timeout=60.0) for _ in servers)
        urls = [f"http://127.0.0.1:{port}" for port in ports]

        start = threading.Barrier(N_SERVERS + 1)

        def reader(slot):
            try:
                start.wait()
                for _ in range(PASSES):
                    for i in range(batch.shape[0]):
                        status, body, _ = http_post(
                            urls[slot] + "/v1/fill",
                            {
                                "row": _row_payload(batch[i]),
                                "timeout_ms": 2000,
                            },
                        )
                        observed[slot].append((i, status, body))
                    time.sleep(0.05)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            start.wait()
            for version in range(2, N_VERSIONS + 1):
                writer_store.publish(models[version], namespace=TENANT)
                time.sleep(0.04)

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(N_SERVERS)
        ]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # Both serving processes converge on the final version.
        for url in urls:
            deadline = time.time() + 10.0
            version = 0
            while time.time() < deadline:
                status, body, _ = http_get(url + "/v1/models")
                version = body["current"]["version"]
                if status == 200 and version == N_VERSIONS:
                    break
                time.sleep(0.05)
            assert version == N_VERSIONS
    finally:
        stop_event.set()
        for process in servers:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hang cleanup
                process.terminate()

    for slot in range(N_SERVERS):
        assert len(observed[slot]) == PASSES * batch.shape[0]
        previous = 0
        for i, status, body in observed[slot]:
            assert status == 200, body
            version = body["version"]
            # Zero torn reads: the response is attributable to exactly
            # one durably published version, whose ground truth the
            # payload matches bit-for-bit.
            assert version in expected
            assert body["filled"] == [
                float(v) for v in expected[version][i]
            ]
            assert body["fingerprint"] == fingerprints[version]
            # Within one reader, versions never step backwards.
            assert version >= previous, (slot, i, version, previous)
            previous = version

    # Every version the writer published is durable; a cold restart
    # (fresh store instance, fresh process would behave identically)
    # recovers the full history.
    cold = ModelStore(root)
    assert cold.versions(TENANT) == list(range(1, N_VERSIONS + 1))
    recovered = cold.recover_all()
    assert recovered[TENANT].version == N_VERSIONS
