"""Tests for the extended CLI subcommands (outliers, clean, whatif)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import RatioRuleModel
from repro.io.csv_format import load_csv_matrix, save_csv_matrix
from repro.io.schema import TableSchema


@pytest.fixture
def fitted(tmp_path, rng):
    """A fitted model file plus the clean matrix it was trained on."""
    factor = rng.normal(5.0, 2.0, size=200)
    matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (200, 3))
    schema = TableSchema.from_names(["a", "b", "c"])
    model_path = tmp_path / "model.npz"
    RatioRuleModel(cutoff=1).fit(matrix, schema).save(model_path)
    return model_path, matrix, schema


class TestOutliersCommand:
    def test_flags_injected_outlier(self, fitted, tmp_path, capsys):
        model_path, matrix, schema = fitted
        audited = matrix[:50].copy()
        audited[7, 1] = 500.0
        data_path = tmp_path / "audit.csv"
        save_csv_matrix(data_path, audited, schema)
        assert main(["outliers", str(model_path), str(data_path),
                     "--sigmas", "3"]) == 0
        out = capsys.readouterr().out
        assert "Row outliers" in out
        assert "Cell outliers" in out
        assert "row     7" in out

    def test_clean_data_no_flags(self, fitted, tmp_path, capsys):
        model_path, matrix, schema = fitted
        data_path = tmp_path / "clean.csv"
        save_csv_matrix(data_path, matrix[:50], schema)
        assert main(["outliers", str(model_path), str(data_path),
                     "--sigmas", "6"]) == 0
        out = capsys.readouterr().out
        assert "Row outliers" in out and ": 0" in out


class TestCleanCommand:
    def test_impute_only(self, fitted, tmp_path, capsys):
        model_path, matrix, schema = fitted
        data_path = tmp_path / "dirty.csv"
        data_path.write_text("a,b,c\n5.0,,15.0\n4.0,8.0,12.0\n")
        out_path = tmp_path / "cleaned.csv"
        assert main(["clean", str(model_path), str(data_path), str(out_path)]) == 0
        cleaned, _schema = load_csv_matrix(out_path)
        assert not np.isnan(cleaned).any()
        assert cleaned[0, 1] == pytest.approx(10.0, abs=0.5)
        assert "Imputed 1 missing cell" in capsys.readouterr().out

    def test_with_repair(self, fitted, tmp_path, capsys):
        model_path, matrix, schema = fitted
        dirty = matrix[:40].copy()
        dirty[3, 2] = 9999.0
        data_path = tmp_path / "dirty.csv"
        save_csv_matrix(data_path, dirty, schema)
        out_path = tmp_path / "cleaned.csv"
        assert main(["clean", str(model_path), str(data_path), str(out_path),
                     "--repair-sigmas", "4"]) == 0
        out = capsys.readouterr().out
        assert "Repaired" in out
        cleaned, _schema = load_csv_matrix(out_path)
        assert cleaned[3, 2] < 100.0

    def test_schema_mismatch(self, fitted, tmp_path, capsys):
        model_path, _matrix, _schema = fitted
        data_path = tmp_path / "wrong.csv"
        data_path.write_text("x,y\n1,2\n")
        assert main(["clean", str(model_path), str(data_path),
                     str(tmp_path / "out.csv")]) == 2
        assert "column mismatch" in capsys.readouterr().err


class TestWhatifCommand:
    def test_set_value(self, fitted, capsys):
        model_path, _matrix, _schema = fitted
        assert main(["whatif", str(model_path), "--set", "a=10"]) == 0
        out = capsys.readouterr().out
        assert "Scenario result" in out
        assert "(assumed)" in out
        # b tracks a at 2x on this ratio data.
        b_line = next(l for l in out.splitlines() if l.strip().startswith("b"))
        assert "20" in b_line

    def test_scale_value(self, fitted, capsys):
        model_path, _matrix, _schema = fitted
        assert main(["whatif", str(model_path), "--scale", "a=2.0"]) == 0
        assert "Scenario result" in capsys.readouterr().out

    def test_no_constraints_errors(self, fitted, capsys):
        model_path, _matrix, _schema = fitted
        assert main(["whatif", str(model_path)]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_unknown_attribute_errors(self, fitted, capsys):
        model_path, _matrix, _schema = fitted
        assert main(["whatif", str(model_path), "--set", "zz=1"]) == 2

    def test_malformed_assignment(self, fitted):
        model_path, _matrix, _schema = fitted
        with pytest.raises(SystemExit):
            main(["whatif", str(model_path), "--set", "a:10"])
        with pytest.raises(SystemExit):
            main(["whatif", str(model_path), "--set", "a=ten"])
