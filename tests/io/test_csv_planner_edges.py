"""Regression tests for CSV byte-range planning edge cases.

The planner splits ``[data_offset, size)`` into half-open byte ranges
and :class:`CSVChunkReader` assigns each data line to the chunk owning
its first byte.  These tests pin the tricky boundaries: files whose
last line has no trailing newline, header-only shards, zero-byte
files, and plans with far more chunks than rows.
"""

import numpy as np
import pytest

from repro.core.covariance import StreamingCovariance
from repro.core.engine import plan_chunks, scan_chunk, scan_sources
from repro.io.csv_format import save_csv_matrix
from repro.io.matrix_reader import CSVChunkReader, CSVFormatError, csv_layout


@pytest.fixture
def matrix(rng):
    return rng.normal(loc=1.0, scale=4.0, size=(60, 3))


def _reference(matrix):
    accumulator = StreamingCovariance(matrix.shape[1])
    accumulator.update(matrix)
    return accumulator


def _write_csv_without_trailing_newline(path, matrix):
    save_csv_matrix(path, matrix)
    data = path.read_bytes().rstrip(b"\r\n")
    path.write_bytes(data)
    assert not data.endswith(b"\n")
    return path


class TestNoTrailingNewline:
    @pytest.mark.parametrize("target_chunks", [1, 2, 3, 5, 8])
    def test_every_row_scanned_exactly_once(
        self, tmp_path, matrix, target_chunks
    ):
        path = _write_csv_without_trailing_newline(tmp_path / "m.csv", matrix)
        result = scan_sources([path], target_chunks=target_chunks)
        assert result.accumulator.n_rows == 60
        reference = _reference(matrix)
        assert np.allclose(
            result.accumulator.column_means, reference.column_means
        )
        assert np.allclose(
            result.accumulator.covariance(ddof=0), reference.covariance(ddof=0)
        )

    def test_chunks_partition_the_data_bytes(self, tmp_path, matrix):
        path = _write_csv_without_trailing_newline(tmp_path / "m.csv", matrix)
        _, data_offset, size = csv_layout(path)
        chunks, schema = plan_chunks(path, target_chunks=4)
        assert schema.width == 3
        assert chunks[0].start == data_offset
        assert chunks[-1].stop == size
        for left, right in zip(chunks, chunks[1:]):
            assert left.stop == right.start
        row_counts = [scan_chunk(chunk)[0].n_rows for chunk in chunks]
        assert all(count > 0 for count in row_counts)
        assert sum(row_counts) == 60

    def test_chunk_boundary_mid_final_line(self, tmp_path, matrix):
        # A reader whose range starts inside the unterminated final
        # line must yield nothing: that line belongs to its neighbour
        # on the left, which reads past its own stop to finish it.
        path = _write_csv_without_trailing_newline(tmp_path / "m.csv", matrix)
        _, data_offset, size = csv_layout(path)
        body = path.read_bytes()
        last_line_start = body.rfind(b"\n") + 1
        mid_final = last_line_start + 2
        assert data_offset < last_line_start < mid_final < size

        left = CSVChunkReader(path, data_offset, mid_final)
        right = CSVChunkReader(path, mid_final, size)
        left_rows = sum(block.shape[0] for block in left.iter_blocks(16))
        right_rows = sum(block.shape[0] for block in right.iter_blocks(16))
        assert right_rows == 0
        assert left_rows == 60


class TestDegenerateShards:
    def test_header_only_shard_plans_one_empty_chunk(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b,c\n")
        chunks, schema = plan_chunks(path, target_chunks=4)
        assert schema.width == 3
        assert len(chunks) == 1
        assert chunks[0].start == chunks[0].stop
        assert scan_chunk(chunks[0])[0].n_rows == 0

    def test_header_only_without_newline(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b,c")
        chunks, schema = plan_chunks(path, target_chunks=2)
        assert schema.width == 3
        assert sum(scan_chunk(chunk)[0].n_rows for chunk in chunks) == 0

    def test_header_only_shard_merges_as_identity(self, tmp_path, matrix):
        full = tmp_path / "full.csv"
        save_csv_matrix(full, matrix)
        empty = tmp_path / "empty.csv"
        empty.write_text("a,b,c\n")

        alone = scan_sources([full], target_chunks=2)
        mixed = scan_sources([empty, full, empty], target_chunks=6)
        assert mixed.accumulator.n_rows == 60
        assert np.array_equal(
            mixed.accumulator.covariance(ddof=0),
            alone.accumulator.covariance(ddof=0),
        )

    def test_zero_byte_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_bytes(b"")
        with pytest.raises(CSVFormatError, match="empty file"):
            plan_chunks(path, target_chunks=2)
        with pytest.raises(CSVFormatError, match="empty file"):
            scan_sources([path])

    def test_blank_trailing_lines_are_skipped(self, tmp_path, matrix):
        path = tmp_path / "m.csv"
        save_csv_matrix(path, matrix)
        with open(path, "ab") as handle:
            handle.write(b"\n\n")
        result = scan_sources([path], target_chunks=3)
        assert result.accumulator.n_rows == 60


class TestOverChunking:
    def test_more_chunks_than_rows(self, tmp_path, rng):
        small = rng.normal(size=(7, 3))
        path = tmp_path / "small.csv"
        save_csv_matrix(path, small)
        result = scan_sources([path], target_chunks=50)
        assert result.accumulator.n_rows == 7
        reference = _reference(small)
        assert np.allclose(
            result.accumulator.covariance(ddof=0), reference.covariance(ddof=0)
        )

    def test_single_row_no_trailing_newline(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("a,b,c\n1.5,2.5,3.5")
        for target_chunks in (1, 2, 4):
            result = scan_sources([path], target_chunks=target_chunks)
            assert result.accumulator.n_rows == 1
            assert np.array_equal(
                result.accumulator.column_means, np.array([1.5, 2.5, 3.5])
            )
