"""Tests for the row-store CRC32 integrity trailer."""


import numpy as np
import pytest

from repro.io.rowstore import (
    TRAILER_MAGIC,
    RowStore,
    RowStoreError,
)


@pytest.fixture
def stored(tmp_path, rng):
    matrix = rng.standard_normal((20, 4))
    path = tmp_path / "data.rr"
    RowStore.write_matrix(path, matrix)
    return path, matrix


class TestVerify:
    def test_fresh_file_verifies(self, stored):
        path, _matrix = stored
        assert RowStore.verify(path) is True

    def test_trailer_present_on_disk(self, stored):
        path, _matrix = stored
        assert TRAILER_MAGIC in path.read_bytes()[-12:]

    def test_data_corruption_detected(self, stored):
        path, _matrix = stored
        raw = bytearray(path.read_bytes())
        # Flip one byte in the middle of the data section.
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(RowStoreError, match="checksum mismatch"):
            RowStore.verify(path)

    def test_legacy_file_returns_false(self, stored):
        path, _matrix = stored
        raw = path.read_bytes()
        path.write_bytes(raw[:-12])  # strip the trailer -> legacy layout
        assert RowStore.verify(path) is False

    def test_wrong_length_raises(self, stored):
        path, _matrix = stored
        raw = path.read_bytes()
        path.write_bytes(raw + b"extra")
        with pytest.raises(RowStoreError, match="inconsistent"):
            RowStore.verify(path)

    def test_corrupt_trailer_magic(self, stored):
        path, _matrix = stored
        raw = bytearray(path.read_bytes())
        raw[-12:-4] = b"BADMAGIC"
        path.write_bytes(bytes(raw))
        with pytest.raises(RowStoreError, match="trailer magic"):
            RowStore.verify(path)


class TestAppendWithTrailer:
    def test_append_keeps_checksum_valid(self, stored, rng):
        path, matrix = stored
        extra = rng.standard_normal((7, 4))
        with RowStore.open_append(path) as store:
            store.append(extra)
        assert RowStore.verify(path) is True
        restored, _schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, np.vstack([matrix, extra]))

    def test_append_to_legacy_file_adds_trailer(self, stored, rng):
        path, matrix = stored
        raw = path.read_bytes()
        path.write_bytes(raw[:-12])  # legacy: no trailer
        extra = rng.standard_normal((3, 4))
        with RowStore.open_append(path) as store:
            store.append(extra)
        assert RowStore.verify(path) is True
        restored, _schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, np.vstack([matrix, extra]))

    def test_append_refuses_corrupt_trailer(self, stored):
        path, _matrix = stored
        raw = bytearray(path.read_bytes())
        raw[-12:-4] = b"BADMAGIC"
        path.write_bytes(bytes(raw))
        with pytest.raises(RowStoreError, match="corrupt trailer"):
            RowStore.open_append(path)

    def test_reads_ignore_trailer(self, stored):
        path, matrix = stored
        restored, _schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, matrix)
