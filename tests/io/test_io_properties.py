"""Property-based tests for the I/O substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.io.csv_format import load_csv_matrix, save_csv_matrix
from repro.io.rowstore import RowStore
from repro.io.schema import TableSchema

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_subnormal=False
)


def matrices():
    return st.tuples(
        st.integers(1, 25), st.integers(1, 8)
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(matrix=matrices())
def test_rowstore_round_trip_exact(tmp_path, matrix):
    """Binary storage is bit-exact for any finite float matrix."""
    path = tmp_path / "prop.rr"
    RowStore.write_matrix(path, matrix)
    restored, _schema = RowStore.read_all(path)
    assert np.array_equal(restored, matrix)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(matrix=matrices(), block=st.integers(1, 9))
def test_rowstore_block_iteration_complete(tmp_path, matrix, block):
    """Every block size yields the full matrix, in order."""
    path = tmp_path / "prop.rr"
    RowStore.write_matrix(path, matrix)
    store = RowStore.open(path)
    blocks = list(store.iter_blocks(block_rows=block))
    store.close()
    assert np.array_equal(np.vstack(blocks), matrix)
    assert all(b.shape[0] <= block for b in blocks)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(matrix=matrices())
def test_csv_round_trip_exact(tmp_path, matrix):
    """repr-based CSV serialization round-trips float64 exactly."""
    path = tmp_path / "prop.csv"
    save_csv_matrix(path, matrix)
    restored, _schema = load_csv_matrix(path)
    assert np.array_equal(restored, matrix)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    matrix=matrices(),
    split=st.integers(0, 24),
)
def test_rowstore_append_equals_single_write(tmp_path, matrix, split):
    """write(all) == write(first part) + open_append(second part)."""
    split = min(split, matrix.shape[0])
    path = tmp_path / "appended.rr"
    RowStore.write_matrix(path, matrix[:split] if split else matrix[:0])
    with RowStore.open_append(path) as store:
        if matrix[split:].size:
            store.append(matrix[split:])
    restored, _schema = RowStore.read_all(path)
    assert np.array_equal(restored, matrix)


class TestOpenAppend:
    def test_append_preserves_schema(self, tmp_path, rng):
        schema = TableSchema.from_names(["a", "b"])
        first = rng.standard_normal((5, 2))
        second = rng.standard_normal((3, 2))
        path = tmp_path / "grow.rr"
        RowStore.write_matrix(path, first, schema)
        with RowStore.open_append(path) as store:
            assert store.schema.names == ["a", "b"]
            store.append(second)
            assert store.n_rows == 8
        restored, restored_schema = RowStore.read_all(path)
        assert restored.shape == (8, 2)
        assert restored_schema.names == ["a", "b"]

    def test_append_to_truncated_file_refused(self, tmp_path, rng):
        from repro.io.rowstore import RowStoreError

        path = tmp_path / "trunc.rr"
        RowStore.write_matrix(path, rng.standard_normal((4, 2)))
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(RowStoreError, match="truncated or corrupt"):
            RowStore.open_append(path)
