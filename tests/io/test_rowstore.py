"""Tests for the binary row-store format."""

import struct

import numpy as np
import pytest

from repro.io.rowstore import MAGIC, RowStore, RowStoreError, RowStoreHeader
from repro.io.schema import TableSchema


@pytest.fixture
def schema():
    return TableSchema.from_names(["a", "b", "c"])


@pytest.fixture
def matrix(rng):
    return rng.standard_normal((37, 3))


class TestRoundTrip:
    def test_write_read(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        restored, restored_schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, matrix)
        assert restored_schema == schema

    def test_streaming_append(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        with RowStore.create(path, schema) as store:
            for row in matrix:
                store.append(row)
            assert store.n_rows == matrix.shape[0]
        restored, _schema = RowStore.read_all(path)
        np.testing.assert_array_equal(restored, matrix)

    def test_block_iteration(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        store = RowStore.open(path)
        blocks = list(store.iter_blocks(block_rows=10))
        store.close()
        assert [b.shape[0] for b in blocks] == [10, 10, 10, 7]
        np.testing.assert_array_equal(np.vstack(blocks), matrix)

    def test_empty_store(self, tmp_path, schema):
        path = tmp_path / "empty.rr"
        with RowStore.create(path, schema):
            pass
        restored, _schema = RowStore.read_all(path)
        assert restored.shape == (0, 3)

    def test_default_schema(self, tmp_path, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix)
        _restored, schema = RowStore.read_all(path)
        assert schema.names == ["col0", "col1", "col2"]


class TestValidation:
    def test_append_wrong_width(self, tmp_path, schema):
        path = tmp_path / "data.rr"
        with RowStore.create(path, schema) as store:
            with pytest.raises(RowStoreError, match="width"):
                store.append(np.ones((2, 4)))

    def test_append_to_reader(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        store = RowStore.open(path)
        with pytest.raises(RowStoreError, match="read-only"):
            store.append(np.ones(3))
        store.close()

    def test_iter_on_writer(self, tmp_path, schema):
        path = tmp_path / "data.rr"
        with RowStore.create(path, schema) as store:
            with pytest.raises(RowStoreError, match="write-only"):
                list(store.iter_blocks())

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.rr"
        path.write_bytes(b"NOTASTORE" + b"\x00" * 100)
        with pytest.raises(RowStoreError, match="magic"):
            RowStore.open(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rr"
        path.write_bytes(MAGIC)
        with pytest.raises(RowStoreError, match="too short"):
            RowStore.open(path)

    def test_truncated_data(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        raw = path.read_bytes()
        path.write_bytes(raw[:-16])  # chop off two cells
        store = RowStore.open(path)
        with pytest.raises(RowStoreError, match="truncated"):
            store.read_matrix()
        store.close()

    def test_corrupt_schema_json(self, tmp_path, schema):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, np.ones((2, 3)), schema)
        raw = bytearray(path.read_bytes())
        # Overwrite the first schema byte with garbage.
        header_size = struct.calcsize("<8sQQQ")
        raw[header_size] = ord("X")
        path.write_bytes(bytes(raw))
        with pytest.raises(RowStoreError, match="schema"):
            RowStore.open(path)

    def test_header_row_schema_mismatch(self, schema):
        with pytest.raises(RowStoreError, match="schema width"):
            RowStoreHeader(0, 5, schema)

    def test_append_after_close(self, tmp_path, schema):
        path = tmp_path / "data.rr"
        store = RowStore.create(path, schema)
        store.close()
        with pytest.raises(RowStoreError, match="closed"):
            store.append(np.ones(3))

    def test_double_close_is_noop(self, tmp_path, schema):
        path = tmp_path / "data.rr"
        store = RowStore.create(path, schema)
        store.close()
        store.close()  # must not raise

    def test_invalid_block_rows(self, tmp_path, schema, matrix):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        store = RowStore.open(path)
        with pytest.raises(ValueError, match="block_rows"):
            list(store.iter_blocks(block_rows=0))
        store.close()
