"""Tests for transparent gzip handling in the CSV layer."""

import gzip

import numpy as np
import pytest

from repro.io.csv_format import load_csv_matrix, open_text, save_csv_matrix
from repro.io.matrix_reader import CSVReader, open_matrix
from repro.io.schema import TableSchema


@pytest.fixture
def matrix(rng):
    return rng.standard_normal((30, 3))


@pytest.fixture
def schema():
    return TableSchema.from_names(["a", "b", "c"])


class TestGzipCSV:
    def test_round_trip_gz(self, tmp_path, matrix, schema):
        path = tmp_path / "data.csv.gz"
        save_csv_matrix(path, matrix, schema)
        # The file really is gzip-compressed.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        restored, restored_schema = load_csv_matrix(path)
        np.testing.assert_array_equal(restored, matrix)
        assert restored_schema.names == schema.names

    def test_streaming_reader_gz(self, tmp_path, matrix, schema):
        path = tmp_path / "data.csv.gz"
        save_csv_matrix(path, matrix, schema)
        reader = CSVReader(path)
        blocks = list(reader.iter_blocks(block_rows=7))
        np.testing.assert_array_equal(np.vstack(blocks), matrix)
        assert reader.passes_completed == 1

    def test_open_matrix_dispatches_gz_to_csv(self, tmp_path, matrix, schema):
        path = tmp_path / "data.csv.gz"
        save_csv_matrix(path, matrix, schema)
        assert isinstance(open_matrix(path), CSVReader)

    def test_plain_csv_unchanged(self, tmp_path, matrix, schema):
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix, schema)
        assert path.read_bytes()[:2] != b"\x1f\x8b"
        restored, _schema = load_csv_matrix(path)
        np.testing.assert_array_equal(restored, matrix)

    def test_model_fits_from_gz(self, tmp_path, matrix, schema):
        from repro.core.model import RatioRuleModel

        path = tmp_path / "train.csv.gz"
        save_csv_matrix(path, matrix, schema)
        model = RatioRuleModel().fit(path)
        reference = RatioRuleModel().fit(matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-10
        )

    def test_open_text_write_read(self, tmp_path):
        path = tmp_path / "hello.txt.gz"
        with open_text(path, "w") as handle:
            handle.write("hello\nworld\n")
        with gzip.open(path, "rt") as handle:
            assert handle.read() == "hello\nworld\n"
