"""Tests for partitioned datasets."""

import json

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.parallel import fit_sharded
from repro.io.partitioned import MANIFEST_NAME, PartitionedReader, write_partitioned
from repro.io.rowstore import RowStoreError
from repro.io.schema import TableSchema


@pytest.fixture
def matrix(rng):
    factor = rng.normal(4.0, 1.5, size=300)
    return np.outer(factor, [1.0, 2.0, 0.5]) + rng.normal(0, 0.05, (300, 3))


@pytest.fixture
def partition_dir(tmp_path, matrix):
    schema = TableSchema.from_names(["a", "b", "c"])
    write_partitioned(
        tmp_path / "parts", [matrix[:100], matrix[100:250], matrix[250:]], schema
    )
    return tmp_path / "parts"


class TestWritePartitioned:
    def test_creates_shards_and_manifest(self, partition_dir):
        assert (partition_dir / MANIFEST_NAME).exists()
        manifest = json.loads((partition_dir / MANIFEST_NAME).read_text())
        assert len(manifest["shards"]) == 3
        assert [e["rows"] for e in manifest["shards"]] == [100, 150, 50]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one shard"):
            write_partitioned(tmp_path / "empty", [])

    def test_width_mismatch_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError, match="width"):
            write_partitioned(
                tmp_path / "bad",
                [rng.standard_normal((5, 3)), rng.standard_normal((5, 2))],
            )


class TestPartitionedReader:
    def test_scan_equals_concatenation(self, partition_dir, matrix):
        reader = PartitionedReader(partition_dir)
        np.testing.assert_array_equal(reader.read_matrix(), matrix)
        assert reader.n_rows == 300
        assert reader.n_shards == 3
        assert reader.schema.names == ["a", "b", "c"]

    def test_single_pass_counted(self, partition_dir):
        reader = PartitionedReader(partition_dir)
        list(reader.iter_blocks(block_rows=64))
        assert reader.passes_completed == 1

    def test_model_fit_matches_monolithic(self, partition_dir, matrix):
        model = RatioRuleModel(cutoff=1).fit(PartitionedReader(partition_dir))
        reference = RatioRuleModel(cutoff=1).fit(matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-9
        )

    def test_shard_paths_feed_fit_sharded(self, partition_dir, matrix):
        reader = PartitionedReader(partition_dir)
        model = fit_sharded(reader.shard_paths(), cutoff=1, max_workers=3)
        reference = RatioRuleModel(cutoff=1).fit(matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-8
        )

    def test_open_matrix_dispatches_directories(self, partition_dir, matrix):
        from repro.io.matrix_reader import open_matrix

        reader = open_matrix(partition_dir)
        assert isinstance(reader, PartitionedReader)
        np.testing.assert_array_equal(reader.read_matrix(), matrix)

    def test_cli_fit_on_partition_dir(self, partition_dir, capsys):
        from repro.cli import main

        assert main(["fit", str(partition_dir)]) == 0
        assert "Mined" in capsys.readouterr().out

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "nodata").mkdir()
        with pytest.raises(RowStoreError, match="manifest"):
            PartitionedReader(tmp_path / "nodata")

    def test_corrupt_manifest(self, partition_dir):
        (partition_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(RowStoreError, match="corrupt manifest"):
            PartitionedReader(partition_dir)

    def test_missing_shard(self, partition_dir):
        (partition_dir / "part-00001.rr").unlink()
        with pytest.raises(RowStoreError, match="missing shard"):
            PartitionedReader(partition_dir)

    def test_row_count_mismatch_detected(self, partition_dir):
        manifest = json.loads((partition_dir / MANIFEST_NAME).read_text())
        manifest["shards"][0]["rows"] = 999
        (partition_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        reader = PartitionedReader(partition_dir)
        with pytest.raises(RowStoreError, match="declares 999"):
            reader.read_matrix()

    def test_unknown_format_rejected(self, partition_dir):
        manifest = json.loads((partition_dir / MANIFEST_NAME).read_text())
        manifest["format"] = "somebody-elses-v9"
        (partition_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(RowStoreError, match="unknown format"):
            PartitionedReader(partition_dir)
