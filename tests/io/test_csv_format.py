"""Tests for CSV import/export."""

import numpy as np
import pytest

from repro.io.csv_format import CSVFormatError, load_csv_matrix, save_csv_matrix
from repro.io.schema import TableSchema


class TestRoundTrip:
    def test_save_load(self, tmp_path, rng):
        matrix = rng.standard_normal((11, 4))
        schema = TableSchema.from_names(["w", "x", "y", "z"])
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix, schema)
        restored, restored_schema = load_csv_matrix(path)
        np.testing.assert_array_equal(restored, matrix)  # repr() is exact
        assert restored_schema.names == schema.names

    def test_default_schema(self, tmp_path):
        path = tmp_path / "data.csv"
        save_csv_matrix(path, np.ones((2, 2)))
        _matrix, schema = load_csv_matrix(path)
        assert schema.names == ["col0", "col1"]

    def test_empty_body(self, tmp_path):
        path = tmp_path / "header_only.csv"
        path.write_text("a,b\n")
        matrix, schema = load_csv_matrix(path)
        assert matrix.shape == (0, 2)
        assert schema.names == ["a", "b"]

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n\n\n")
        matrix, _schema = load_csv_matrix(path)
        assert matrix.shape == (1, 2)


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(CSVFormatError, match="empty file"):
            load_csv_matrix(path)

    def test_blank_header_cell(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,,c\n1,2,3\n")
        with pytest.raises(CSVFormatError, match="blank column name"):
            load_csv_matrix(path)

    def test_ragged_row_reports_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n1,2,3\n")
        with pytest.raises(CSVFormatError, match=":3:"):
            load_csv_matrix(path)

    def test_non_numeric_cell_reports_line(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("a,b\n1,hello\n")
        with pytest.raises(CSVFormatError, match=":2:"):
            load_csv_matrix(path)

    def test_save_schema_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="width"):
            save_csv_matrix(
                tmp_path / "x.csv", np.ones((2, 3)), TableSchema.from_names(["a"])
            )

    def test_save_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError, match="2-d"):
            save_csv_matrix(tmp_path / "x.csv", np.ones(3))
