"""Tests for the streaming matrix readers."""

import numpy as np
import pytest

from repro.io.csv_format import save_csv_matrix
from repro.io.matrix_reader import (
    ArrayReader,
    CSVReader,
    MatrixReader,
    RowStoreReader,
    open_matrix,
)
from repro.io.rowstore import RowStore
from repro.io.schema import TableSchema


@pytest.fixture
def matrix(rng):
    return rng.standard_normal((25, 4))


@pytest.fixture
def schema():
    return TableSchema.from_names(["a", "b", "c", "d"])


def _all_reader_variants(tmp_path, matrix, schema):
    csv_path = tmp_path / "data.csv"
    save_csv_matrix(csv_path, matrix, schema)
    store_path = tmp_path / "data.rr"
    RowStore.write_matrix(store_path, matrix, schema)
    return [
        ArrayReader(matrix, schema),
        CSVReader(csv_path),
        RowStoreReader(store_path),
    ]


class TestReaders:
    def test_all_sources_agree(self, tmp_path, matrix, schema):
        for reader in _all_reader_variants(tmp_path, matrix, schema):
            np.testing.assert_allclose(reader.read_matrix(), matrix)
            assert reader.n_cols == 4
            assert reader.schema.names == schema.names

    def test_block_sizes_respected(self, tmp_path, matrix, schema):
        for reader in _all_reader_variants(tmp_path, matrix, schema):
            blocks = list(reader.iter_blocks(block_rows=7))
            assert [b.shape[0] for b in blocks] == [7, 7, 7, 4]
            np.testing.assert_allclose(np.vstack(blocks), matrix)

    def test_pass_counter(self, tmp_path, matrix, schema):
        for reader in _all_reader_variants(tmp_path, matrix, schema):
            assert reader.passes_completed == 0
            list(reader.iter_blocks())
            assert reader.passes_completed == 1
            reader.read_matrix()
            assert reader.passes_completed == 2

    def test_partial_scan_does_not_count(self, matrix, schema):
        reader = ArrayReader(matrix, schema)
        iterator = reader.iter_blocks(block_rows=5)
        next(iterator)
        assert reader.passes_completed == 0

    def test_invalid_block_rows(self, matrix):
        reader = ArrayReader(matrix)
        with pytest.raises(ValueError, match="block_rows"):
            list(reader.iter_blocks(block_rows=0))


class TestArrayReader:
    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            ArrayReader(np.ones(3))

    def test_schema_width_mismatch(self, matrix):
        with pytest.raises(ValueError, match="width"):
            ArrayReader(matrix, TableSchema.from_names(["a", "b"]))

    def test_n_rows(self, matrix):
        assert ArrayReader(matrix).n_rows == 25

    def test_empty_rows_ok(self):
        reader = ArrayReader(np.empty((0, 3)))
        assert reader.read_matrix().shape == (0, 3)


class TestOpenMatrix:
    def test_array_dispatch(self, matrix):
        assert isinstance(open_matrix(matrix), ArrayReader)

    def test_list_dispatch(self):
        reader = open_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert isinstance(reader, ArrayReader)
        assert reader.n_cols == 2

    def test_csv_dispatch(self, tmp_path, matrix, schema):
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix, schema)
        assert isinstance(open_matrix(path), CSVReader)
        assert isinstance(open_matrix(str(path)), CSVReader)

    def test_rowstore_dispatch(self, tmp_path, matrix, schema):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix, schema)
        assert isinstance(open_matrix(path), RowStoreReader)

    def test_reader_passthrough(self, matrix):
        reader = ArrayReader(matrix)
        assert open_matrix(reader) is reader

    def test_reader_is_abstract(self):
        with pytest.raises(TypeError):
            MatrixReader()  # abstract
