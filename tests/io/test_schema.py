"""Tests for column/table schemas."""

import pytest

from repro.io.schema import ColumnSchema, TableSchema


class TestColumnSchema:
    def test_basic(self):
        column = ColumnSchema(name="bread", unit="$", description="spend on bread")
        assert column.name == "bread"
        assert column.label() == "bread ($)"

    def test_label_without_unit(self):
        assert ColumnSchema(name="bread").label() == "bread"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            ColumnSchema(name="")
        with pytest.raises(ValueError, match="non-empty"):
            ColumnSchema(name="   ")

    def test_frozen(self):
        column = ColumnSchema(name="bread")
        with pytest.raises(AttributeError):
            column.name = "butter"


class TestTableSchema:
    def test_from_names(self):
        schema = TableSchema.from_names(["a", "b", "c"])
        assert schema.width == 3
        assert schema.names == ["a", "b", "c"]

    def test_from_names_with_unit(self):
        schema = TableSchema.from_names(["a", "b"], unit="$")
        assert all(column.unit == "$" for column in schema)

    def test_generic(self):
        schema = TableSchema.generic(3)
        assert schema.names == ["col0", "col1", "col2"]

    def test_generic_rejects_zero(self):
        with pytest.raises(ValueError):
            TableSchema.generic(0)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema.from_names(["a", "b", "a"])

    def test_index_of(self):
        schema = TableSchema.from_names(["a", "b", "c"])
        assert schema.index_of("b") == 1

    def test_index_of_missing(self):
        schema = TableSchema.from_names(["a"])
        with pytest.raises(KeyError, match="no column named"):
            schema.index_of("z")

    def test_container_protocol(self):
        schema = TableSchema.from_names(["a", "b"])
        assert len(schema) == 2
        assert schema[0].name == "a"
        assert [c.name for c in schema] == ["a", "b"]

    def test_subset(self):
        schema = TableSchema.from_names(["a", "b", "c"])
        sub = schema.subset([2, 0])
        assert sub.names == ["c", "a"]

    def test_json_round_trip(self):
        schema = TableSchema(
            (
                ColumnSchema(name="bread", unit="$", description="dollars"),
                ColumnSchema(name="butter"),
            )
        )
        restored = TableSchema.from_json(schema.to_json())
        assert restored == schema

    def test_from_json_rejects_non_list(self):
        with pytest.raises(ValueError, match="list"):
            TableSchema.from_json('{"name": "a"}')
