"""Tests for the .npz matrix format."""

import numpy as np
import pytest

from repro.io.matrix_reader import ArrayReader, open_matrix
from repro.io.npz_format import load_npz_matrix, save_npz_matrix
from repro.io.schema import TableSchema


class TestNPZFormat:
    def test_round_trip(self, tmp_path, rng):
        matrix = rng.standard_normal((17, 4))
        schema = TableSchema.from_names(["w", "x", "y", "z"])
        path = tmp_path / "data.npz"
        save_npz_matrix(path, matrix, schema)
        restored, restored_schema = load_npz_matrix(path)
        np.testing.assert_array_equal(restored, matrix)
        assert restored_schema.names == schema.names

    def test_default_schema(self, tmp_path, rng):
        path = tmp_path / "data.npz"
        save_npz_matrix(path, rng.standard_normal((3, 2)))
        _matrix, schema = load_npz_matrix(path)
        assert schema.names == ["col0", "col1"]

    def test_open_matrix_dispatch(self, tmp_path, rng):
        matrix = rng.standard_normal((9, 3))
        path = tmp_path / "data.npz"
        save_npz_matrix(path, matrix)
        reader = open_matrix(path)
        assert isinstance(reader, ArrayReader)
        np.testing.assert_array_equal(reader.read_matrix(), matrix)

    def test_model_fits_from_npz(self, tmp_path, rng):
        from repro.core.model import RatioRuleModel

        factor = rng.normal(5, 2, 100)
        matrix = np.outer(factor, [1.0, 2.0]) + rng.normal(0, 0.05, (100, 2))
        path = tmp_path / "train.npz"
        save_npz_matrix(path, matrix)
        model = RatioRuleModel().fit(path)
        reference = RatioRuleModel().fit(matrix)
        np.testing.assert_allclose(model.rules_matrix, reference.rules_matrix)

    def test_foreign_npz_rejected(self, tmp_path, rng):
        path = tmp_path / "foreign.npz"
        np.savez(path, something_else=rng.standard_normal(5))
        with pytest.raises(ValueError, match="not a repro matrix archive"):
            load_npz_matrix(path)

    def test_save_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError, match="2-d"):
            save_npz_matrix(tmp_path / "x.npz", np.ones(4))

    def test_save_schema_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="width"):
            save_npz_matrix(
                tmp_path / "x.npz", np.ones((2, 3)), TableSchema.from_names(["a"])
            )
