"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema

#: The paper's Fig. 1 bread/butter matrix (5 customers x 2 products).
FIGURE1_MATRIX = np.array(
    [
        [0.89, 0.49],
        [3.34, 1.85],
        [5.00, 3.09],
        [1.78, 0.99],
        [4.02, 2.61],
    ]
)


@pytest.fixture
def figure1_matrix() -> np.ndarray:
    """Copy of the paper's Fig. 1 example matrix."""
    return FIGURE1_MATRIX.copy()


# -- shared synthetic-data factories (plain functions, import freely) ------


def make_rank2_matrix(seed: int, n_rows: int = 200, n_cols: int = 5) -> np.ndarray:
    """Rank-2 data with small noise; distinct per seed."""
    generator = np.random.default_rng(seed)
    factor1 = generator.normal(5.0, 2.0, size=n_rows)
    factor2 = generator.normal(0.0, 1.0, size=n_rows)
    loadings1 = np.array([1.0, 2.0, 0.5, 3.0, 1.5])[:n_cols]
    loadings2 = np.array([0.5, -1.0, 2.0, 0.0, -0.5])[:n_cols]
    matrix = np.outer(factor1, loadings1) + np.outer(factor2, loadings2)
    matrix += generator.normal(0.0, 0.05, size=matrix.shape)
    return matrix


def punch_holes(
    matrix: np.ndarray, generator: np.random.Generator, rate: float = 0.3
) -> np.ndarray:
    """Copy of ``matrix`` with a random ``rate`` of cells set to NaN."""
    holey = matrix.copy()
    holey[generator.random(matrix.shape) < rate] = np.nan
    return holey


def make_regime_matrix(
    seed: int,
    loadings=(1.0, 2.0, 0.5),
    n_rows: int = 400,
    noise: float = 0.05,
) -> np.ndarray:
    """Rank-1 transactions following one latent spending ratio."""
    generator = np.random.default_rng(seed)
    volume = generator.uniform(0.5, 4.0, size=n_rows)
    matrix = np.outer(volume, np.asarray(loadings, dtype=np.float64))
    matrix += generator.normal(0.0, noise, size=matrix.shape)
    return matrix


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def correlated_matrix(rng: np.random.Generator) -> np.ndarray:
    """A 300 x 5 matrix with rank-2 structure plus small noise."""
    n_rows = 300
    factor1 = rng.normal(5.0, 2.0, size=n_rows)
    factor2 = rng.normal(0.0, 1.0, size=n_rows)
    loadings1 = np.array([1.0, 2.0, 0.5, 3.0, 1.5])
    loadings2 = np.array([0.5, -1.0, 2.0, 0.0, -0.5])
    matrix = np.outer(factor1, loadings1) + np.outer(factor2, loadings2)
    matrix += rng.normal(0.0, 0.05, size=matrix.shape)
    return matrix


@pytest.fixture
def correlated_model(correlated_matrix: np.ndarray) -> RatioRuleModel:
    """A k=2 model fitted on the rank-2 correlated matrix.

    The cutoff is fixed at 2 because the first factor alone covers the
    85% rule on this data, while the reconstruction tests rely on both
    factors being captured.
    """
    return RatioRuleModel(cutoff=2).fit(correlated_matrix)


@pytest.fixture
def small_schema() -> TableSchema:
    """A 3-column named schema."""
    return TableSchema.from_names(["bread", "milk", "butter"], unit="$")


def random_symmetric_psd(rng: np.random.Generator, size: int) -> np.ndarray:
    """Random symmetric positive semi-definite matrix."""
    a = rng.standard_normal((size + 2, size))
    return a.T @ a


def assert_eigenpairs_valid(matrix, eigenvalues, eigenvectors, atol=1e-8):
    """Shared eigenpair validity assertion: residual and orthonormality."""
    matrix = np.asarray(matrix, dtype=np.float64)
    residual = matrix @ eigenvectors - eigenvectors * eigenvalues[np.newaxis, :]
    scale = max(float(np.linalg.norm(matrix)), 1.0)
    assert np.linalg.norm(residual) / scale < atol
    gram = eigenvectors.T @ eigenvectors
    np.testing.assert_allclose(gram, np.eye(eigenvectors.shape[1]), atol=1e-7)
