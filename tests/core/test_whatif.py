"""Tests for what-if scenario evaluation."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.whatif import Scenario, evaluate_scenario
from repro.io.schema import TableSchema


@pytest.fixture
def grocery_model(rng):
    """Cheerios and milk move together 1:2; bread independent-ish."""
    n = 400
    cereal_factor = rng.normal(4.0, 1.5, size=n)
    bread_factor = rng.normal(2.0, 0.7, size=n)
    matrix = np.column_stack(
        [
            cereal_factor,                     # cheerios
            2.0 * cereal_factor,               # milk
            bread_factor,                      # bread
        ]
    )
    matrix += rng.normal(0, 0.05, size=matrix.shape)
    schema = TableSchema.from_names(["cheerios", "milk", "bread"], unit="$")
    return RatioRuleModel(cutoff=2).fit(matrix, schema=schema)


class TestScenario:
    def test_requires_constraints(self):
        with pytest.raises(ValueError, match="at least one"):
            Scenario()

    def test_rejects_fixed_and_scaled_overlap(self):
        with pytest.raises(ValueError, match="both fixed and scaled"):
            Scenario(fixed={"milk": 1.0}, scaled={"milk": 2.0})


class TestEvaluateScenario:
    def test_fixed_value_propagates(self, grocery_model):
        result = evaluate_scenario(grocery_model, Scenario(fixed={"cheerios": 6.0}))
        assert result["cheerios"] == pytest.approx(6.0)
        # Milk tracks cheerios at 2x.
        assert result["milk"] == pytest.approx(12.0, rel=0.1)
        assert result.specified == frozenset({"cheerios"})

    def test_paper_example_doubling_demand(self, grocery_model):
        """'Demand for Cheerios doubles' -> milk doubles too."""
        means = dict(zip(grocery_model.schema_.names, grocery_model.means_))
        result = evaluate_scenario(
            grocery_model, Scenario(scaled={"cheerios": 2.0}), baseline=means
        )
        assert result["cheerios"] == pytest.approx(2.0 * means["cheerios"], rel=1e-9)
        assert result["milk"] == pytest.approx(2.0 * means["milk"], rel=0.15)

    def test_default_baseline_is_means(self, grocery_model):
        explicit = evaluate_scenario(
            grocery_model,
            Scenario(scaled={"cheerios": 1.5}),
            baseline=dict(zip(grocery_model.schema_.names, grocery_model.means_)),
        )
        implicit = evaluate_scenario(grocery_model, Scenario(scaled={"cheerios": 1.5}))
        assert implicit.values == explicit.values

    def test_unknown_attribute_rejected(self, grocery_model):
        with pytest.raises(KeyError):
            evaluate_scenario(grocery_model, Scenario(fixed={"caviar": 9.0}))

    def test_scaled_missing_baseline_attribute(self, grocery_model):
        with pytest.raises(KeyError, match="baseline"):
            evaluate_scenario(
                grocery_model,
                Scenario(scaled={"cheerios": 2.0}),
                baseline={"milk": 1.0},
            )

    def test_delta_versus(self, grocery_model):
        baseline = dict(zip(grocery_model.schema_.names, grocery_model.means_))
        result = evaluate_scenario(
            grocery_model, Scenario(scaled={"cheerios": 2.0}), baseline=baseline
        )
        deltas = result.delta_versus(baseline)
        assert deltas["cheerios"] == pytest.approx(baseline["cheerios"], rel=1e-9)
        assert deltas["milk"] > 0

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            evaluate_scenario(RatioRuleModel(), Scenario(fixed={"x": 1.0}))

    def test_result_case_recorded(self, grocery_model):
        result = evaluate_scenario(grocery_model, Scenario(fixed={"cheerios": 3.0}))
        assert result.case in ("exactly-specified", "over-specified", "under-specified")


class TestDegenerateInputs:
    def test_scenario_on_zero_variance_attribute(self, rng):
        factor = rng.normal(4.0, 1.5, size=200)
        matrix = np.column_stack(
            [factor, 2.0 * factor, np.full(200, 7.0)]
        ) + rng.normal(0, 0.02, size=(200, 3))
        schema = TableSchema.from_names(["cheerios", "milk", "flat"])
        model = RatioRuleModel(cutoff=2).fit(matrix, schema=schema)
        result = evaluate_scenario(model, Scenario(scaled={"cheerios": 2.0}))
        # The constant attribute stays at (about) its constant value.
        assert result["flat"] == pytest.approx(7.0, abs=0.5)

    def test_all_attributes_fixed_is_a_no_hole_pass_through(self, grocery_model):
        result = evaluate_scenario(
            grocery_model,
            Scenario(fixed={"cheerios": 1.0, "milk": 2.0, "bread": 3.0}),
        )
        assert result.case == "no-holes"
        assert result.values == {"cheerios": 1.0, "milk": 2.0, "bread": 3.0}
        assert result.specified == frozenset(["cheerios", "milk", "bread"])

    def test_full_rank_model_k_equals_m(self, rng):
        factor = rng.normal(4.0, 1.5, size=200)
        matrix = np.column_stack(
            [factor, 2.0 * factor, 3.0 * factor]
        ) + rng.normal(0, 0.05, size=(200, 3))
        schema = TableSchema.from_names(["a", "b", "c"])
        model = RatioRuleModel(cutoff=3).fit(matrix, schema=schema)
        assert model.k == 3
        result = evaluate_scenario(model, Scenario(fixed={"a": 5.0}))
        # Even with every rule kept, the pinned value passes through
        # and the propagated ones stay near the training ratios.
        assert result["a"] == pytest.approx(5.0)
        assert result["b"] == pytest.approx(10.0, rel=0.05)

    def test_single_row_training_matrix(self, rng):
        schema = TableSchema.from_names(["a", "b"])
        model = RatioRuleModel(cutoff=1).fit(
            np.array([[1.0, 2.0]]), schema=schema
        )
        result = evaluate_scenario(model, Scenario(fixed={"a": 3.0}))
        assert np.isfinite(list(result.values.values())).all()


class TestDeterminism:
    def test_evaluation_is_deterministic(self, grocery_model):
        scenario = Scenario(scaled={"cheerios": 2.0})
        first = evaluate_scenario(grocery_model, scenario)
        second = evaluate_scenario(grocery_model, scenario)
        assert first.values == second.values
        assert first.case == second.case
