"""Tests for the process-parallel, out-of-core scan engine."""

import numpy as np
import pytest

from repro.core.covariance import StreamingCovariance
from repro.core.engine import ScanChunk, plan_chunks, scan_chunk, scan_sources
from repro.core.model import RatioRuleModel
from repro.core.parallel import fit_sharded
from repro.io.csv_format import save_csv_matrix
from repro.io.matrix_reader import ArrayReader, CSVChunkReader, csv_layout
from repro.io.partitioned import write_partitioned
from repro.io.rowstore import RowStore


@pytest.fixture
def matrix(rng):
    factor = rng.normal(5.0, 2.0, size=800)
    return np.outer(factor, [1.0, 0.5, 2.0, 1.5]) + rng.normal(0, 0.1, (800, 4))


@pytest.fixture
def csv_shards(matrix, tmp_path):
    paths = []
    for index, start in enumerate(range(0, 800, 200)):
        path = tmp_path / f"shard{index}.csv"
        save_csv_matrix(path, matrix[start : start + 200])
        paths.append(path)
    return paths


def reference_accumulator(matrix):
    acc = StreamingCovariance(matrix.shape[1])
    acc.update(matrix)
    return acc


class TestChunkPlanner:
    def test_csv_byte_ranges_partition_file(self, csv_shards, matrix):
        chunks, schema = plan_chunks(csv_shards[0], target_chunks=5)
        assert len(chunks) == 5
        assert schema.width == 4
        _, data_offset, size = csv_layout(csv_shards[0])
        assert chunks[0].start == data_offset
        assert chunks[-1].stop == size
        for left, right in zip(chunks, chunks[1:]):
            assert left.stop == right.start
        # Scanning the chunks back to back reproduces the shard exactly.
        rows = [
            block
            for chunk in chunks
            for block in CSVChunkReader(
                chunk.source, chunk.start, chunk.stop
            ).iter_blocks(64)
        ]
        np.testing.assert_allclose(np.vstack(rows), matrix[:200])

    def test_rowstore_row_ranges(self, matrix, tmp_path):
        path = tmp_path / "all.rr"
        RowStore.write_matrix(path, matrix)
        chunks, _schema = plan_chunks(path, target_chunks=3)
        assert [chunk.kind for chunk in chunks] == ["rowstore"] * 3
        assert chunks[0].start == 0
        assert chunks[-1].stop == 800
        assert sum(chunk.stop - chunk.start for chunk in chunks) == 800

    def test_partition_directory_splits_by_shard_rows(self, matrix, tmp_path):
        directory = tmp_path / "parts"
        write_partitioned(directory, [matrix[:600], matrix[600:]])
        chunks, schema = plan_chunks(directory, target_chunks=4)
        assert schema.width == 4
        assert all(chunk.kind == "rowstore" for chunk in chunks)
        assert sum(chunk.stop - chunk.start for chunk in chunks) == 800
        # The 600-row shard gets more chunks than the 200-row shard.
        by_shard = {}
        for chunk in chunks:
            by_shard.setdefault(chunk.source, 0)
            by_shard[chunk.source] += 1
        counts = sorted(by_shard.values())
        assert counts[-1] >= counts[0]

    def test_gzip_csv_is_one_whole_file_chunk(self, matrix, tmp_path):
        path = tmp_path / "data.csv.gz"
        save_csv_matrix(path, matrix[:50])
        chunks, _schema = plan_chunks(path, target_chunks=8)
        assert [chunk.kind for chunk in chunks] == ["path"]

    def test_array_chunks(self, matrix):
        chunks, schema = plan_chunks(matrix, target_chunks=3)
        assert [chunk.kind for chunk in chunks] == ["array"] * 3
        assert schema.width == 4
        assert not chunks[0].picklable

    def test_scan_chunk_covers_planned_rows(self, csv_shards):
        chunks, _ = plan_chunks(csv_shards[0], target_chunks=4)
        total = 0
        for chunk in chunks:
            partial, n_blocks = scan_chunk(chunk, block_rows=32)
            total += partial.n_rows
            assert n_blocks >= 0
        assert total == 200

    def test_unknown_chunk_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chunk kind"):
            scan_chunk(ScanChunk("mystery", None))


class TestScanSources:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_exact_across_executors(self, executor, csv_shards, matrix):
        reference = reference_accumulator(matrix)
        result = scan_sources(csv_shards, executor=executor, max_workers=3)
        np.testing.assert_allclose(
            result.accumulator.scatter_matrix(),
            reference.scatter_matrix(),
            atol=1e-8,
        )
        np.testing.assert_allclose(
            result.accumulator.column_means, reference.column_means, atol=1e-10
        )
        assert result.accumulator.n_rows == 800

    def test_single_file_saturates_pool(self, matrix, tmp_path):
        path = tmp_path / "big.rr"
        RowStore.write_matrix(path, matrix)
        result = scan_sources([path], executor="process", max_workers=4)
        assert result.metrics.n_chunks == 4
        assert result.metrics.executor == "process" or result.metrics.n_workers == 1
        np.testing.assert_allclose(
            result.accumulator.scatter_matrix(),
            reference_accumulator(matrix).scatter_matrix(),
            atol=1e-8,
        )

    def test_arrays_fall_back_to_threads(self, matrix):
        result = scan_sources(
            [matrix[:400], matrix[400:]], executor="process", max_workers=2
        )
        assert result.metrics.executor == "thread"

    def test_single_worker_falls_back_to_serial(self, csv_shards):
        result = scan_sources(csv_shards, executor="process", max_workers=1)
        assert result.metrics.executor == "serial"

    def test_metrics_populated(self, csv_shards):
        result = scan_sources(csv_shards, executor="thread", max_workers=2)
        metrics = result.metrics
        assert metrics.n_sources == 4
        assert metrics.n_chunks >= 4
        assert metrics.n_rows == 800
        assert metrics.n_merges == metrics.n_chunks
        assert metrics.n_blocks >= metrics.n_chunks
        assert metrics.scan_seconds > 0
        assert metrics.total_seconds >= metrics.scan_seconds
        assert metrics.rows_per_second > 0
        rendered = metrics.render()
        assert "rows/s" in rendered
        assert "thread" in rendered

    def test_width_mismatch_rejected(self, matrix, tmp_path):
        narrow = tmp_path / "narrow.csv"
        save_csv_matrix(narrow, matrix[:10, :3])
        wide = tmp_path / "wide.csv"
        save_csv_matrix(wide, matrix[:10])
        with pytest.raises(ValueError, match="column count"):
            scan_sources([wide, narrow])

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError, match="at least one source"):
            scan_sources([])

    def test_bad_executor_rejected(self, matrix):
        with pytest.raises(ValueError, match="executor"):
            scan_sources([matrix], executor="mpi")

    def test_live_reader_scans_in_process(self, matrix):
        reader = ArrayReader(matrix)
        result = scan_sources([reader], executor="process", max_workers=4)
        assert result.accumulator.n_rows == 800
        assert reader.passes_completed == 1


class TestProcessBackendFit:
    def test_process_fit_matches_serial_single_scan(self, csv_shards, matrix):
        """The ISSUE acceptance check: process == serial, exactly."""
        reference = RatioRuleModel(cutoff=2).fit(matrix)
        process_model = fit_sharded(
            csv_shards, cutoff=2, executor="process", max_workers=3
        )
        serial_model = fit_sharded(csv_shards, cutoff=2, executor="serial")
        np.testing.assert_allclose(
            process_model.rules_matrix, reference.rules_matrix, atol=1e-8
        )
        np.testing.assert_allclose(
            process_model.rules_matrix, serial_model.rules_matrix, atol=1e-10
        )
        np.testing.assert_allclose(process_model.means_, reference.means_)
        assert process_model.n_rows_ == 800
        assert process_model.metrics_ is not None
        assert process_model.metrics_.solve_seconds >= 0.0

    def test_partitioned_directory_process_fit(self, matrix, tmp_path):
        directory = tmp_path / "parts"
        write_partitioned(directory, [matrix[:300], matrix[300:550], matrix[550:]])
        reference = RatioRuleModel(cutoff=2).fit(matrix)
        model = fit_sharded([directory], cutoff=2, executor="process", max_workers=3)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-8
        )
