"""Tests for basket-completion recommendations."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.recommend import BasketRecommender
from repro.io.schema import TableSchema


@pytest.fixture
def grocery_model(rng):
    """Two shopping habits: breakfast (cereal+milk) and baking (flour+butter)."""
    n = 500
    breakfast = rng.uniform(0.0, 5.0, size=n)
    baking = rng.uniform(0.0, 5.0, size=n)
    matrix = np.column_stack(
        [
            breakfast,                 # cereal
            2.0 * breakfast,           # milk
            baking,                    # flour
            1.5 * baking,              # butter
        ]
    ) + rng.normal(0, 0.05, (n, 4))
    schema = TableSchema.from_names(["cereal", "milk", "flour", "butter"], unit="$")
    return RatioRuleModel(cutoff=2).fit(np.clip(matrix, 0, None), schema=schema)


class TestCompleteBasket:
    def test_predicts_missing_products(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        completed = recommender.complete_basket({"cereal": 4.0})
        assert set(completed) == {"milk", "flour", "butter"}
        assert completed["milk"] == pytest.approx(8.0, abs=1.0)

    def test_empty_basket_rejected(self, grocery_model):
        with pytest.raises(ValueError, match="at least one"):
            BasketRecommender(grocery_model).complete_basket({})

    def test_unknown_product_rejected(self, grocery_model):
        with pytest.raises(KeyError):
            BasketRecommender(grocery_model).complete_basket({"caviar": 9.0})


class TestRecommend:
    def test_uplift_ranking_follows_habit(self, grocery_model):
        """A cereal-heavy basket should push milk above baking goods."""
        recommender = BasketRecommender(grocery_model, ranking="uplift")
        recommendations = recommender.recommend({"cereal": 5.0}, top_n=3)
        assert recommendations[0].product == "milk"
        assert recommendations[0].uplift > 0

    def test_baking_basket_pushes_butter(self, grocery_model):
        recommender = BasketRecommender(grocery_model, ranking="uplift")
        recommendations = recommender.recommend({"flour": 5.0}, top_n=1)
        assert recommendations[0].product == "butter"

    def test_predicted_ranking(self, grocery_model):
        recommender = BasketRecommender(grocery_model, ranking="predicted")
        recommendations = recommender.recommend({"cereal": 5.0}, top_n=3)
        spends = [r.predicted_spend for r in recommendations]
        assert spends == sorted(spends, reverse=True)

    def test_top_n_respected(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        assert len(recommender.recommend({"cereal": 3.0}, top_n=2)) <= 2

    def test_candidates_filter(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        recommendations = recommender.recommend(
            {"cereal": 5.0}, top_n=5, candidates=["flour", "butter"]
        )
        assert {r.product for r in recommendations} <= {"flour", "butter"}

    def test_candidate_in_basket_rejected(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        with pytest.raises(ValueError, match="already in the basket"):
            recommender.recommend({"cereal": 5.0}, candidates=["cereal"])

    def test_invalid_top_n(self, grocery_model):
        with pytest.raises(ValueError, match="top_n"):
            BasketRecommender(grocery_model).recommend({"cereal": 1.0}, top_n=0)

    def test_invalid_ranking(self, grocery_model):
        with pytest.raises(ValueError, match="ranking"):
            BasketRecommender(grocery_model, ranking="random")

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            BasketRecommender(RatioRuleModel())
