"""Tests for basket-completion recommendations."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.recommend import BasketRecommender
from repro.io.schema import TableSchema


@pytest.fixture
def grocery_model(rng):
    """Two shopping habits: breakfast (cereal+milk) and baking (flour+butter)."""
    n = 500
    breakfast = rng.uniform(0.0, 5.0, size=n)
    baking = rng.uniform(0.0, 5.0, size=n)
    matrix = np.column_stack(
        [
            breakfast,                 # cereal
            2.0 * breakfast,           # milk
            baking,                    # flour
            1.5 * baking,              # butter
        ]
    ) + rng.normal(0, 0.05, (n, 4))
    schema = TableSchema.from_names(["cereal", "milk", "flour", "butter"], unit="$")
    return RatioRuleModel(cutoff=2).fit(np.clip(matrix, 0, None), schema=schema)


class TestCompleteBasket:
    def test_predicts_missing_products(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        completed = recommender.complete_basket({"cereal": 4.0})
        assert set(completed) == {"milk", "flour", "butter"}
        assert completed["milk"] == pytest.approx(8.0, abs=1.0)

    def test_empty_basket_rejected(self, grocery_model):
        with pytest.raises(ValueError, match="at least one"):
            BasketRecommender(grocery_model).complete_basket({})

    def test_unknown_product_rejected(self, grocery_model):
        with pytest.raises(KeyError):
            BasketRecommender(grocery_model).complete_basket({"caviar": 9.0})


class TestRecommend:
    def test_uplift_ranking_follows_habit(self, grocery_model):
        """A cereal-heavy basket should push milk above baking goods."""
        recommender = BasketRecommender(grocery_model, ranking="uplift")
        recommendations = recommender.recommend({"cereal": 5.0}, top_n=3)
        assert recommendations[0].product == "milk"
        assert recommendations[0].uplift > 0

    def test_baking_basket_pushes_butter(self, grocery_model):
        recommender = BasketRecommender(grocery_model, ranking="uplift")
        recommendations = recommender.recommend({"flour": 5.0}, top_n=1)
        assert recommendations[0].product == "butter"

    def test_predicted_ranking(self, grocery_model):
        recommender = BasketRecommender(grocery_model, ranking="predicted")
        recommendations = recommender.recommend({"cereal": 5.0}, top_n=3)
        spends = [r.predicted_spend for r in recommendations]
        assert spends == sorted(spends, reverse=True)

    def test_top_n_respected(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        assert len(recommender.recommend({"cereal": 3.0}, top_n=2)) <= 2

    def test_candidates_filter(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        recommendations = recommender.recommend(
            {"cereal": 5.0}, top_n=5, candidates=["flour", "butter"]
        )
        assert {r.product for r in recommendations} <= {"flour", "butter"}

    def test_candidate_in_basket_rejected(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        with pytest.raises(ValueError, match="already in the basket"):
            recommender.recommend({"cereal": 5.0}, candidates=["cereal"])

    def test_invalid_top_n(self, grocery_model):
        with pytest.raises(ValueError, match="top_n"):
            BasketRecommender(grocery_model).recommend({"cereal": 1.0}, top_n=0)

    def test_invalid_ranking(self, grocery_model):
        with pytest.raises(ValueError, match="ranking"):
            BasketRecommender(grocery_model, ranking="random")

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            BasketRecommender(RatioRuleModel())


class TestHotPaths:
    """Edge-of-domain coverage for the basket-completion hot paths."""

    def test_complete_basket_is_deterministic(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        basket = {"cereal": 3.0, "flour": 0.5}
        first = recommender.complete_basket(basket)
        second = recommender.complete_basket(basket)
        assert first == second  # exact equality, not approx

    def test_full_basket_leaves_nothing_to_recommend(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        basket = {"cereal": 1.0, "milk": 2.0, "flour": 1.0, "butter": 1.5}
        assert recommender.complete_basket(basket) == {}
        assert recommender.recommend(basket) == []

    def test_single_hole_basket(self, grocery_model):
        recommender = BasketRecommender(grocery_model)
        basket = {"cereal": 3.0, "milk": 6.0, "flour": 1.0}
        predictions = recommender.complete_basket(basket)
        assert list(predictions) == ["butter"]
        assert predictions["butter"] == pytest.approx(1.5, abs=0.3)

    def test_zero_variance_product_predicts_its_constant(self, rng):
        n = 300
        habit = rng.uniform(1.0, 5.0, size=n)
        matrix = np.column_stack(
            [habit, 2.0 * habit, np.full(n, 1.0)]  # salt: always $1
        ) + np.column_stack(
            [rng.normal(0, 0.05, (n, 2)), np.zeros((n, 1))]
        )
        schema = TableSchema.from_names(["bread", "jam", "salt"], unit="$")
        model = RatioRuleModel(cutoff=1).fit(matrix, schema=schema)
        recommender = BasketRecommender(model, ranking="predicted")
        predictions = recommender.complete_basket({"bread": 3.0})
        assert predictions["salt"] == pytest.approx(1.0, abs=0.1)
        recommendations = recommender.recommend({"bread": 3.0}, top_n=2)
        assert {r.product for r in recommendations} <= {"jam", "salt"}
        # Constant product carries ~zero uplift: knowing the basket adds
        # nothing beyond the population mean.
        by_name = {r.product: r for r in recommendations}
        if "salt" in by_name:
            assert by_name["salt"].uplift == pytest.approx(0.0, abs=0.1)
