"""Edge-case and robustness tests across the core stack."""

import numpy as np
import pytest

from repro.baselines.column_average import ColumnAverageBaseline
from repro.core.guessing_error import single_hole_error
from repro.core.model import RatioRuleModel


class TestSingleColumn:
    """M = 1: degenerate but legal."""

    def test_fit_and_fill(self, rng):
        matrix = rng.normal(5.0, 2.0, size=(50, 1))
        model = RatioRuleModel().fit(matrix)
        assert model.k == 1
        # The only possible hole pattern is all-holes -> predict the mean.
        filled = model.fill_row(np.array([np.nan]))
        assert filled[0] == pytest.approx(matrix.mean())

    def test_ge_equals_colavg(self, rng):
        matrix = rng.normal(5.0, 2.0, size=(50, 1))
        model = RatioRuleModel().fit(matrix)
        baseline = ColumnAverageBaseline().fit(matrix)
        test = rng.normal(5.0, 2.0, size=(10, 1))
        assert single_hole_error(model, test).value == pytest.approx(
            single_hole_error(baseline, test).value
        )


class TestDegenerateData:
    def test_single_row_matrix(self):
        """N = 1: zero variance everywhere, rules still well-defined."""
        matrix = np.array([[3.0, 7.0, 1.0]])
        model = RatioRuleModel().fit(matrix)
        filled = model.fill_row(np.array([np.nan, np.nan, np.nan]))
        np.testing.assert_allclose(filled, [3.0, 7.0, 1.0])

    def test_constant_matrix(self):
        matrix = np.full((20, 3), 4.0)
        model = RatioRuleModel().fit(matrix)
        filled = model.fill_row(np.array([4.0, np.nan, np.nan]))
        np.testing.assert_allclose(filled, 4.0, atol=1e-9)

    def test_constant_column_among_varying(self, rng):
        matrix = rng.standard_normal((100, 3))
        matrix[:, 1] = 9.0  # dead column
        model = RatioRuleModel().fit(matrix)
        filled = model.fill_row(np.array([0.5, np.nan, 0.2]))
        assert filled[1] == pytest.approx(9.0, abs=0.1)

    def test_duplicate_columns(self, rng):
        column = rng.standard_normal((80, 1))
        matrix = np.hstack([column, column, rng.standard_normal((80, 1))])
        model = RatioRuleModel().fit(matrix)
        # A duplicated column predicts its twin essentially exactly.
        row = matrix[0].copy()
        truth = row[1]
        row[1] = np.nan
        assert model.fill_row(row)[1] == pytest.approx(truth, abs=1e-6)

    def test_two_identical_rows(self):
        matrix = np.array([[1.0, 2.0], [1.0, 2.0]])
        model = RatioRuleModel().fit(matrix)
        filled = model.fill_row(np.array([1.0, np.nan]))
        assert filled[1] == pytest.approx(2.0)


class TestScaleExtremes:
    def test_huge_values(self, rng):
        factor = rng.normal(5.0, 2.0, size=100)
        matrix = np.outer(factor, [1e9, 2e9]) + rng.normal(0, 1e6, (100, 2))
        model = RatioRuleModel(cutoff=1).fit(matrix)
        filled = model.fill_row(np.array([5e9, np.nan]))
        assert filled[1] == pytest.approx(1e10, rel=0.05)

    def test_tiny_values(self, rng):
        factor = rng.normal(5.0, 2.0, size=100)
        matrix = np.outer(factor, [1e-9, 2e-9]) + rng.normal(0, 1e-12, (100, 2))
        model = RatioRuleModel(cutoff=1).fit(matrix)
        filled = model.fill_row(np.array([5e-9, np.nan]))
        assert filled[1] == pytest.approx(1e-8, rel=0.05)

    def test_mixed_scales(self, rng):
        """Columns nine orders of magnitude apart coexist."""
        factor = rng.normal(5.0, 2.0, size=200)
        matrix = np.column_stack(
            [factor * 1e6, factor * 1e-3]
        ) + np.column_stack(
            [rng.normal(0, 1e3, 200), rng.normal(0, 1e-6, 200)]
        )
        model = RatioRuleModel(cutoff=1).fit(matrix)
        row = matrix[0].copy()
        truth = row[1]
        row[1] = np.nan
        assert model.fill_row(row)[1] == pytest.approx(truth, rel=0.01)


class TestAdversarialRows:
    def test_fill_row_with_wrong_dtype_list(self, correlated_model):
        filled = correlated_model.fill_row([1.0, float("nan"), 2.0, 3.0, 4.0])
        assert not np.isnan(filled).any()

    def test_integer_row_input(self, correlated_model):
        # Integer arrays cannot hold NaN, so filling a complete int row
        # must work and return it unchanged.
        row = np.array([1, 2, 3, 4, 5])
        filled = correlated_model.fill_row(row)
        np.testing.assert_allclose(filled, row.astype(float))

    def test_transform_empty_matrix(self, correlated_model):
        coords = correlated_model.transform(np.empty((0, 5)))
        assert coords.shape == (0, correlated_model.k)
