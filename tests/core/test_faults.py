"""Fault-tolerance suite: retry, quarantine, degradation, exactness.

Every test here drives the scan engine through injected failures
(:mod:`repro.testing.faults`) and asserts the engine's core contract:
a recovered run -- retried, degraded, or resumed -- produces
accumulators and rules **exactly** equal to a fault-free run, because
chunk statistics and the plan-order merge sequence are unchanged by
how many times a chunk had to be attempted.
"""

import numpy as np
import pytest

from repro.core.covariance import StreamingCovariance
from repro.core.engine import (
    RetryPolicy,
    ScanFaultError,
    scan_sources,
)
from repro.core.model import RatioRuleModel
from repro.core.parallel import fit_sharded
from repro.io.csv_format import save_csv_matrix
from repro.io.rowstore import RowStore
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    corrupted_bytes,
    truncated_file,
)

pytestmark = pytest.mark.faults


@pytest.fixture
def matrix(rng):
    factor = rng.normal(5.0, 2.0, size=600)
    return np.outer(factor, [1.0, 0.5, 2.0, 1.5]) + rng.normal(0, 0.1, (600, 4))


@pytest.fixture
def csv_shards(matrix, tmp_path):
    paths = []
    for index, start in enumerate(range(0, 600, 150)):
        path = tmp_path / f"shard{index}.csv"
        save_csv_matrix(path, matrix[start : start + 150])
        paths.append(path)
    return paths


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "fault-state"


def fault_free(csv_shards):
    return scan_sources(csv_shards, executor="serial")


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            max_retries=5, backoff_seconds=0.1, max_backoff_seconds=0.3
        )
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)

    def test_zero_backoff_disables_delay(self):
        assert RetryPolicy(backoff_seconds=0.0).delay(4) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-0.5)
        with pytest.raises(ValueError, match="chunk_timeout"):
            RetryPolicy(chunk_timeout=0.0)


class TestInjector:
    def test_attempt_accounting_is_shared_and_exact(self, state_dir):
        injector = FaultInjector(state_dir, fail={3: 2})
        assert injector.attempts(3) == 0
        with pytest.raises(InjectedFault):
            injector.on_chunk_start(3)
        with pytest.raises(InjectedFault):
            injector.on_chunk_start(3)
        injector.on_chunk_start(3)  # third attempt succeeds
        assert injector.attempts(3) == 3
        # A second injector over the same state dir sees the history.
        assert FaultInjector(state_dir).attempts(3) == 3

    def test_kill_in_main_process_degrades_to_raise(self, state_dir):
        injector = FaultInjector(state_dir, kill={0: 1})
        with pytest.raises(InjectedFault, match="kill"):
            injector.on_chunk_start(0)

    def test_corrupted_bytes_restores_exactly(self, tmp_path):
        path = tmp_path / "payload.bin"
        original = bytes(range(256))
        path.write_bytes(original)
        with corrupted_bytes(path, 10, b"\xff\xff\xff\xff"):
            assert path.read_bytes() != original
            assert path.read_bytes()[10:14] == b"\xff\xff\xff\xff"
        assert path.read_bytes() == original

    def test_truncated_file_restores_exactly(self, tmp_path):
        path = tmp_path / "payload.bin"
        original = bytes(range(200))
        path.write_bytes(original)
        with truncated_file(path, 50):
            assert path.stat().st_size == 150
        assert path.read_bytes() == original

    def test_corruption_range_validated(self, tmp_path):
        path = tmp_path / "small.bin"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError, match="outside"):
            with corrupted_bytes(path, 2, b"xxxx"):
                pass
        with pytest.raises(ValueError, match="tail_bytes"):
            with truncated_file(path, 99):
                pass


class TestRetryRecovery:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_retried_scan_is_bit_identical(self, executor, csv_shards, state_dir):
        reference = fault_free(csv_shards)
        injector = FaultInjector(state_dir, fail={0: 2, 2: 1, 3: 1})
        result = scan_sources(
            csv_shards,
            executor=executor,
            max_workers=3,
            max_retries=3,
            backoff_seconds=0.0,
            fault_injector=injector,
        )
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )
        assert np.array_equal(
            result.accumulator.column_means, reference.accumulator.column_means
        )
        assert result.accumulator.n_rows == 600
        assert result.metrics.n_faults == 4
        assert result.metrics.n_retries == 4
        assert result.metrics.n_quarantined == 0

    def test_retried_fit_matches_fault_free_fit(self, csv_shards, matrix, state_dir):
        reference = RatioRuleModel(cutoff=2).fit(matrix)
        model = fit_sharded(
            csv_shards,
            cutoff=2,
            executor="thread",
            max_workers=2,
            max_retries=2,
            backoff_seconds=0.0,
            fault_injector=FaultInjector(state_dir, fail={1: 1}),
        )
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-8
        )
        np.testing.assert_allclose(model.means_, reference.means_)
        assert model.metrics_.n_faults == 1

    def test_retry_budget_exhausted_raises_by_default(self, csv_shards, state_dir):
        injector = FaultInjector(state_dir, fail={1: 99})
        with pytest.raises(ScanFaultError, match="chunk 1") as excinfo:
            scan_sources(
                csv_shards,
                executor="serial",
                max_retries=2,
                backoff_seconds=0.0,
                fault_injector=injector,
            )
        assert excinfo.value.chunk_index == 1
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        # 1 initial + 2 retries were actually attempted.
        assert injector.attempts(1) == 3


class TestQuarantine:
    def test_skip_policy_completes_on_surviving_data(
        self, csv_shards, matrix, state_dir
    ):
        result = scan_sources(
            csv_shards,
            executor="serial",
            max_retries=1,
            backoff_seconds=0.0,
            on_bad_chunk="skip",
            fault_injector=FaultInjector(state_dir, fail={1: 99}),
        )
        metrics = result.metrics
        assert metrics.n_quarantined == 1
        assert metrics.bytes_quarantined > 0
        assert len(metrics.quarantined) == 1
        record = metrics.quarantined[0]
        assert record["kind"] == "csv"
        assert "InjectedFault" in record["error"]
        # The surviving three shards are exactly the fault-free scan of them.
        surviving = [path for i, path in enumerate(csv_shards) if i != 1]
        reference = scan_sources(surviving, executor="serial")
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )
        assert result.accumulator.n_rows == 450

    def test_rowstore_quarantine_counts_rows(self, matrix, tmp_path, state_dir):
        paths = []
        for index in range(3):
            path = tmp_path / f"part{index}.rr"
            RowStore.write_matrix(path, matrix[index * 200 : (index + 1) * 200])
            paths.append(path)
        result = scan_sources(
            paths,
            executor="serial",
            on_bad_chunk="skip",
            fault_injector=FaultInjector(state_dir, fail={2: 99}),
        )
        assert result.metrics.n_quarantined == 1
        assert result.metrics.rows_quarantined == 200
        assert result.accumulator.n_rows == 400

    def test_persistent_corruption_is_quarantined(self, csv_shards, matrix):
        """A corrupted shard region fails every retry and is skipped."""
        target = csv_shards[2]
        size = target.stat().st_size
        with corrupted_bytes(target, size // 2, b"@@garbage@@"):
            result = scan_sources(
                csv_shards,
                executor="serial",
                max_retries=1,
                backoff_seconds=0.0,
                on_bad_chunk="skip",
            )
        assert result.metrics.n_quarantined >= 1
        assert result.accumulator.n_rows < 600
        # Once restored, the same call is fault-free and complete.
        clean = scan_sources(csv_shards, executor="serial")
        assert clean.accumulator.n_rows == 600
        assert clean.metrics.n_quarantined == 0

    def test_truncated_shard_strict_mode_raises(self, csv_shards):
        with truncated_file(csv_shards[3], 40):
            with pytest.raises(ScanFaultError):
                scan_sources(
                    csv_shards, executor="serial", target_chunks=4, max_retries=0
                )

    def test_bad_on_bad_chunk_rejected(self, csv_shards):
        with pytest.raises(ValueError, match="on_bad_chunk"):
            scan_sources(csv_shards, on_bad_chunk="ignore")


class TestExecutorDegradation:
    def test_killed_worker_degrades_process_pool(self, csv_shards, state_dir):
        """A hard-killed worker breaks the pool; the scan survives on threads."""
        reference = fault_free(csv_shards)
        result = scan_sources(
            csv_shards,
            executor="process",
            max_workers=2,
            max_retries=3,
            backoff_seconds=0.0,
            fault_injector=FaultInjector(state_dir, kill={1: 1}),
        )
        assert result.metrics.n_executor_downgrades >= 1
        assert result.metrics.executor in ("thread", "serial")
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )
        assert result.accumulator.n_rows == 600

    def test_repeated_kills_reach_serial(self, csv_shards, state_dir):
        """kill-on-every-process-attempt forces process -> thread -> serial."""
        reference = fault_free(csv_shards)
        # Kill budget 2: the process attempt dies; after degradation the
        # injector runs in the main process where kills become raises,
        # consuming the rest of the budget as plain faults.
        result = scan_sources(
            csv_shards,
            executor="process",
            max_workers=2,
            max_retries=4,
            backoff_seconds=0.0,
            fault_injector=FaultInjector(state_dir, kill={0: 2}),
        )
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )


class TestTimeouts:
    def test_slow_chunk_times_out_and_retries(self, csv_shards, state_dir):
        reference = fault_free(csv_shards)
        result = scan_sources(
            csv_shards,
            executor="thread",
            max_workers=2,
            max_retries=2,
            backoff_seconds=0.0,
            chunk_timeout=0.25,
            fault_injector=FaultInjector(state_dir, slow={0: 2.0}),
        )
        assert result.metrics.n_timeouts >= 1
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )

    def test_timeout_exhaustion_quarantines(self, csv_shards, state_dir):
        result = scan_sources(
            csv_shards,
            executor="thread",
            max_workers=2,
            max_retries=0,
            chunk_timeout=0.25,
            on_bad_chunk="skip",
            fault_injector=FaultInjector(
                state_dir, slow={0: 2.0}, slow_attempts=99
            ),
        )
        assert result.metrics.n_quarantined == 1
        assert result.metrics.n_timeouts == 1
        assert result.accumulator.n_rows == 450


class TestAccumulatorState:
    def test_state_round_trip_is_bit_exact(self, rng):
        accumulator = StreamingCovariance(4)
        accumulator.update(rng.normal(3.0, 2.0, size=(57, 4)))
        accumulator.update(rng.normal(-1.0, 0.5, size=(13, 4)))
        restored = StreamingCovariance.from_state(accumulator.state())
        assert restored.n_rows == accumulator.n_rows
        assert np.array_equal(restored.column_means, accumulator.column_means)
        assert np.array_equal(
            restored.scatter_matrix(), accumulator.scatter_matrix()
        )
        # And it keeps accumulating identically.
        block = rng.normal(0.0, 1.0, size=(20, 4))
        accumulator.update(block)
        restored.update(block)
        assert np.array_equal(
            restored.scatter_matrix(), accumulator.scatter_matrix()
        )

    def test_state_validation(self):
        with pytest.raises(ValueError, match="inconsistent state"):
            StreamingCovariance.from_state(
                {"count": 3, "mean": np.zeros(2), "scatter": np.zeros((3, 3))}
            )
        with pytest.raises(ValueError, match="count"):
            StreamingCovariance.from_state(
                {"count": -1, "mean": np.zeros(2), "scatter": np.zeros((2, 2))}
            )
