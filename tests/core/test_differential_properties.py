"""Differential property tests for the sharded scan engine.

The engine's central promise is *determinism*: for a fixed chunk plan,
the merged accumulator is bit-for-bit identical no matter which fabric
ran the chunks, in what order they finished, or how many times faults
forced retries.  Hypothesis drives arbitrary matrices, shard splits,
and chunk counts through serial/thread scans (and fault-injected
variants) and asserts exact equality; looser ``allclose`` bounds tie
the sharded result back to the plain in-memory :meth:`fit`.

Process-pool cases live in fixed parametrized tests (pool spawn per
hypothesis example is too slow) -- see ``TestProcessPoolDifferential``.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import scan_sources
from repro.core.model import RatioRuleModel
from repro.core.parallel import fit_sharded
from repro.io.csv_format import save_csv_matrix
from repro.testing import FaultInjector


def _make_matrix(seed, n_rows, n_cols):
    generator = np.random.default_rng(seed)
    return generator.normal(loc=1.0, scale=3.0, size=(n_rows, n_cols))


def _split(matrix, n_shards):
    return [part for part in np.array_split(matrix, n_shards) if part.size]


scan_cases = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "n_rows": st.integers(min_value=2, max_value=120),
        "n_cols": st.integers(min_value=2, max_value=6),
        "n_shards": st.integers(min_value=1, max_value=5),
        "target_chunks": st.integers(min_value=1, max_value=9),
    }
)


@settings(max_examples=25, deadline=None)
@given(case=scan_cases)
def test_thread_scan_equals_serial_scan_bitwise(case):
    """Same plan, different fabric -> identical bits."""
    matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
    shards = _split(matrix, case["n_shards"])
    serial = scan_sources(
        shards, executor="serial", target_chunks=case["target_chunks"]
    )
    threaded = scan_sources(
        shards,
        executor="thread",
        max_workers=3,
        target_chunks=case["target_chunks"],
    )
    assert serial.accumulator.n_rows == matrix.shape[0]
    assert threaded.accumulator.n_rows == matrix.shape[0]
    assert np.array_equal(
        serial.accumulator.column_means, threaded.accumulator.column_means
    )
    assert np.array_equal(
        serial.accumulator.scatter_matrix(),
        threaded.accumulator.scatter_matrix(),
    )


@settings(max_examples=25, deadline=None)
@given(case=scan_cases)
def test_faulty_scan_equals_fault_free_scan_bitwise(case):
    """Injected faults + retries never change a single bit."""
    matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
    shards = _split(matrix, case["n_shards"])
    clean = scan_sources(
        shards, executor="thread", max_workers=2,
        target_chunks=case["target_chunks"],
    )
    n_chunks = clean.metrics.n_chunks
    fail = {index: 1 for index in range(0, n_chunks, 2)}
    with tempfile.TemporaryDirectory() as state_dir:
        injector = FaultInjector(Path(state_dir), fail=fail)
        faulty = scan_sources(
            shards,
            executor="thread",
            max_workers=2,
            target_chunks=case["target_chunks"],
            max_retries=2,
            backoff_seconds=0.0,
            fault_injector=injector,
        )
    assert faulty.metrics.n_faults == len(fail)
    assert faulty.metrics.n_retries == len(fail)
    assert np.array_equal(
        clean.accumulator.column_means, faulty.accumulator.column_means
    )
    assert np.array_equal(
        clean.accumulator.scatter_matrix(),
        faulty.accumulator.scatter_matrix(),
    )


@settings(max_examples=20, deadline=None)
@given(case=scan_cases)
def test_sharded_scan_matches_single_update(case):
    """Any shard split and chunk count reproduces one-shot statistics."""
    matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
    shards = _split(matrix, case["n_shards"])
    result = scan_sources(shards, target_chunks=case["target_chunks"])
    assert result.accumulator.n_rows == matrix.shape[0]
    scale = max(np.abs(matrix).max(), 1.0)
    assert np.allclose(
        result.accumulator.column_means, matrix.mean(axis=0), atol=1e-9 * scale
    )
    centered = matrix - matrix.mean(axis=0)
    assert np.allclose(
        result.accumulator.scatter_matrix(),
        centered.T @ centered,
        atol=1e-7 * scale * scale,
    )


@settings(max_examples=15, deadline=None)
@given(
    case=st.fixed_dictionaries(
        {
            "seed": st.integers(min_value=0, max_value=2**32 - 1),
            "n_rows": st.integers(min_value=8, max_value=100),
            "n_cols": st.integers(min_value=2, max_value=5),
            "n_shards": st.integers(min_value=1, max_value=4),
            "target_chunks": st.integers(min_value=1, max_value=6),
        }
    )
)
def test_fit_sharded_matches_in_memory_fit(case):
    """fit_sharded over any split agrees with the in-memory fit."""
    matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
    shards = _split(matrix, case["n_shards"])
    sharded = fit_sharded(shards, target_chunks=case["target_chunks"])
    in_memory = RatioRuleModel().fit(matrix)
    assert sharded.n_rows_ == in_memory.n_rows_
    assert np.allclose(sharded.means_, in_memory.means_, atol=1e-9)
    assert np.allclose(
        sharded.eigenvalues_, in_memory.eigenvalues_, rtol=1e-8, atol=1e-8
    )
    assert sharded.rules_.k == in_memory.rules_.k
    # Eigenvectors are sign-ambiguous; compare up to per-rule sign.
    for mined, expected in zip(
        sharded.rules_.matrix.T, in_memory.rules_.matrix.T
    ):
        agreement = abs(float(np.dot(mined, expected)))
        assert agreement == pytest.approx(1.0, abs=1e-6)


@pytest.mark.faults
class TestProcessPoolDifferential:
    """Fixed (non-hypothesis) cases that spin up real process pools."""

    @pytest.fixture
    def csv_shards(self, tmp_path, rng):
        matrix = rng.normal(loc=2.0, scale=1.5, size=(300, 4))
        paths = []
        for index, part in enumerate(np.array_split(matrix, 3)):
            path = tmp_path / f"shard{index}.csv"
            save_csv_matrix(path, part)
            paths.append(path)
        return paths

    @pytest.mark.parametrize("target_chunks", [3, 5, 8])
    def test_process_scan_equals_serial_scan_bitwise(
        self, csv_shards, target_chunks
    ):
        serial = scan_sources(
            csv_shards, executor="serial", target_chunks=target_chunks
        )
        pooled = scan_sources(
            csv_shards,
            executor="process",
            max_workers=2,
            target_chunks=target_chunks,
        )
        assert pooled.metrics.executor == "process"
        assert np.array_equal(
            serial.accumulator.column_means, pooled.accumulator.column_means
        )
        assert np.array_equal(
            serial.accumulator.scatter_matrix(),
            pooled.accumulator.scatter_matrix(),
        )

    def test_faulty_process_scan_equals_serial_scan_bitwise(
        self, csv_shards, tmp_path
    ):
        serial = scan_sources(csv_shards, executor="serial", target_chunks=3)
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        pooled = scan_sources(
            csv_shards,
            executor="process",
            max_workers=2,
            target_chunks=3,
            max_retries=3,
            backoff_seconds=0.0,
            fault_injector=FaultInjector(state_dir, fail={0: 2, 2: 1}),
        )
        assert pooled.metrics.n_faults == 3
        assert np.array_equal(
            serial.accumulator.scatter_matrix(),
            pooled.accumulator.scatter_matrix(),
        )
