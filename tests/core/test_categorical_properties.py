"""Property-based tests for the categorical encoding layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categorical import (
    CategoricalAttribute,
    CategoricalRatioRuleModel,
    MixedSchema,
)

CATEGORIES = ("red", "green", "blue")

numeric_values = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)


def mixed_rows(n_rows):
    return st.lists(
        st.tuples(numeric_values, numeric_values, st.sampled_from(CATEGORIES)).map(
            list
        ),
        min_size=n_rows,
        max_size=n_rows,
    )


def make_model(rows):
    schema = MixedSchema(
        ["x", "y", CategoricalAttribute("color", CATEGORIES)]
    )
    model = CategoricalRatioRuleModel(schema, cutoff=2)
    model.fit(rows)
    return model


@settings(max_examples=25, deadline=None)
@given(rows=mixed_rows(10))
def test_encode_width_and_indicator_structure(rows):
    model = make_model(rows)
    encoded = model.encode_rows(rows)
    assert encoded.shape == (10, 5)  # 2 numeric + 3 indicators
    # Indicator block: exactly one nonzero per row, all the same scale.
    indicators = encoded[:, 2:]
    nonzero_per_row = (indicators != 0).sum(axis=1)
    assert np.all(nonzero_per_row == 1)
    scales = indicators[indicators != 0]
    assert np.allclose(scales, scales[0])


@settings(max_examples=25, deadline=None)
@given(rows=mixed_rows(10))
def test_known_fields_pass_through_fill_row(rows):
    model = make_model(rows)
    for row in rows[:3]:
        filled = model.fill_row(row)
        assert filled[0] == pytest.approx(float(row[0]))
        assert filled[1] == pytest.approx(float(row[1]))
        assert filled[2] == row[2]


@settings(max_examples=25, deadline=None)
@given(rows=mixed_rows(12))
def test_predicted_category_is_in_vocabulary(rows):
    model = make_model(rows)
    probe = list(rows[0])
    probe[2] = None
    for method in ("argmax", "residual"):
        assert model.predict_category(probe, "color", method=method) in CATEGORIES
