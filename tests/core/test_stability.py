"""Tests for bootstrap rule stability."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.stability import bootstrap_stability


@pytest.fixture
def strong_weak_data(rng):
    """One overwhelming factor plus two equal (hence unstable) weak ones."""
    n = 400
    strong = rng.normal(0, 10.0, size=n)
    weak_a = rng.normal(0, 1.0, size=n)
    weak_b = rng.normal(0, 1.0, size=n)  # same strength as weak_a
    basis = np.array(
        [
            [1.0, 1.0, 1.0, 1.0],
            [1.0, -1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, -1.0],
        ]
    )
    basis = basis / np.linalg.norm(basis, axis=1, keepdims=True)
    return (
        np.column_stack([strong, weak_a, weak_b]) @ basis
        + rng.normal(0, 0.01, (n, 4))
    )


class TestBootstrapStability:
    def test_strong_rule_stable(self, strong_weak_data):
        model = RatioRuleModel(cutoff=3).fit(strong_weak_data)
        report = bootstrap_stability(model, strong_weak_data, n_resamples=20, seed=0)
        median, p90 = report.rule_stability(0)
        assert median < 2.0
        assert p90 < 5.0
        assert 0 in report.stable_rules()

    def test_degenerate_pair_less_stable_than_strong(self, strong_weak_data):
        """Two equal eigenvalues: their individual eigenvectors rotate
        freely under resampling, while RR1 stays pinned."""
        model = RatioRuleModel(cutoff=3).fit(strong_weak_data)
        report = bootstrap_stability(model, strong_weak_data, n_resamples=20, seed=0)
        strong_median, _ = report.rule_stability(0)
        weak_median, _ = report.rule_stability(1)
        assert weak_median > strong_median

    def test_subspace_stable_even_when_rules_rotate(self, strong_weak_data):
        """The degenerate pair spans a stable 2-d subspace even though the
        individual vectors within it spin."""
        model = RatioRuleModel(cutoff=3).fit(strong_weak_data)
        report = bootstrap_stability(model, strong_weak_data, n_resamples=20, seed=0)
        assert float(np.median(report.subspace_angles_degrees)) < 10.0

    def test_describe_structure(self, strong_weak_data):
        model = RatioRuleModel(cutoff=2).fit(strong_weak_data)
        report = bootstrap_stability(model, strong_weak_data, n_resamples=10)
        text = report.describe()
        assert "RR1" in text and "RR2" in text
        assert "subspace" in text

    def test_deterministic(self, strong_weak_data):
        model = RatioRuleModel(cutoff=2).fit(strong_weak_data)
        a = bootstrap_stability(model, strong_weak_data, n_resamples=8, seed=3)
        b = bootstrap_stability(model, strong_weak_data, n_resamples=8, seed=3)
        np.testing.assert_array_equal(
            a.subspace_angles_degrees, b.subspace_angles_degrees
        )

    def test_validation(self, strong_weak_data):
        model = RatioRuleModel(cutoff=2).fit(strong_weak_data)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_stability(model, strong_weak_data, n_resamples=1)
        with pytest.raises(ValueError, match="fitted"):
            bootstrap_stability(RatioRuleModel(), strong_weak_data)
        with pytest.raises(ValueError, match="2-d"):
            bootstrap_stability(model, strong_weak_data[0])
