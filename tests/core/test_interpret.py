"""Tests for rule interpretation (Fig. 10 methodology, Table 2 rendering)."""

import numpy as np
import pytest

from repro.core.interpret import (
    _simple_ratio,
    interpret_rule,
    interpret_rules,
    loading_table,
)
from repro.core.rules import RatioRule, RuleSet
from repro.io.schema import TableSchema


@pytest.fixture
def schema():
    return TableSchema.from_names(["minutes", "points", "rebounds", "assists"])


def make_rule(schema, loadings, index=0, eigenvalue=10.0, energy=0.8):
    return RatioRule(
        index=index,
        loadings=np.asarray(loadings, dtype=np.float64),
        eigenvalue=eigenvalue,
        energy_fraction=energy,
        schema=schema,
    )


class TestInterpretRule:
    def test_volume_factor_detected(self, schema):
        rule = make_rule(schema, [0.8, 0.4, 0.3, 0.3])
        interpretation = interpret_rule(rule)
        assert interpretation.is_size_factor()
        assert interpretation.negative == ()
        assert interpretation.positive[0][0] == "minutes"

    def test_contrast_factor_detected(self, schema):
        rule = make_rule(schema, [0.1, -0.5, 0.8, 0.02])
        interpretation = interpret_rule(rule)
        assert not interpretation.is_size_factor()
        assert [name for name, _v in interpretation.positive] == ["rebounds"]
        assert [name for name, _v in interpretation.negative] == ["points"]

    def test_threshold_blanks_small_loadings(self, schema):
        rule = make_rule(schema, [0.9, 0.05, 0.05, 0.05])
        interpretation = interpret_rule(rule, threshold=0.2)
        assert len(interpretation.positive) == 1

    def test_cross_sign_ratio_computed(self, schema):
        # The paper's RR2 reading: rebounds:points = 0.489:0.199 = 2.45:1.
        rule = make_rule(schema, [0.0, -0.199, 0.489, 0.0])
        interpretation = interpret_rule(rule)
        pairs = {(a, b): r for a, b, r in interpretation.ratios}
        assert ("rebounds", "points") in pairs
        assert pairs[("rebounds", "points")] == pytest.approx(2.457, abs=0.01)

    def test_narrative_mentions_energy(self, schema):
        rule = make_rule(schema, [0.8, 0.4, 0.3, 0.3], energy=0.87)
        text = interpret_rule(rule).narrative()
        assert "87.0%" in text
        assert "RR1" in text

    def test_narrative_contrast_wording(self, schema):
        rule = make_rule(schema, [0.1, -0.6, 0.7, 0.02], index=1)
        text = interpret_rule(rule).narrative()
        assert "contrasts" in text
        assert "rebounds" in text and "points" in text


class TestSimpleRatio:
    def test_near_integer_ratio(self):
        assert _simple_ratio(2.02) == "2:1"

    def test_small_fraction(self):
        assert _simple_ratio(1.5) == "3:2"

    def test_awkward_ratio_falls_back(self):
        assert _simple_ratio(2.4567) == "2.46:1"

    def test_negative_uses_magnitude(self):
        assert _simple_ratio(-3.0) == "3:1"


class TestLoadingTable:
    def _rules(self, schema):
        return RuleSet(
            [
                make_rule(schema, [0.8, 0.45, 0.3, 0.3], index=0),
                make_rule(
                    schema,
                    [0.05, -0.5, 0.8, 0.02],
                    index=1,
                    eigenvalue=2.0,
                    energy=0.15,
                ),
            ]
        )

    def test_structure(self, schema):
        table = loading_table(self._rules(schema))
        lines = table.splitlines()
        assert "RR1" in lines[0] and "RR2" in lines[0]
        assert len(lines) == 2 + schema.width

    def test_small_loadings_blanked(self, schema):
        table = loading_table(self._rules(schema))
        minutes_line = next(l for l in table.splitlines() if l.startswith("minutes"))
        # RR2 loading on minutes (0.05 vs peak 0.8) must be blank.
        assert "0.05" not in minutes_line

    def test_interpret_rules_covers_all(self, schema):
        interpretations = interpret_rules(self._rules(schema))
        assert [i.rule.name for i in interpretations] == ["RR1", "RR2"]
