"""Tests for RatioRule / RuleSet value objects."""

import numpy as np
import pytest

from repro.core.rules import RatioRule, RuleSet
from repro.io.schema import TableSchema


@pytest.fixture
def schema():
    return TableSchema.from_names(["bread", "milk", "butter"])


def make_rule(schema, index=0, loadings=(0.8, 0.5, 0.3), eigenvalue=5.0, energy=0.7):
    return RatioRule(
        index=index,
        loadings=np.asarray(loadings, dtype=np.float64),
        eigenvalue=eigenvalue,
        energy_fraction=energy,
        schema=schema,
    )


class TestRatioRule:
    def test_name_is_one_based(self, schema):
        assert make_rule(schema, index=0).name == "RR1"
        assert make_rule(schema, index=2).name == "RR3"

    def test_loading_of(self, schema):
        rule = make_rule(schema, loadings=(0.1, 0.2, 0.3))
        assert rule.loading_of("milk") == pytest.approx(0.2)

    def test_loading_of_missing_attribute(self, schema):
        with pytest.raises(KeyError):
            make_rule(schema).loading_of("caviar")

    def test_dominant_attributes_sorted_and_thresholded(self, schema):
        rule = make_rule(schema, loadings=(0.9, -0.5, 0.05))
        dominant = rule.dominant_attributes(threshold=0.2)
        assert dominant == [
            ("bread", pytest.approx(0.9)),
            ("milk", pytest.approx(-0.5)),
        ]

    def test_dominant_attributes_zero_rule(self, schema):
        rule = make_rule(schema, loadings=(0.0, 0.0, 0.0))
        assert rule.dominant_attributes() == []

    def test_ratio_string_default(self, schema):
        rule = make_rule(schema, loadings=(0.866, 0.5, 0.01))
        text = rule.ratio_string()
        assert "bread : milk" in text
        assert "0.866 : 0.500" in text

    def test_ratio_string_explicit_attributes(self, schema):
        rule = make_rule(schema, loadings=(0.8, 0.5, 0.3))
        text = rule.ratio_string(["bread", "butter"], digits=2)
        assert text == "bread : butter => 0.80 : 0.30"

    def test_histogram_string_structure(self, schema):
        text = make_rule(schema).histogram_string()
        lines = text.splitlines()
        assert lines[0].startswith("RR1")
        assert len(lines) == 1 + schema.width
        assert "bread" in lines[1]

    def test_wrong_loading_length_rejected(self, schema):
        with pytest.raises(ValueError, match="length"):
            make_rule(schema, loadings=(1.0, 2.0))


class TestRuleSet:
    def _make_set(self, schema):
        rules = [
            make_rule(
                schema, index=0, loadings=(0.9, 0.3, 0.3), eigenvalue=8.0, energy=0.8
            ),
            make_rule(
                schema, index=1, loadings=(-0.3, 0.9, 0.1), eigenvalue=1.5, energy=0.15
            ),
        ]
        return RuleSet(rules)

    def test_container_protocol(self, schema):
        rules = self._make_set(schema)
        assert len(rules) == 2
        assert rules.k == 2
        assert rules[1].name == "RR2"
        assert [rule.name for rule in rules] == ["RR1", "RR2"]

    def test_matrix_shape_and_content(self, schema):
        rules = self._make_set(schema)
        matrix = rules.matrix
        assert matrix.shape == (3, 2)
        np.testing.assert_allclose(matrix[:, 0], [0.9, 0.3, 0.3])

    def test_matrix_is_copy(self, schema):
        rules = self._make_set(schema)
        rules.matrix[0, 0] = 99.0
        assert rules.matrix[0, 0] == pytest.approx(0.9)

    def test_eigenvalues(self, schema):
        np.testing.assert_allclose(self._make_set(schema).eigenvalues, [8.0, 1.5])

    def test_total_energy(self, schema):
        assert self._make_set(schema).total_energy_fraction() == pytest.approx(0.95)

    def test_truncate(self, schema):
        truncated = self._make_set(schema).truncate(1)
        assert truncated.k == 1
        assert truncated[0].name == "RR1"

    def test_truncate_bounds(self, schema):
        rules = self._make_set(schema)
        with pytest.raises(ValueError):
            rules.truncate(0)
        with pytest.raises(ValueError):
            rules.truncate(3)

    def test_describe_mentions_energy(self, schema):
        text = self._make_set(schema).describe()
        assert "2 Ratio Rules" in text
        assert "95.0%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RuleSet([])

    def test_mixed_schema_rejected(self, schema):
        other_schema = TableSchema.from_names(["x", "y", "z"])
        rules = [make_rule(schema, index=0), make_rule(other_schema, index=1)]
        with pytest.raises(ValueError, match="share one schema"):
            RuleSet(rules)

    def test_non_contiguous_indices_rejected(self, schema):
        rules = [make_rule(schema, index=0), make_rule(schema, index=2)]
        with pytest.raises(ValueError, match="contiguous"):
            RuleSet(rules)

    def test_from_eigen(self, schema):
        eigenvalues = np.array([4.0, 1.0])
        eigenvectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        rules = RuleSet.from_eigen(eigenvalues, eigenvectors, 5.0, schema)
        assert rules.k == 2
        assert rules[0].energy_fraction == pytest.approx(0.8)
        np.testing.assert_allclose(rules.matrix, eigenvectors)

    def test_from_eigen_count_mismatch(self, schema):
        with pytest.raises(ValueError, match="mismatch"):
            RuleSet.from_eigen(np.array([1.0]), np.ones((3, 2)), 1.0, schema)
