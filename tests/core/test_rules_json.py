"""Tests for JSON export of rule sets."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema


@pytest.fixture
def fitted_model(rng):
    factor = rng.normal(5.0, 2.0, size=200)
    matrix = np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (200, 3))
    schema = TableSchema.from_names(["bread", "milk", "butter"])
    return RatioRuleModel(cutoff=2).fit(matrix, schema)


class TestRuleSetToJSON:
    def test_structure(self, fitted_model):
        payload = json.loads(fitted_model.rules_.to_json())
        assert payload["k"] == 2
        assert payload["attributes"] == ["bread", "milk", "butter"]
        assert 0 < payload["total_energy_fraction"] <= 1.0 + 1e-9
        assert len(payload["rules"]) == 2
        rr1 = payload["rules"][0]
        assert rr1["name"] == "RR1"
        assert set(rr1["loadings"]) == {"bread", "milk", "butter"}

    def test_loadings_match_matrix(self, fitted_model):
        payload = json.loads(fitted_model.rules_.to_json())
        v = fitted_model.rules_matrix
        for j, name in enumerate(["bread", "milk", "butter"]):
            assert payload["rules"][0]["loadings"][name] == pytest.approx(v[j, 0])

    def test_compact_mode(self, fitted_model):
        text = fitted_model.rules_.to_json(indent=None)
        assert "\n" not in text
        json.loads(text)

    def test_cli_json_flag(self, fitted_model, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        fitted_model.save(model_path)
        assert main(["rules", str(model_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 2
