"""Tests for RatioRuleModel end to end."""

import numpy as np
import pytest

from repro.core.model import NotFittedError, RatioRuleModel
from repro.io.rowstore import RowStore
from repro.io.schema import TableSchema


class TestFigure1:
    """The paper's running example (Fig. 1): 5 customers x 2 products."""

    def test_first_rule_direction(self, figure1_matrix):
        model = RatioRuleModel().fit(figure1_matrix)
        assert model.k == 1
        direction = model.rules_[0].loadings
        # The paper reports (0.866, 0.5): bread-heavy, both positive.
        assert direction[0] > direction[1] > 0
        np.testing.assert_allclose(np.linalg.norm(direction), 1.0, atol=1e-12)
        assert direction[0] == pytest.approx(0.866, abs=0.06)
        assert direction[1] == pytest.approx(0.5, abs=0.06)

    def test_forecast_butter_from_bread(self, figure1_matrix):
        model = RatioRuleModel().fit(figure1_matrix)
        filled = model.fill_row(np.array([8.50, np.nan]))
        # Extrapolation along the ratio line: a big bread spend implies
        # a proportionally big butter spend.
        assert filled[1] > 4.0


class TestFitBasics:
    def test_fit_returns_self(self, correlated_matrix):
        model = RatioRuleModel()
        assert model.fit(correlated_matrix) is model

    def test_learned_state_populated(self, correlated_matrix):
        model = RatioRuleModel().fit(correlated_matrix)
        assert model.rules_ is not None
        assert model.means_.shape == (5,)
        assert model.n_rows_ == 300
        assert model.eigenvalues_.shape == (model.k,)
        assert model.total_variance_ > 0

    def test_unfitted_raises(self):
        model = RatioRuleModel()
        with pytest.raises(NotFittedError):
            _ = model.k
        with pytest.raises(NotFittedError):
            model.fill_row(np.array([1.0, np.nan]))
        with pytest.raises(NotFittedError):
            model.transform(np.ones((2, 5)))

    def test_rank2_data_yields_k2(self, correlated_matrix):
        model = RatioRuleModel().fit(correlated_matrix)
        # Rank-2 structure with tiny noise: 85% rule needs at most 2.
        assert model.k <= 2

    def test_fixed_cutoff(self, correlated_matrix):
        model = RatioRuleModel(cutoff=3).fit(correlated_matrix)
        assert model.k == 3

    def test_energy_cutoff_float(self, correlated_matrix):
        strict = RatioRuleModel(cutoff=0.9999).fit(correlated_matrix)
        loose = RatioRuleModel(cutoff=0.5).fit(correlated_matrix)
        assert strict.k >= loose.k

    def test_schema_from_argument(self, correlated_matrix):
        schema = TableSchema.from_names(["a", "b", "c", "d", "e"])
        model = RatioRuleModel().fit(correlated_matrix, schema=schema)
        assert model.schema_.names == ["a", "b", "c", "d", "e"]

    def test_fit_from_rowstore_path(self, correlated_matrix, tmp_path):
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, correlated_matrix)
        model = RatioRuleModel().fit(path)
        reference = RatioRuleModel().fit(correlated_matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-9
        )

    def test_textbook_accumulator_equivalent_on_benign_data(self, correlated_matrix):
        stable = RatioRuleModel().fit(correlated_matrix)
        textbook = RatioRuleModel(accumulator="textbook").fit(correlated_matrix)
        np.testing.assert_allclose(
            stable.rules_matrix, textbook.rules_matrix, atol=1e-6
        )


class TestBackends:
    @pytest.mark.parametrize(
        "backend", ["numpy", "jacobi", "householder", "power", "lanczos"]
    )
    def test_backends_agree(self, correlated_matrix, backend):
        reference = RatioRuleModel(cutoff=2).fit(correlated_matrix)
        model = RatioRuleModel(cutoff=2, backend=backend).fit(correlated_matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-5
        )
        np.testing.assert_allclose(
            model.eigenvalues_, reference.eigenvalues_, rtol=1e-5
        )

    @pytest.mark.parametrize("backend", ["power", "lanczos"])
    def test_iterative_backends_with_energy_cutoff(self, correlated_matrix, backend):
        """Adaptive k-growth must satisfy the 85% rule."""
        model = RatioRuleModel(backend=backend).fit(correlated_matrix)
        assert model.rules_.total_energy_fraction() >= 0.85 - 1e-9


class TestEstimation:
    def test_fill_row_handles_multiple_holes(self, correlated_model):
        row = np.array([5.0, np.nan, 2.5, np.nan, 7.5])
        filled = correlated_model.fill_row(row)
        assert not np.isnan(filled).any()
        assert filled[0] == 5.0

    def test_fill_matrix(self, correlated_model, correlated_matrix):
        punched = correlated_matrix[:10].copy()
        punched[3, 2] = np.nan
        filled = correlated_model.fill(punched)
        assert not np.isnan(filled).any()
        # Low-noise rank-2 data: reconstruction lands close to the truth.
        assert abs(filled[3, 2] - correlated_matrix[3, 2]) < 1.0

    def test_predict_holes_matches_fill_row(self, correlated_model, correlated_matrix):
        test = correlated_matrix[:6]
        holes = [1, 4]
        batch = correlated_model.predict_holes(test, holes)
        for i in range(test.shape[0]):
            row = test[i].copy()
            row[holes] = np.nan
            filled = correlated_model.fill_row(row)
            np.testing.assert_allclose(batch[i], filled[holes], atol=1e-9)

    def test_predict_holes_column_order_respected(
        self, correlated_model, correlated_matrix
    ):
        test = correlated_matrix[:4]
        forward = correlated_model.predict_holes(test, [1, 3])
        backward = correlated_model.predict_holes(test, [3, 1])
        np.testing.assert_allclose(forward[:, 0], backward[:, 1])
        np.testing.assert_allclose(forward[:, 1], backward[:, 0])

    def test_predict_holes_ignores_target_values(
        self, correlated_model, correlated_matrix
    ):
        """The prediction must not peek at the hidden column."""
        test = correlated_matrix[:5].copy()
        baseline_prediction = correlated_model.predict_holes(test, [2])
        test[:, 2] = 1e6  # corrupt the target column wildly
        corrupted_prediction = correlated_model.predict_holes(test, [2])
        np.testing.assert_allclose(baseline_prediction, corrupted_prediction)


class TestProjection:
    def test_transform_shape(self, correlated_model, correlated_matrix):
        coords = correlated_model.transform(correlated_matrix)
        assert coords.shape == (300, correlated_model.k)

    def test_transform_single_row(self, correlated_model, correlated_matrix):
        coords = correlated_model.transform(correlated_matrix[0])
        assert coords.shape == (1, correlated_model.k)

    def test_inverse_transform_round_trip(self, correlated_model, correlated_matrix):
        """On near-rank-k data, transform -> inverse is near-identity."""
        coords = correlated_model.transform(correlated_matrix)
        restored = correlated_model.inverse_transform(coords)
        error = np.abs(restored - correlated_matrix).max()
        assert error < 0.5  # noise-scale, not data-scale (data spans ~30)

    def test_reconstruct_is_projection(self, correlated_model, correlated_matrix):
        """Reconstructing twice equals reconstructing once (idempotent)."""
        once = correlated_model.reconstruct(correlated_matrix)
        twice = correlated_model.reconstruct(once)
        np.testing.assert_allclose(once, twice, atol=1e-8)


class TestPersistence:
    def test_save_load_round_trip(self, correlated_model, correlated_matrix, tmp_path):
        path = tmp_path / "model.npz"
        correlated_model.save(path)
        restored = RatioRuleModel.load(path)
        np.testing.assert_allclose(
            restored.rules_matrix, correlated_model.rules_matrix
        )
        np.testing.assert_allclose(restored.means_, correlated_model.means_)
        assert restored.n_rows_ == correlated_model.n_rows_
        assert restored.schema_.names == correlated_model.schema_.names
        # The restored model predicts identically.
        row = np.array([5.0, np.nan, 2.5, 15.0, 7.5])
        np.testing.assert_allclose(
            restored.fill_row(row), correlated_model.fill_row(row)
        )

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            RatioRuleModel().save(tmp_path / "nope.npz")


class TestDescribe:
    def test_describe_contains_rules(self, correlated_model):
        text = correlated_model.describe()
        assert "RR1" in text
        assert "Ratio Rules" in text
