"""Checkpoint/resume tests for the fault-tolerant scan engine.

The acceptance bar: a scan that dies partway through must, on resume,
finish from the checkpoint *without rescanning the chunks it already
completed*, and the final accumulator must be bit-for-bit identical to
an uninterrupted run.  Rescans are detected with the fault injector's
cross-process attempt counters, which persist in the shared state dir
across both runs.
"""

import numpy as np
import pytest

from repro.core.covariance import StreamingCovariance
from repro.core.engine import ScanCheckpoint, ScanFaultError, plan_chunks, scan_sources
from repro.core.parallel import fit_sharded
from repro.io.csv_format import save_csv_matrix
from repro.testing import FaultInjector


@pytest.fixture
def matrix(rng):
    return rng.normal(loc=3.0, scale=2.0, size=(400, 5))


@pytest.fixture
def csv_shards(tmp_path, matrix):
    paths = []
    for index, part in enumerate(np.array_split(matrix, 4)):
        path = tmp_path / f"shard{index}.csv"
        save_csv_matrix(path, part)
        paths.append(path)
    return paths


@pytest.fixture
def state_dir(tmp_path):
    path = tmp_path / "fault-state"
    path.mkdir()
    return path


class TestScanCheckpointStore:
    def test_flush_requires_bound_plan(self, tmp_path):
        store = ScanCheckpoint(tmp_path / "scan.ckpt")
        with pytest.raises(ValueError, match="bind_plan"):
            store.flush()

    def test_round_trip_is_bit_exact(self, tmp_path, csv_shards, rng):
        chunks, _ = plan_chunks(csv_shards[0], target_chunks=2)
        store = ScanCheckpoint(tmp_path / "scan.ckpt")
        store.bind_plan(chunks, block_rows=64)

        partials = {}
        for index in range(2):
            accumulator = StreamingCovariance(5)
            accumulator.update(rng.normal(size=(37, 5)))
            store.record(index, accumulator, n_blocks=index + 1)
            partials[index] = accumulator

        loaded = ScanCheckpoint.load(tmp_path / "scan.ckpt")
        assert loaded.matches(chunks, block_rows=64)
        assert not loaded.matches(chunks, block_rows=128)
        assert sorted(loaded.completed) == [0, 1]
        for index, original in partials.items():
            restored, n_blocks = loaded.completed[index]
            assert n_blocks == index + 1
            assert restored.n_rows == original.n_rows
            assert np.array_equal(restored.column_means, original.column_means)
            assert np.array_equal(
                restored.covariance(ddof=0), original.covariance(ddof=0)
            )

    def test_flush_leaves_no_temp_file(self, tmp_path, csv_shards):
        target = tmp_path / "scan.ckpt"
        store = ScanCheckpoint(target)
        chunks, _ = plan_chunks(csv_shards[0], target_chunks=1)
        store.bind_plan(chunks, block_rows=64)
        accumulator = StreamingCovariance(5)
        accumulator.update(np.ones((3, 5)))
        store.record(0, accumulator, n_blocks=1)
        assert target.exists()
        assert not target.with_name(target.name + ".tmp").exists()

    def test_plan_fingerprint_tracks_chunking(self, tmp_path, csv_shards):
        two, _ = plan_chunks(csv_shards[0], target_chunks=2)
        three, _ = plan_chunks(csv_shards[0], target_chunks=3)
        store = ScanCheckpoint(tmp_path / "scan.ckpt")
        store.bind_plan(two, block_rows=64)
        assert store.matches(two, block_rows=64)
        assert not store.matches(three, block_rows=64)


class TestScanSourcesValidation:
    def test_resume_requires_checkpoint_path(self, csv_shards):
        with pytest.raises(ValueError, match="requires a checkpoint"):
            scan_sources(csv_shards, resume=True)

    def test_checkpoint_rejects_in_memory_sources(self, tmp_path, matrix):
        with pytest.raises(ValueError, match="file-backed"):
            scan_sources([matrix], checkpoint=tmp_path / "scan.ckpt")

    def test_resume_rejects_mismatched_plan(self, tmp_path, csv_shards):
        path = tmp_path / "scan.ckpt"
        scan_sources(csv_shards, target_chunks=4, checkpoint=path)
        with pytest.raises(ValueError, match="different scan plan"):
            scan_sources(
                csv_shards, target_chunks=8, checkpoint=path, resume=True
            )
        with pytest.raises(ValueError, match="different scan plan"):
            scan_sources(
                csv_shards,
                target_chunks=4,
                block_rows=7,
                checkpoint=path,
                resume=True,
            )


class TestCheckpointDuringScan:
    def test_clean_run_records_every_chunk(self, tmp_path, csv_shards):
        path = tmp_path / "scan.ckpt"
        result = scan_sources(csv_shards, target_chunks=4, checkpoint=path)
        loaded = ScanCheckpoint.load(path)
        assert sorted(loaded.completed) == [0, 1, 2, 3]
        total = sum(acc.n_rows for acc, _ in loaded.completed.values())
        assert total == result.accumulator.n_rows == 400

    def test_resume_without_existing_file_runs_fresh(self, tmp_path, csv_shards):
        path = tmp_path / "scan.ckpt"
        result = scan_sources(
            csv_shards, target_chunks=4, checkpoint=path, resume=True
        )
        assert result.metrics.n_chunks_resumed == 0
        assert result.accumulator.n_rows == 400


@pytest.mark.faults
class TestInterruptedThenResumed:
    def test_resume_skips_finished_chunks_and_matches_bits(
        self, tmp_path, csv_shards, state_dir
    ):
        reference = scan_sources(csv_shards, target_chunks=4)
        path = tmp_path / "scan.ckpt"

        # First run: chunk 2 faults with no retry budget -> the scan
        # aborts, but chunks 0, 1 and 3 are already checkpointed.
        injector = FaultInjector(state_dir, fail={2: 1})
        with pytest.raises(ScanFaultError) as excinfo:
            scan_sources(
                csv_shards,
                target_chunks=4,
                checkpoint=path,
                fault_injector=injector,
            )
        assert excinfo.value.chunk_index == 2
        attempts_before = {index: injector.attempts(index) for index in range(4)}
        assert attempts_before == {0: 1, 1: 1, 2: 1, 3: 1}
        assert sorted(ScanCheckpoint.load(path).completed) == [0, 1, 3]

        # Second run resumes: only chunk 2 is rescanned.  The injector
        # shares the first run's state dir, so its one fault is already
        # spent and the per-chunk attempt counters carry over.
        result = scan_sources(
            csv_shards,
            target_chunks=4,
            checkpoint=path,
            resume=True,
            fault_injector=FaultInjector(state_dir, fail={2: 1}),
        )
        attempts_after = {index: injector.attempts(index) for index in range(4)}
        assert attempts_after == {0: 1, 1: 1, 2: 2, 3: 1}

        assert result.metrics.n_chunks_resumed == 3
        assert result.accumulator.n_rows == 400
        assert np.array_equal(
            result.accumulator.column_means, reference.accumulator.column_means
        )
        assert np.array_equal(
            result.accumulator.covariance(ddof=0),
            reference.accumulator.covariance(ddof=0),
        )

    def test_fit_sharded_resumes_to_identical_model(
        self, tmp_path, csv_shards, state_dir
    ):
        reference = fit_sharded(csv_shards, target_chunks=4)
        path = tmp_path / "fit.ckpt"

        with pytest.raises(ScanFaultError):
            fit_sharded(
                csv_shards,
                target_chunks=4,
                checkpoint=path,
                fault_injector=FaultInjector(state_dir, fail={1: 1}),
            )

        model = fit_sharded(
            csv_shards,
            target_chunks=4,
            checkpoint=path,
            resume=True,
            fault_injector=FaultInjector(state_dir, fail={1: 1}),
        )
        assert model.metrics_.n_chunks_resumed == 3
        assert model.n_rows_ == reference.n_rows_
        assert np.array_equal(model.means_, reference.means_)
        assert np.array_equal(model.eigenvalues_, reference.eigenvalues_)
        assert np.array_equal(
            model.rules_.matrix, reference.rules_.matrix
        )

    def test_pooled_resume_matches_serial_reference(
        self, tmp_path, csv_shards, state_dir
    ):
        reference = scan_sources(csv_shards, target_chunks=4)
        path = tmp_path / "scan.ckpt"

        with pytest.raises(ScanFaultError):
            scan_sources(
                csv_shards,
                target_chunks=4,
                executor="thread",
                max_workers=2,
                checkpoint=path,
                fault_injector=FaultInjector(state_dir, fail={0: 1}),
            )

        result = scan_sources(
            csv_shards,
            target_chunks=4,
            executor="thread",
            max_workers=2,
            checkpoint=path,
            resume=True,
            fault_injector=FaultInjector(state_dir, fail={0: 1}),
        )
        assert result.metrics.n_chunks_resumed >= 1
        assert np.array_equal(
            result.accumulator.covariance(ddof=0),
            reference.accumulator.covariance(ddof=0),
        )
