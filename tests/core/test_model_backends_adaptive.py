"""Tests for the adaptive k-growth of iterative backends."""

import numpy as np
import pytest

from repro.core.energy import ScreeCutoff
from repro.core.model import RatioRuleModel


@pytest.fixture
def wide_rank3(rng):
    """30 columns, 3 strong factors -- forces at least one growth step
    for iterative backends that start at k=8 only if the policy needs
    more; here the policy should settle quickly."""
    scores = rng.standard_normal((400, 3)) * np.array([10.0, 6.0, 3.0])
    loadings = rng.standard_normal((3, 30))
    return scores @ loadings + rng.normal(0, 0.05, (400, 30))


class TestAdaptiveGrowth:
    @pytest.mark.parametrize("backend", ["power", "lanczos"])
    def test_scree_cutoff_with_iterative_backend(self, wide_rank3, backend):
        model = RatioRuleModel(cutoff=ScreeCutoff(), backend=backend).fit(wide_rank3)
        # The scree elbow on rank-3 data is within the first 3 rules.
        assert 1 <= model.k <= 3

    @pytest.mark.parametrize("backend", ["power", "lanczos"])
    def test_energy_cutoff_grows_until_threshold(self, rng, backend):
        """A flat spectrum needs many rules; the growth loop must keep
        requesting more eigenpairs until 85% is covered."""
        matrix = rng.standard_normal((300, 24))  # white noise: flat spectrum
        model = RatioRuleModel(backend=backend).fit(matrix)
        assert model.rules_.total_energy_fraction() >= 0.85 - 1e-9
        assert model.k > 8  # more than the initial request

    def test_fixed_cutoff_requests_exactly_k(self, wide_rank3):
        model = RatioRuleModel(cutoff=2, backend="lanczos").fit(wide_rank3)
        assert model.k == 2


class TestCLIFitCutoffParsing:
    def test_float_cutoff(self, tmp_path, wide_rank3, capsys):
        from repro.cli import main
        from repro.io.csv_format import save_csv_matrix

        path = tmp_path / "train.csv"
        save_csv_matrix(path, wide_rank3)
        assert main(["fit", str(path), "--cutoff", "0.5"]) == 0
        assert "Mined" in capsys.readouterr().out

    def test_named_cutoff(self, tmp_path, wide_rank3, capsys):
        from repro.cli import main
        from repro.io.csv_format import save_csv_matrix

        path = tmp_path / "train.csv"
        save_csv_matrix(path, wide_rank3)
        assert main(["fit", str(path), "--cutoff", "scree"]) == 0
        assert "Mined" in capsys.readouterr().out
