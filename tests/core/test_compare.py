"""Tests for model comparison / drift detection."""

import numpy as np
import pytest

from repro.core.compare import compare_models, principal_angles
from repro.core.model import RatioRuleModel
from repro.io.schema import TableSchema


def ratio_data(rng, loadings, n=400, noise=0.05):
    factor = rng.normal(5.0, 2.0, size=n)
    return np.outer(factor, loadings) + rng.normal(0, noise, (n, len(loadings)))


class TestPrincipalAngles:
    def test_identical_subspace_zero_angles(self):
        basis = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        angles = principal_angles(basis, basis)
        np.testing.assert_allclose(angles, 0.0, atol=1e-7)

    def test_orthogonal_subspaces_right_angles(self):
        a = np.array([[1.0], [0.0], [0.0]])
        b = np.array([[0.0], [1.0], [0.0]])
        angles = principal_angles(a, b)
        np.testing.assert_allclose(angles, np.pi / 2, atol=1e-12)

    def test_known_angle(self):
        theta = 0.3
        a = np.array([[1.0], [0.0]])
        b = np.array([[np.cos(theta)], [np.sin(theta)]])
        np.testing.assert_allclose(principal_angles(a, b), [theta], atol=1e-12)

    def test_rotation_within_subspace_ignored(self, rng):
        """Rotating the basis inside the same span gives zero angles."""
        q, _ = np.linalg.qr(rng.standard_normal((6, 2)))
        theta = 0.8
        rotation = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        angles = principal_angles(q, q @ rotation)
        np.testing.assert_allclose(angles, 0.0, atol=1e-7)

    def test_symmetry(self, rng):
        a, _ = np.linalg.qr(rng.standard_normal((7, 2)))
        b, _ = np.linalg.qr(rng.standard_normal((7, 3)))
        np.testing.assert_allclose(
            principal_angles(a, b), principal_angles(b, a), atol=1e-9
        )

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="different spaces"):
            principal_angles(np.eye(3)[:, :1], np.eye(4)[:, :1])


class TestCompareModels:
    def test_same_data_stable(self, rng):
        matrix = ratio_data(rng, [1.0, 2.0, 3.0])
        schema = TableSchema.from_names(["a", "b", "c"])
        model_a = RatioRuleModel(cutoff=1).fit(matrix[:200], schema)
        model_b = RatioRuleModel(cutoff=1).fit(matrix[200:], schema)
        comparison = compare_models(model_a, model_b)
        assert comparison.max_angle_degrees < 3.0
        assert not comparison.is_drifted()

    def test_changed_pattern_drifts(self, rng):
        schema = TableSchema.from_names(["a", "b", "c"])
        before = RatioRuleModel(cutoff=1).fit(ratio_data(rng, [1.0, 2.0, 3.0]), schema)
        after = RatioRuleModel(cutoff=1).fit(ratio_data(rng, [3.0, 0.5, 1.0]), schema)
        comparison = compare_models(before, after)
        assert comparison.max_angle_degrees > 15.0
        assert comparison.is_drifted()

    def test_k_change_counts_as_drift(self, rng):
        schema = TableSchema.from_names(["a", "b", "c"])
        matrix = ratio_data(rng, [1.0, 2.0, 3.0])
        model_a = RatioRuleModel(cutoff=1).fit(matrix, schema)
        model_b = RatioRuleModel(cutoff=2).fit(matrix, schema)
        assert compare_models(model_a, model_b).is_drifted()

    def test_mean_shift_reported(self, rng):
        schema = TableSchema.from_names(["a", "b"])
        base = rng.normal(0, 1, (300, 2)) + [10.0, 20.0]
        shifted = base + [5.0, 0.0]
        model_a = RatioRuleModel(cutoff=1).fit(base, schema)
        model_b = RatioRuleModel(cutoff=1).fit(shifted, schema)
        comparison = compare_models(model_a, model_b)
        assert comparison.mean_shift == pytest.approx(5.0, abs=0.3)

    def test_describe_mentions_verdict(self, rng):
        schema = TableSchema.from_names(["a", "b", "c"])
        matrix = ratio_data(rng, [1.0, 2.0, 3.0])
        model = RatioRuleModel(cutoff=1).fit(matrix, schema)
        text = compare_models(model, model).describe()
        assert "stable" in text
        assert "principal angles" in text

    def test_schema_mismatch_rejected(self, rng):
        matrix = ratio_data(rng, [1.0, 2.0])
        model_a = RatioRuleModel(cutoff=1).fit(
            matrix, TableSchema.from_names(["a", "b"])
        )
        model_b = RatioRuleModel(cutoff=1).fit(
            matrix, TableSchema.from_names(["x", "y"])
        )
        with pytest.raises(ValueError, match="different attributes"):
            compare_models(model_a, model_b)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            compare_models(RatioRuleModel(), RatioRuleModel())
