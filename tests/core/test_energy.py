"""Tests for the cutoff-selection policies (Eq. 1 and friends)."""

import numpy as np
import pytest

from repro.core.energy import (
    AverageEigenvalueCutoff,
    EnergyCutoff,
    FixedCutoff,
    ScreeCutoff,
    resolve_cutoff,
)


class TestEnergyCutoff:
    def test_paper_default_threshold(self):
        assert EnergyCutoff().threshold == 0.85

    def test_picks_first_reaching_threshold(self):
        # Fractions: 0.6, 0.9, 1.0 -> k = 2 for the 85% rule.
        eigenvalues = np.array([6.0, 3.0, 1.0])
        assert EnergyCutoff().choose_k(eigenvalues, 10.0) == 2

    def test_single_dominant_eigenvalue(self):
        eigenvalues = np.array([9.0, 0.5, 0.5])
        assert EnergyCutoff().choose_k(eigenvalues, 10.0) == 1

    def test_threshold_one_keeps_all(self):
        eigenvalues = np.array([5.0, 3.0, 2.0])
        assert EnergyCutoff(1.0).choose_k(eigenvalues, 10.0) == 3

    def test_partial_spectrum_falls_back_to_all(self):
        # Only top-2 computed, covering 70% < 85%: keep both.
        eigenvalues = np.array([4.0, 3.0])
        assert EnergyCutoff().choose_k(eigenvalues, 10.0) == 2

    def test_exact_boundary(self):
        eigenvalues = np.array([8.5, 1.5])
        assert EnergyCutoff(0.85).choose_k(eigenvalues, 10.0) == 1

    def test_zero_variance(self):
        assert EnergyCutoff().choose_k(np.array([0.0, 0.0]), 0.0) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            EnergyCutoff(0.0)
        with pytest.raises(ValueError):
            EnergyCutoff(1.5)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="descending"):
            EnergyCutoff().choose_k(np.array([1.0, 5.0]), 6.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            EnergyCutoff().choose_k(np.array([]), 1.0)


class TestFixedCutoff:
    def test_fixed_value(self):
        assert FixedCutoff(3).choose_k(np.array([5.0, 4.0, 3.0, 2.0]), 14.0) == 3

    def test_clamped_to_available(self):
        assert FixedCutoff(10).choose_k(np.array([2.0, 1.0]), 3.0) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedCutoff(0)


class TestScreeCutoff:
    def test_largest_gap(self):
        # Gaps: 1, 6, 1 -> elbow after index 1 -> k = 2.
        eigenvalues = np.array([10.0, 9.0, 3.0, 2.0])
        assert ScreeCutoff().choose_k(eigenvalues, 24.0) == 2

    def test_single_eigenvalue(self):
        assert ScreeCutoff().choose_k(np.array([5.0]), 5.0) == 1


class TestAverageEigenvalueCutoff:
    def test_above_average_kept(self):
        eigenvalues = np.array([6.0, 3.0, 0.5, 0.5])
        assert AverageEigenvalueCutoff().choose_k(eigenvalues, 10.0) == 2

    def test_always_at_least_one(self):
        eigenvalues = np.array([1.0, 1.0])
        assert AverageEigenvalueCutoff().choose_k(eigenvalues, 2.0) >= 1


class TestResolveCutoff:
    def test_none_is_paper_rule(self):
        policy = resolve_cutoff(None)
        assert isinstance(policy, EnergyCutoff)
        assert policy.threshold == 0.85

    def test_int_is_fixed(self):
        policy = resolve_cutoff(4)
        assert isinstance(policy, FixedCutoff)
        assert policy.k == 4

    def test_float_is_energy(self):
        policy = resolve_cutoff(0.95)
        assert isinstance(policy, EnergyCutoff)
        assert policy.threshold == 0.95

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("paper", EnergyCutoff),
            ("scree", ScreeCutoff),
            ("kaiser", AverageEigenvalueCutoff),
        ],
    )
    def test_names(self, name, expected):
        assert isinstance(resolve_cutoff(name), expected)

    def test_policy_passthrough(self):
        policy = FixedCutoff(2)
        assert resolve_cutoff(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown cutoff"):
            resolve_cutoff("banana")

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            resolve_cutoff(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            resolve_cutoff([1, 2])
