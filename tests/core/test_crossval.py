"""Tests for cross-validated cutoff selection."""

import numpy as np
import pytest

from repro.core.crossval import cross_validate_cutoff, fit_with_cv_cutoff


@pytest.fixture
def rank2_matrix(rng):
    scores = rng.standard_normal((300, 2)) * np.array([8.0, 3.0])
    loadings = np.array([[1.0, 2.0, 0.5, 1.0, 0.3], [0.5, -1.0, 2.0, 0.0, -0.5]])
    return scores @ loadings + rng.normal(0, 0.05, (300, 5))


class TestCrossValidateCutoff:
    def test_picks_the_true_rank(self, rank2_matrix):
        report = cross_validate_cutoff(rank2_matrix, n_folds=4, seed=0)
        assert report.best_k == 2

    def test_full_rank_scores_worst(self, rank2_matrix):
        """The overfitting cliff: k = M has by far the worst CV GE1."""
        report = cross_validate_cutoff(rank2_matrix, n_folds=4, seed=0)
        assert report.scores[5] > 3 * report.scores[2]

    def test_explicit_candidates(self, rank2_matrix):
        report = cross_validate_cutoff(rank2_matrix, k_values=[1, 3], n_folds=3)
        assert set(report.scores) == {1, 3}
        assert report.best_k in (1, 3)

    def test_describe_marks_best(self, rank2_matrix):
        report = cross_validate_cutoff(rank2_matrix, k_values=[1, 2], n_folds=3)
        assert "<- best" in report.describe()

    def test_deterministic(self, rank2_matrix):
        a = cross_validate_cutoff(rank2_matrix, k_values=[1, 2, 3], n_folds=3, seed=7)
        b = cross_validate_cutoff(rank2_matrix, k_values=[1, 2, 3], n_folds=3, seed=7)
        assert a.scores == b.scores

    def test_validation(self, rank2_matrix):
        with pytest.raises(ValueError, match="n_folds"):
            cross_validate_cutoff(rank2_matrix, n_folds=1)
        with pytest.raises(ValueError, match="k_values"):
            cross_validate_cutoff(rank2_matrix, k_values=[0])
        with pytest.raises(ValueError, match="k_values"):
            cross_validate_cutoff(rank2_matrix, k_values=[6])
        with pytest.raises(ValueError, match="2-d"):
            cross_validate_cutoff(np.ones(5))
        with pytest.raises(ValueError, match="rows"):
            cross_validate_cutoff(rank2_matrix[:5], n_folds=5)


class TestFitWithCVCutoff:
    def test_returns_fitted_model_at_best_k(self, rank2_matrix):
        model, report = fit_with_cv_cutoff(rank2_matrix, n_folds=4, seed=0)
        assert model.k == report.best_k == 2
        # The model is fitted on the FULL matrix.
        assert model.n_rows_ == 300

    def test_cv_model_beats_full_rank_on_holdout(self, rank2_matrix, rng):
        from repro.core.guessing_error import single_hole_error
        from repro.core.model import RatioRuleModel

        train, holdout = rank2_matrix[:250], rank2_matrix[250:]
        cv_model, _report = fit_with_cv_cutoff(train, n_folds=4, seed=0)
        full_model = RatioRuleModel(cutoff=5).fit(train)
        ge_cv = single_hole_error(cv_model, holdout).value
        ge_full = single_hole_error(full_model, holdout).value
        assert ge_cv < ge_full
