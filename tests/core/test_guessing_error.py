"""Tests for the guessing-error measure (Eqs. 3-4)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.column_average import ColumnAverageBaseline
from repro.core.guessing_error import (
    enumerate_hole_sets,
    guessing_error,
    relative_guessing_error,
    single_hole_error,
)
from repro.core.model import RatioRuleModel
from repro.core.reconstruction import CASE_EXACT, CASE_OVER, CASE_UNDER


class PerfectEstimator:
    """Oracle: fills holes with the truth (needs the matrix up front)."""

    def __init__(self, truth: np.ndarray) -> None:
        self._truth = truth
        self._cursor = 0

    def predict_holes(self, matrix: np.ndarray, hole_indices) -> np.ndarray:
        return matrix[:, list(hole_indices)]


class ConstantEstimator:
    """Always predicts a constant; exposes only the slow fill_row path."""

    def __init__(self, value: float, width: int) -> None:
        self.value = value
        self.width = width
        self.fill_row_calls = 0

    def fill_row(self, row: np.ndarray) -> np.ndarray:
        self.fill_row_calls += 1
        filled = np.asarray(row, dtype=np.float64).copy()
        filled[np.isnan(filled)] = self.value
        return filled


class TestEnumerateHoleSets:
    def test_exhaustive_when_small(self):
        sets = enumerate_hole_sets(4, 2, max_hole_sets=100)
        assert len(sets) == 6  # C(4, 2)
        assert all(len(s) == 2 for s in sets)
        assert len(set(sets)) == 6

    def test_sampling_when_large(self):
        sets = enumerate_hole_sets(20, 3, max_hole_sets=50, seed=1)
        assert len(sets) == 50
        assert len(set(sets)) == 50
        assert all(len(set(s)) == 3 for s in sets)

    def test_sampling_deterministic(self):
        first = enumerate_hole_sets(20, 3, max_hole_sets=30, seed=9)
        second = enumerate_hole_sets(20, 3, max_hole_sets=30, seed=9)
        assert first == second

    def test_h_bounds(self):
        with pytest.raises(ValueError):
            enumerate_hole_sets(3, 0)
        with pytest.raises(ValueError):
            enumerate_hole_sets(3, 4)


class TestGuessingError:
    def test_perfect_estimator_zero_error(self, rng):
        matrix = rng.standard_normal((10, 4))
        report = single_hole_error(PerfectEstimator(matrix), matrix)
        assert report.value == 0.0

    def test_ge1_matches_manual_formula(self, rng):
        """Eq. 3 computed by hand for a constant predictor."""
        matrix = rng.standard_normal((6, 3)) + 5.0
        estimator = ConstantEstimator(0.0, 3)
        report = single_hole_error(estimator, matrix)
        expected = math.sqrt(float((matrix**2).sum()) / matrix.size)
        assert report.value == pytest.approx(expected, rel=1e-12)

    def test_ge1_report_fields(self, rng):
        matrix = rng.standard_normal((5, 3))
        report = single_hole_error(ConstantEstimator(0.0, 3), matrix)
        assert report.h == 1
        assert report.n_rows == 5
        assert report.n_hole_sets == 3
        assert sorted(report.per_column) == [0, 1, 2]
        # RMS of per-column errors recombines to the overall value.
        recombined = math.sqrt(
            sum(v**2 for v in report.per_column.values()) / 3
        )
        assert report.value == pytest.approx(recombined, rel=1e-12)

    def test_geh_constant_for_column_average(self, rng):
        """The paper's observation: GEh of col-avgs is the same for all h
        (over identical hole-set families)."""
        matrix = rng.standard_normal((40, 5)) * 3 + 2
        baseline = ColumnAverageBaseline().fit(matrix)
        test = rng.standard_normal((10, 5)) * 3 + 2
        # Evaluate on ALL hole sets per h so no sampling noise enters.
        values = [
            guessing_error(baseline, test, h=h, max_hole_sets=100).value
            for h in (1, 2, 3, 4)
        ]
        # With exhaustive hole sets, every cell is hidden equally often,
        # so all GEh coincide exactly.
        for value in values[1:]:
            assert value == pytest.approx(values[0], rel=1e-12)

    def test_batch_and_slow_paths_agree(self, rng):
        matrix = rng.standard_normal((50, 4)) + 3
        test = rng.standard_normal((8, 4)) + 3
        model = RatioRuleModel(cutoff=2).fit(matrix)

        class SlowWrapper:
            """Strip the batch path off a model."""

            def __init__(self, inner):
                self._inner = inner

            def fill_row(self, row):
                return self._inner.fill_row(row)

        sets = enumerate_hole_sets(4, 2, max_hole_sets=10)
        fast = guessing_error(model, test, h=2, hole_sets=sets)
        slow = guessing_error(SlowWrapper(model), test, h=2, hole_sets=sets)
        assert fast.value == pytest.approx(slow.value, rel=1e-10)

    def test_explicit_hole_sets_validated(self, rng):
        matrix = rng.standard_normal((4, 3))
        estimator = ConstantEstimator(0.0, 3)
        with pytest.raises(ValueError, match="h=2"):
            guessing_error(estimator, matrix, h=2, hole_sets=[(0,)])
        with pytest.raises(ValueError, match="duplicates"):
            guessing_error(estimator, matrix, h=2, hole_sets=[(1, 1)])
        with pytest.raises(ValueError, match="out of range"):
            guessing_error(estimator, matrix, h=2, hole_sets=[(0, 9)])

    def test_rejects_nan_truth(self):
        matrix = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="complete"):
            single_hole_error(ConstantEstimator(0.0, 2), matrix)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no rows"):
            guessing_error(ConstantEstimator(0.0, 2), np.empty((0, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            guessing_error(ConstantEstimator(0.0, 2), np.ones(4))


def _brute_force_geh(model, test_matrix: np.ndarray, h: int) -> float:
    """Eq. 4 transcribed literally: every hole set, every row, one
    ``fill_row`` per (row, hole set), RMS over ``N * h * |Hh|`` cells."""
    n_rows, n_cols = test_matrix.shape
    hole_sets = list(itertools.combinations(range(n_cols), h))
    squared_sum = 0.0
    for holes in hole_sets:
        columns = list(holes)
        for i in range(n_rows):
            row = test_matrix[i].copy()
            row[columns] = np.nan
            filled = model.fill_row(row)
            errors = filled[columns] - test_matrix[i, columns]
            squared_sum += float((errors**2).sum())
    return math.sqrt(squared_sum / (n_rows * h * len(hole_sets)))


def _rank2_fixture(seed: int):
    """A 4-column rank-2(+noise) train/test pair and a k=2 model.

    With ``M = 4`` and ``k = 2`` the hole counts 1 / 2 / 3 exercise the
    over-specified, exactly-specified, and under-specified solve
    regimes respectively.
    """
    generator = np.random.default_rng(seed)
    loadings = np.array(
        [[1.0, 2.0, 0.5, 1.5], [0.3, -1.0, 2.0, 0.7]]
    )
    factors = generator.normal(5.0, 2.0, size=(66, 2))
    matrix = factors @ loadings + generator.normal(0, 0.05, (66, 4))
    train, test = matrix[:60], matrix[60:]
    model = RatioRuleModel(cutoff=2).fit(train)
    assert model.k == 2
    return model, test


class TestGEhBruteForce:
    """Eq. 4 property test: ``guessing_error`` (batch fast path) must
    equal a from-scratch transcription of the formula (slow ``fill_row``
    path) for every h and hence every reconstruction regime."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @pytest.mark.parametrize(
        ("h", "expected_case"),
        [(1, CASE_OVER), (2, CASE_EXACT), (3, CASE_UNDER)],
    )
    def test_geh_matches_brute_force(self, h, expected_case, seed):
        model, test = _rank2_fixture(seed)

        # The hole count really dispatches the regime under test.
        probe = test[0].copy()
        probe[:h] = np.nan
        assert model.fill_row_detailed(probe).case == expected_case

        report = guessing_error(model, test, h=h, max_hole_sets=100)
        assert report.n_hole_sets == math.comb(4, h)  # exhaustive Hh
        expected = _brute_force_geh(model, test, h)
        assert report.value == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_geh_brute_force_over_all_h_at_once(self, rng):
        """One deterministic pass over every h, including h == M."""
        model, test = _rank2_fixture(7)
        for h in (1, 2, 3, 4):
            report = guessing_error(model, test, h=h, max_hole_sets=100)
            expected = _brute_force_geh(model, test, h)
            assert report.value == pytest.approx(
                expected, rel=1e-9, abs=1e-12
            ), f"h={h}"


class TestRelativeGuessingError:
    def test_rr_beats_colavgs_on_correlated_data(self, rng):
        """The paper's core claim on friendly (linearly correlated) data."""
        factor = rng.normal(10.0, 4.0, size=300)
        loadings = np.array([1.0, 2.0, 0.5])
        matrix = np.outer(factor, loadings) + rng.normal(0, 0.1, (300, 3))
        train, test = matrix[:270], matrix[270:]
        model = RatioRuleModel().fit(train)
        baseline = ColumnAverageBaseline().fit(train)
        percent = relative_guessing_error(model, baseline, test)
        assert percent < 30.0  # far better than col-avgs

    def test_identical_estimators_give_100(self, rng):
        matrix = rng.standard_normal((30, 3)) + 4
        baseline = ColumnAverageBaseline().fit(matrix)
        percent = relative_guessing_error(baseline, baseline, matrix)
        assert percent == pytest.approx(100.0)

    def test_zero_baseline_error_rejected(self, rng):
        matrix = rng.standard_normal((5, 3))
        perfect = PerfectEstimator(matrix)
        with pytest.raises(ZeroDivisionError):
            relative_guessing_error(perfect, perfect, matrix)
