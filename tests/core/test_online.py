"""Tests for the online (streaming) model."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.online import OnlineRatioRuleModel
from repro.io.schema import TableSchema


@pytest.fixture
def stream(rng):
    factor = rng.normal(6.0, 2.0, size=500)
    return np.outer(factor, [1.0, 2.0, 0.5]) + rng.normal(0, 0.05, (500, 3))


class TestOnlineModel:
    def test_equals_batch_fit(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        for start in range(0, 500, 37):
            online.update(stream[start : start + 37])
        batch = RatioRuleModel(cutoff=1).fit(stream)
        np.testing.assert_allclose(
            online.model().rules_matrix, batch.rules_matrix, atol=1e-8
        )
        np.testing.assert_allclose(online.model().means_, batch.means_, atol=1e-10)
        assert online.n_rows_seen == 500

    def test_lazy_resolve_cached(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream[:100])
        first = online.model()
        assert online.model() is first  # cached
        online.update(stream[100:200])
        assert online.model() is not first  # invalidated

    def test_rules_track_drift(self, rng):
        """New data along a different direction rotates the rules."""
        online = OnlineRatioRuleModel(2, cutoff=1)
        phase1 = np.outer(rng.normal(0, 3, 300), [1.0, 0.0]) + rng.normal(
            0, 0.01, (300, 2)
        )
        online.update(phase1)
        direction1 = online.model().rules_matrix[:, 0]
        # Flood with data along the other axis.
        phase2 = np.outer(rng.normal(0, 9, 3000), [0.0, 1.0]) + rng.normal(
            0, 0.01, (3000, 2)
        )
        online.update(phase2)
        direction2 = online.model().rules_matrix[:, 0]
        assert abs(direction1[0]) > 0.9  # first rule was x-ish
        assert abs(direction2[1]) > 0.9  # now y-ish

    def test_not_ready_before_min_rows(self):
        online = OnlineRatioRuleModel(3, min_rows=10)
        online.update(np.ones((5, 3)))
        assert not online.is_ready
        with pytest.raises(ValueError, match="at least 10"):
            online.model()

    def test_estimator_protocol_forwarded(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream)
        filled = online.fill_row(np.array([6.0, np.nan, 3.0]))
        assert filled[1] == pytest.approx(12.0, abs=0.5)
        batch = online.predict_holes(stream[:4], [1])
        assert batch.shape == (4, 1)
        coords = online.transform(stream[:4])
        assert coords.shape == (4, 1)

    def test_merge_streams(self, stream):
        left = OnlineRatioRuleModel(3, cutoff=1)
        left.update(stream[:250])
        right = OnlineRatioRuleModel(3, cutoff=1)
        right.update(stream[250:])
        left.merge(right)
        batch = RatioRuleModel(cutoff=1).fit(stream)
        np.testing.assert_allclose(
            left.model().rules_matrix, batch.rules_matrix, atol=1e-8
        )

    def test_schema_respected(self, stream):
        schema = TableSchema.from_names(["a", "b", "c"])
        online = OnlineRatioRuleModel(3, schema=schema, cutoff=1)
        online.update(stream)
        assert online.model().schema_.names == ["a", "b", "c"]

    def test_schema_width_validated(self):
        with pytest.raises(ValueError, match="width"):
            OnlineRatioRuleModel(3, schema=TableSchema.from_names(["a"]))

    def test_min_rows_validated(self):
        with pytest.raises(ValueError, match="min_rows"):
            OnlineRatioRuleModel(3, min_rows=1)

    def test_update_counter(self, stream):
        online = OnlineRatioRuleModel(3)
        online.update(stream[:10]).update(stream[10:20])
        assert online.n_updates == 2

    def test_merge_accumulates_update_counts(self, stream):
        left = OnlineRatioRuleModel(3)
        left.update(stream[:100]).update(stream[100:200])
        right = OnlineRatioRuleModel(3)
        right.update(stream[200:300]).update(stream[300:400]).update(stream[400:])
        left.merge(right)
        assert left.n_updates == 5
        assert left.n_rows_seen == stream.shape[0]

    def test_empty_update_is_noop(self, stream):
        """An empty batch leaves statistics, cache and counter alone."""
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream[:100])
        cached = online.model()
        online.update(np.empty((0, 3)))
        assert online.n_rows_seen == 100
        assert online.n_updates == 1
        assert online.model() is cached  # cache survives an idle fold

    def test_update_width_mismatch_rejected(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream[:100])
        with pytest.raises(ValueError, match="width"):
            online.update(np.ones((5, 4)))
        # The failed fold must not corrupt the stream state.
        assert online.n_rows_seen == 100
        assert online.n_updates == 1

    def test_fork_is_independent(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream[:250])
        clone = online.fork()
        assert clone.n_rows_seen == online.n_rows_seen
        assert clone.n_updates == online.n_updates
        assert clone.model().fingerprint() == online.model().fingerprint()
        # Folding into the clone never disturbs the original...
        clone.update(stream[250:])
        assert online.n_rows_seen == 250
        assert clone.n_rows_seen == 500
        # ...and the clone now equals one straight-through stream.
        straight = OnlineRatioRuleModel(3, cutoff=1)
        straight.update(stream[:250]).update(stream[250:])
        assert clone.model().fingerprint() == straight.model().fingerprint()

    def test_fork_then_update_original(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1)
        online.update(stream[:250])
        clone = online.fork()
        before = clone.model().fingerprint()
        online.update(stream[250:])
        assert clone.n_rows_seen == 250
        assert clone.model().fingerprint() == before

    def test_fork_preserves_decay(self, stream):
        online = OnlineRatioRuleModel(3, cutoff=1, decay=0.999)
        online.update(stream[:250])
        clone = online.fork()
        assert clone.decay == pytest.approx(0.999)
        clone.update(stream[250:])
        straight = OnlineRatioRuleModel(3, cutoff=1, decay=0.999)
        straight.update(stream[:250]).update(stream[250:])
        np.testing.assert_array_equal(
            clone.model().rules_matrix, straight.model().rules_matrix
        )

    def test_merge_schema_mismatch_rejected(self, stream):
        left = OnlineRatioRuleModel(3, schema=TableSchema.from_names(["a", "b", "c"]))
        right = OnlineRatioRuleModel(3, schema=TableSchema.from_names(["x", "y", "z"]))
        left.update(stream[:10])
        right.update(stream[10:20])
        with pytest.raises(ValueError, match="schema"):
            left.merge(right)
        # The failed merge must not corrupt the left model's state.
        assert left.n_rows_seen == 10
        assert left.n_updates == 1
