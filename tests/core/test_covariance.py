"""Tests for the single-pass covariance accumulators."""

import numpy as np
import pytest

from repro.core.covariance import (
    StreamingCovariance,
    TextbookCovarianceAccumulator,
    covariance_single_pass,
)
from repro.io.matrix_reader import ArrayReader


def reference_scatter(matrix: np.ndarray) -> np.ndarray:
    """Direct two-pass C = Xc^t Xc for comparison."""
    centered = matrix - matrix.mean(axis=0)
    return centered.T @ centered


class TestStreamingCovariance:
    def test_matches_reference(self, rng):
        matrix = rng.standard_normal((200, 6)) * 3.0 + 1.0
        acc = StreamingCovariance(6)
        acc.update(matrix)
        np.testing.assert_allclose(
            acc.scatter_matrix(), reference_scatter(matrix), atol=1e-9
        )
        np.testing.assert_allclose(acc.column_means, matrix.mean(axis=0))
        assert acc.n_rows == 200

    def test_blockwise_equals_single_update(self, rng):
        matrix = rng.standard_normal((101, 4))
        whole = StreamingCovariance(4)
        whole.update(matrix)
        chunked = StreamingCovariance(4)
        for start in range(0, 101, 13):
            chunked.update(matrix[start : start + 13])
        np.testing.assert_allclose(
            chunked.scatter_matrix(), whole.scatter_matrix(), atol=1e-9
        )
        np.testing.assert_allclose(chunked.column_means, whole.column_means)

    def test_row_by_row(self, rng):
        matrix = rng.standard_normal((20, 3))
        acc = StreamingCovariance(3)
        for row in matrix:
            acc.update(row)  # 1-d rows accepted
        np.testing.assert_allclose(
            acc.scatter_matrix(), reference_scatter(matrix), atol=1e-9
        )

    def test_merge_equals_single_scan(self, rng):
        matrix = rng.standard_normal((150, 5)) + 10.0
        left = StreamingCovariance(5)
        left.update(matrix[:70])
        right = StreamingCovariance(5)
        right.update(matrix[70:])
        left.merge(right)
        np.testing.assert_allclose(
            left.scatter_matrix(), reference_scatter(matrix), atol=1e-8
        )
        assert left.n_rows == 150

    def test_merge_into_empty(self, rng):
        matrix = rng.standard_normal((30, 3))
        full = StreamingCovariance(3)
        full.update(matrix)
        empty = StreamingCovariance(3)
        empty.merge(full)
        np.testing.assert_allclose(
            empty.scatter_matrix(), reference_scatter(matrix), atol=1e-9
        )

    def test_merge_empty_is_noop(self, rng):
        matrix = rng.standard_normal((30, 3))
        acc = StreamingCovariance(3)
        acc.update(matrix)
        before = acc.scatter_matrix()
        acc.merge(StreamingCovariance(3))
        np.testing.assert_array_equal(acc.scatter_matrix(), before)

    def test_merge_width_mismatch(self):
        with pytest.raises(ValueError, match="widths"):
            StreamingCovariance(3).merge(StreamingCovariance(4))

    def test_covariance_normalization(self, rng):
        matrix = rng.standard_normal((50, 3))
        acc = StreamingCovariance(3)
        acc.update(matrix)
        np.testing.assert_allclose(
            acc.covariance(ddof=1), np.cov(matrix, rowvar=False), atol=1e-10
        )

    def test_covariance_needs_rows(self):
        acc = StreamingCovariance(2)
        acc.update(np.ones((1, 2)))
        with pytest.raises(ValueError, match="ddof"):
            acc.covariance(ddof=1)

    def test_scatter_requires_rows(self):
        with pytest.raises(ValueError, match="no rows"):
            StreamingCovariance(2).scatter_matrix()

    def test_update_width_mismatch(self):
        acc = StreamingCovariance(3)
        with pytest.raises(ValueError, match="width"):
            acc.update(np.ones((2, 4)))

    def test_scatter_is_symmetric_psd(self, rng):
        matrix = rng.standard_normal((60, 5)) * 7
        acc = StreamingCovariance(5)
        for start in range(0, 60, 7):
            acc.update(matrix[start : start + 7])
        scatter = acc.scatter_matrix()
        np.testing.assert_array_equal(scatter, scatter.T)
        assert np.all(np.linalg.eigvalsh(scatter) >= -1e-8)

    def test_state_round_trip_is_bit_exact(self, rng):
        matrix = rng.standard_normal((100, 4)) * 3
        acc = StreamingCovariance(4)
        acc.update(matrix[:60])
        clone = StreamingCovariance.from_state(acc.state())
        # Interchangeable: same bits now, and same bits after folding
        # identical further data into both.
        np.testing.assert_array_equal(
            clone.scatter_matrix(), acc.scatter_matrix()
        )
        acc.update(matrix[60:])
        clone.update(matrix[60:])
        np.testing.assert_array_equal(
            clone.scatter_matrix(), acc.scatter_matrix()
        )
        np.testing.assert_array_equal(clone.column_means, acc.column_means)
        assert clone.n_rows == acc.n_rows == 100

    def test_state_mutation_does_not_leak(self, rng):
        acc = StreamingCovariance(2)
        acc.update(rng.standard_normal((10, 2)))
        state = acc.state()
        state["mean"][:] = 99.0  # mutating the snapshot...
        assert acc.column_means.max() < 99.0  # ...never touches the source

    def test_from_state_validates(self):
        with pytest.raises(ValueError, match="inconsistent"):
            StreamingCovariance.from_state(
                {"count": 3, "mean": np.zeros(2), "scatter": np.zeros((3, 3))}
            )
        with pytest.raises(ValueError, match="count"):
            StreamingCovariance.from_state(
                {"count": -1, "mean": np.zeros(2), "scatter": np.zeros((2, 2))}
            )

    def test_stable_under_huge_offset(self, rng):
        """The motivating case: mean >> spread."""
        base = rng.standard_normal((500, 3))
        shifted = base + 1e9
        acc = StreamingCovariance(3)
        for start in range(0, 500, 50):
            acc.update(shifted[start : start + 50])
        # The scatter of the shifted data equals the scatter of the base
        # data.  Tolerances account for the quantization of the *input*
        # itself: adding 1e9 to O(1) values rounds them to ~1e-7 absolute
        # before any accumulation happens.
        expected = reference_scatter(base)
        scale = np.abs(expected).max()
        np.testing.assert_allclose(
            acc.scatter_matrix(), expected, rtol=1e-4, atol=1e-4 * scale
        )


class TestTextbookAccumulator:
    def test_matches_reference_on_benign_data(self, rng):
        matrix = rng.standard_normal((100, 4))
        acc = TextbookCovarianceAccumulator(4)
        acc.update(matrix)
        np.testing.assert_allclose(
            acc.scatter_matrix(), reference_scatter(matrix), atol=1e-8
        )

    def test_catastrophic_cancellation_demonstrated(self, rng):
        """The documented failure mode: huge means destroy the textbook sum.

        This is why StreamingCovariance is the library default.
        """
        base = rng.standard_normal((500, 3))
        shifted = base + 1e9
        textbook = TextbookCovarianceAccumulator(3)
        textbook.update(shifted)
        stable = StreamingCovariance(3)
        stable.update(shifted)
        expected = reference_scatter(base)

        textbook_error = np.abs(textbook.scatter_matrix() - expected).max()
        stable_error = np.abs(stable.scatter_matrix() - expected).max()
        # The textbook accumulator loses essentially all precision here;
        # the stable one does not.
        assert textbook_error > 1e3 * max(stable_error, 1e-12)

    def test_column_means(self, rng):
        matrix = rng.standard_normal((40, 3)) + 5
        acc = TextbookCovarianceAccumulator(3)
        acc.update(matrix[:20])
        acc.update(matrix[20:])
        np.testing.assert_allclose(acc.column_means, matrix.mean(axis=0), atol=1e-12)

    def test_requires_rows(self):
        acc = TextbookCovarianceAccumulator(2)
        with pytest.raises(ValueError, match="no rows"):
            acc.scatter_matrix()
        with pytest.raises(ValueError, match="no rows"):
            _ = acc.column_means


class TestCovarianceSinglePass:
    def test_from_array(self, rng):
        matrix = rng.standard_normal((80, 5))
        scatter, means, n_rows = covariance_single_pass(matrix)
        np.testing.assert_allclose(scatter, reference_scatter(matrix), atol=1e-9)
        np.testing.assert_allclose(means, matrix.mean(axis=0))
        assert n_rows == 80

    def test_single_pass_property(self, rng):
        """The paper's headline: exactly one scan of the data."""
        matrix = rng.standard_normal((64, 4))
        reader = ArrayReader(matrix)
        covariance_single_pass(reader, block_rows=8)
        assert reader.passes_completed == 1

    def test_textbook_accumulator_option(self, rng):
        matrix = rng.standard_normal((30, 3))
        scatter, _means, _n = covariance_single_pass(matrix, accumulator="textbook")
        np.testing.assert_allclose(scatter, reference_scatter(matrix), atol=1e-8)

    def test_unknown_accumulator(self, rng):
        with pytest.raises(ValueError, match="accumulator"):
            covariance_single_pass(rng.standard_normal((3, 2)), accumulator="quantum")

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="no rows"):
            covariance_single_pass(np.empty((0, 3)))

    def test_from_rowstore_file(self, rng, tmp_path):
        from repro.io.rowstore import RowStore

        matrix = rng.standard_normal((55, 3))
        path = tmp_path / "data.rr"
        RowStore.write_matrix(path, matrix)
        scatter, means, n_rows = covariance_single_pass(path)
        np.testing.assert_allclose(scatter, reference_scatter(matrix), atol=1e-9)
        assert n_rows == 55
