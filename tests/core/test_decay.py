"""Tests for exponentially-weighted (forgetting) covariance and online models."""

import numpy as np
import pytest

from repro.core.covariance import DecayingCovariance, StreamingCovariance
from repro.core.online import OnlineRatioRuleModel
from repro.datasets.streams import StreamPhase, TransactionStream


class TestDecayingCovariance:
    def test_decay_one_matches_plain(self, rng):
        matrix = rng.standard_normal((120, 4)) + 3
        decaying = DecayingCovariance(4, decay=1.0)
        plain = StreamingCovariance(4)
        for start in range(0, 120, 30):
            decaying.update(matrix[start : start + 30])
            plain.update(matrix[start : start + 30])
        np.testing.assert_allclose(
            decaying.scatter_matrix(), plain.scatter_matrix(), atol=1e-9
        )
        np.testing.assert_allclose(decaying.column_means, plain.column_means)

    def test_effective_weight_saturates(self, rng):
        decaying = DecayingCovariance(2, decay=0.5)
        for _ in range(30):
            decaying.update(rng.standard_normal((10, 2)))
        # Decay is per row: a row j rows back weighs 0.5**j, so the
        # mass saturates at the geometric sum 1 / (1 - 0.5) = 2.
        assert decaying.effective_weight == pytest.approx(2.0, rel=0.01)
        assert decaying.n_rows == 300

    def test_decay_invariant_to_block_partitioning(self, rng):
        """Forgetting depends on rows seen, not on update() call counts.

        The historical bug: decay was applied once per update() call, so
        100 single-row updates forgot ~100x faster than one 100-row
        block.  Per-row decay makes every partition of the same stream
        yield identical statistics.
        """
        matrix = rng.standard_normal((120, 3)) + 2.0
        partitions = [
            [matrix],  # one big block
            [matrix[i : i + 1] for i in range(120)],  # row at a time
            [matrix[:50], matrix[50:53], matrix[53:]],  # ragged blocks
        ]
        accumulators = []
        for blocks in partitions:
            acc = DecayingCovariance(3, decay=0.97)
            for block in blocks:
                acc.update(block)
            accumulators.append(acc)
        reference = accumulators[0]
        for acc in accumulators[1:]:
            assert acc.effective_weight == pytest.approx(
                reference.effective_weight, rel=1e-12
            )
            np.testing.assert_allclose(
                acc.column_means, reference.column_means, atol=1e-10
            )
            np.testing.assert_allclose(
                acc.scatter_matrix(), reference.scatter_matrix(), atol=1e-9
            )

    def test_recent_data_dominates(self, rng):
        """After a regime change, the scatter follows the new regime."""
        decaying = DecayingCovariance(2, decay=0.5)
        old = np.outer(rng.normal(0, 3, 200), [1.0, 0.0]) + rng.normal(
            0, 0.01, (200, 2)
        )
        new = np.outer(rng.normal(0, 3, 200), [0.0, 1.0]) + rng.normal(
            0, 0.01, (200, 2)
        )
        decaying.update(old)
        for start in range(0, 200, 20):
            decaying.update(new[start : start + 20])
        scatter = decaying.scatter_matrix()
        assert scatter[1, 1] > 10 * scatter[0, 0]

    def test_state_round_trip_is_bit_exact(self, rng):
        matrix = rng.standard_normal((80, 3)) + 2
        acc = DecayingCovariance(3, decay=0.99)
        acc.update(matrix[:50])
        clone = DecayingCovariance.from_state(acc.state())
        assert clone.decay == acc.decay
        assert clone.n_rows == acc.n_rows
        assert clone.effective_weight == acc.effective_weight
        acc.update(matrix[50:])
        clone.update(matrix[50:])
        np.testing.assert_array_equal(
            clone.scatter_matrix(), acc.scatter_matrix()
        )
        np.testing.assert_array_equal(clone.column_means, acc.column_means)

    def test_from_state_validates(self):
        with pytest.raises(ValueError, match="inconsistent"):
            DecayingCovariance.from_state(
                {
                    "decay": 0.9,
                    "weight": 1.0,
                    "rows_seen": 1,
                    "mean": np.zeros(2),
                    "scatter": np.zeros((3, 3)),
                }
            )
        with pytest.raises(ValueError, match=">= 0"):
            DecayingCovariance.from_state(
                {
                    "decay": 0.9,
                    "weight": -1.0,
                    "rows_seen": 1,
                    "mean": np.zeros(2),
                    "scatter": np.zeros((2, 2)),
                }
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="decay"):
            DecayingCovariance(2, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            DecayingCovariance(2, decay=1.5)
        acc = DecayingCovariance(2, decay=0.9)
        with pytest.raises(ValueError, match="no rows"):
            acc.scatter_matrix()
        with pytest.raises(ValueError, match="width"):
            acc.update(np.ones((2, 3)))


class TestForgettingOnlineModel:
    def test_tracks_regime_change_better_than_cumulative(self):
        stream = TransactionStream(
            [
                StreamPhase(loadings=(2.0, 1.0), n_blocks=10, name="before"),
                StreamPhase(loadings=(1.0, 2.0), n_blocks=10, name="after"),
            ],
            block_rows=500,
            seed=0,
        )
        cumulative = OnlineRatioRuleModel(2, cutoff=1)
        forgetting = OnlineRatioRuleModel(2, cutoff=1, decay=0.6)
        for _phase, block in stream.blocks():
            cumulative.update(block)
            forgetting.update(block)

        def mined_ratio(model):
            rule = model.model().rules_[0].loadings
            return rule[1] / rule[0]

        # True post-change ratio is 2.0; forgetting should sit closer.
        assert abs(mined_ratio(forgetting) - 2.0) < abs(mined_ratio(cumulative) - 2.0)
        assert mined_ratio(forgetting) == pytest.approx(2.0, rel=0.1)

    def test_decay_one_is_default_behaviour(self, rng):
        matrix = rng.standard_normal((100, 3)) + 5
        default = OnlineRatioRuleModel(3, cutoff=1)
        explicit = OnlineRatioRuleModel(3, cutoff=1, decay=1.0)
        default.update(matrix)
        explicit.update(matrix)
        np.testing.assert_allclose(
            default.model().rules_matrix, explicit.model().rules_matrix
        )

    def test_merge_rejected_for_decaying(self, rng):
        a = OnlineRatioRuleModel(2, decay=0.9)
        b = OnlineRatioRuleModel(2, decay=0.9)
        a.update(rng.standard_normal((10, 2)))
        b.update(rng.standard_normal((10, 2)))
        with pytest.raises(ValueError, match="not defined"):
            a.merge(b)
