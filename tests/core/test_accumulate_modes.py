"""Differential tests for the accumulation modes and the shm handoff.

The hot-path rework (raw-moment BLAS accumulation, memory-mapped row
stores, gulp CSV parsing, shared-memory partial handoff) is only
shippable because the default ``float64`` mode is *bit-identical* to
the historical path -- same block centering, same merge tree, same
reduction order.  Hypothesis drives random matrices through the old
in-memory accumulation and the new scan paths and asserts exact
equality; the opt-in ``raw64`` / ``float32`` modes get tolerance
bounds instead (raw-moment centering is not bit-compatible with
Chan's update by construction).

Process-pool cases (the shared-memory handoff itself) live in fixed
tests -- pool spawn per hypothesis example is too slow.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covariance import ACCUMULATE_DTYPES, StreamingCovariance
from repro.core.engine import scan_sources
from repro.io.csv_format import save_csv_matrix
from repro.io.rowstore import RowStore


def _make_matrix(seed, n_rows, n_cols):
    generator = np.random.default_rng(seed)
    return generator.normal(loc=1.0, scale=3.0, size=(n_rows, n_cols))


def _reference(matrix, block_rows):
    """The historical path: block-centered float64 accumulation."""
    accumulator = StreamingCovariance(matrix.shape[1])
    for start in range(0, matrix.shape[0], block_rows):
        accumulator.update(matrix[start : start + block_rows])
    return accumulator


cases = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "n_rows": st.integers(min_value=2, max_value=150),
        "n_cols": st.integers(min_value=2, max_value=6),
        "block_rows": st.integers(min_value=1, max_value=64),
    }
)


class TestModeDifferential:
    @settings(max_examples=40, deadline=None)
    @given(case=cases)
    def test_float64_mode_is_the_legacy_path_bitwise(self, case):
        matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
        legacy = _reference(matrix, case["block_rows"])
        explicit = StreamingCovariance(
            matrix.shape[1], accumulate_dtype="float64"
        )
        for start in range(0, matrix.shape[0], case["block_rows"]):
            explicit.update(matrix[start : start + case["block_rows"]])
        assert np.array_equal(
            legacy.scatter_matrix(), explicit.scatter_matrix()
        )
        assert np.array_equal(legacy.column_means, explicit.column_means)

    @settings(max_examples=40, deadline=None)
    @given(case=cases)
    def test_raw64_matches_float64_within_tolerance(self, case):
        matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
        expected = _reference(matrix, case["block_rows"]).scatter_matrix()
        raw = StreamingCovariance(matrix.shape[1], accumulate_dtype="raw64")
        for start in range(0, matrix.shape[0], case["block_rows"]):
            raw.update(matrix[start : start + case["block_rows"]])
        scale = max(1.0, float(np.abs(expected).max()))
        assert np.allclose(
            raw.scatter_matrix(), expected, rtol=1e-8, atol=1e-8 * scale
        )
        assert np.allclose(
            raw.column_means,
            _reference(matrix, case["block_rows"]).column_means,
            rtol=1e-12,
            atol=1e-12,
        )

    @settings(max_examples=40, deadline=None)
    @given(case=cases)
    def test_float32_matches_float64_within_loose_tolerance(self, case):
        matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
        expected = _reference(matrix, case["block_rows"]).scatter_matrix()
        compact = StreamingCovariance(
            matrix.shape[1], accumulate_dtype="float32"
        )
        for start in range(0, matrix.shape[0], case["block_rows"]):
            compact.update(matrix[start : start + case["block_rows"]])
        scale = max(1.0, float(np.abs(expected).max()))
        assert np.allclose(
            compact.scatter_matrix(), expected, rtol=1e-3, atol=1e-3 * scale
        )

    @settings(max_examples=25, deadline=None)
    @given(case=cases, split=st.integers(min_value=1, max_value=5))
    def test_raw_mode_merge_matches_single_accumulation(self, case, split):
        matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
        whole = StreamingCovariance(matrix.shape[1], accumulate_dtype="raw64")
        whole.update(matrix)
        merged = StreamingCovariance(matrix.shape[1], accumulate_dtype="raw64")
        for part in np.array_split(matrix, split):
            partial = StreamingCovariance(
                matrix.shape[1], accumulate_dtype="raw64"
            )
            if part.size:
                partial.update(part)
            merged.merge(partial)
        scale = max(1.0, float(np.abs(whole.scatter_matrix()).max()))
        assert np.allclose(
            merged.scatter_matrix(),
            whole.scatter_matrix(),
            rtol=1e-10,
            atol=1e-10 * scale,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        case=cases,
        mode=st.sampled_from(ACCUMULATE_DTYPES),
    )
    def test_state_round_trip_every_mode(self, case, mode):
        matrix = _make_matrix(case["seed"], case["n_rows"], case["n_cols"])
        original = StreamingCovariance(matrix.shape[1], accumulate_dtype=mode)
        original.update(matrix)
        restored = StreamingCovariance.from_state(original.state())
        assert restored.accumulate_dtype == mode
        assert np.array_equal(
            restored.scatter_matrix(), original.scatter_matrix()
        )
        assert np.array_equal(restored.column_means, original.column_means)

    def test_mixed_mode_merge_rejected(self):
        left = StreamingCovariance(3, accumulate_dtype="raw64")
        right = StreamingCovariance(3, accumulate_dtype="float64")
        with pytest.raises(ValueError, match="accumulate_dtype"):
            left.merge(right)


class TestEngineModeDifferential:
    """The engine end of the proof: scans through the new readers
    (gulp CSV parse, memory-mapped row stores) in the default mode
    reproduce the in-memory reference bit for bit."""

    def _shards(self, tmp_path, matrix, n_shards, kind):
        paths = []
        for index, part in enumerate(np.array_split(matrix, n_shards)):
            if kind == "csv":
                path = tmp_path / f"shard{index}.csv"
                save_csv_matrix(path, part)
            else:
                path = tmp_path / f"shard{index}.rr"
                RowStore.write_matrix(path, part)
            paths.append(path)
        return paths

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_shards=st.integers(min_value=1, max_value=3),
        kind=st.sampled_from(["csv", "rowstore"]),
    )
    def test_serial_file_scan_is_bitwise_the_memory_reference(
        self, tmp_path_factory, seed, n_shards, kind
    ):
        tmp_path = tmp_path_factory.mktemp("modes")
        matrix = _make_matrix(seed, 97, 4)
        paths = self._shards(tmp_path, matrix, n_shards, kind)
        result = scan_sources(paths, executor="serial", block_rows=16)
        reference = scan_sources(
            [part for part in np.array_split(matrix, n_shards) if part.size],
            executor="serial",
            block_rows=16,
        )
        assert result.accumulator.n_rows == matrix.shape[0]
        assert np.array_equal(
            result.accumulator.scatter_matrix(),
            reference.accumulator.scatter_matrix(),
        )
        assert np.array_equal(
            result.accumulator.column_means,
            reference.accumulator.column_means,
        )

    @pytest.mark.parametrize("mode", ["raw64", "float32"])
    def test_engine_raw_modes_close_to_default(self, tmp_path, mode):
        matrix = _make_matrix(7, 300, 5)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        default = scan_sources([path], executor="serial")
        raw = scan_sources([path], executor="serial", accumulate_dtype=mode)
        assert raw.metrics.accumulate_dtype == mode
        expected = default.accumulator.scatter_matrix()
        scale = max(1.0, float(np.abs(expected).max()))
        rtol = 1e-8 if mode == "raw64" else 1e-3
        assert np.allclose(
            raw.accumulator.scatter_matrix(),
            expected,
            rtol=rtol,
            atol=rtol * scale,
        )

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="accumulate_dtype"):
            scan_sources([np.ones((4, 2))], accumulate_dtype="float16")


class TestSharedMemoryHandoff:
    """Tier-1-safe smoke tests for the process-pool shm return path."""

    def test_process_scan_uses_shm_and_matches_serial_bitwise(self, tmp_path):
        matrix = _make_matrix(11, 200, 4)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        serial = scan_sources([path], executor="serial", target_chunks=4)
        pooled = scan_sources(
            [path],
            executor="process",
            max_workers=2,
            target_chunks=4,
        )
        assert pooled.metrics.n_shm_handoffs == 4
        assert pooled.metrics.n_pickled_handoffs == 0
        assert np.array_equal(
            serial.accumulator.scatter_matrix(),
            pooled.accumulator.scatter_matrix(),
        )
        assert np.array_equal(
            serial.accumulator.column_means,
            pooled.accumulator.column_means,
        )

    def test_disabling_shm_falls_back_to_pickle_same_bits(self, tmp_path):
        matrix = _make_matrix(13, 150, 3)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        with_shm = scan_sources(
            [path], executor="process", max_workers=2, target_chunks=3
        )
        without = scan_sources(
            [path],
            executor="process",
            max_workers=2,
            target_chunks=3,
            shm_handoff=False,
        )
        assert without.metrics.n_shm_handoffs == 0
        assert without.metrics.n_pickled_handoffs == 3
        assert np.array_equal(
            with_shm.accumulator.scatter_matrix(),
            without.accumulator.scatter_matrix(),
        )

    @pytest.mark.parametrize("mode", ["raw64", "float32"])
    def test_shm_handoff_carries_raw_modes(self, tmp_path, mode):
        matrix = _make_matrix(17, 180, 4)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        serial = scan_sources(
            [path], executor="serial", target_chunks=3, accumulate_dtype=mode
        )
        pooled = scan_sources(
            [path],
            executor="process",
            max_workers=2,
            target_chunks=3,
            accumulate_dtype=mode,
        )
        assert pooled.metrics.n_shm_handoffs == 3
        expected = serial.accumulator.scatter_matrix()
        scale = max(1.0, float(np.abs(expected).max()))
        # Same chunk plan, same per-chunk arithmetic: the only delta
        # is merge order, which the engine pins -- so even the raw
        # modes agree bitwise across fabrics.
        assert np.allclose(
            pooled.accumulator.scatter_matrix(),
            expected,
            rtol=1e-12,
            atol=1e-12 * scale,
        )


class TestRawModeCheckpoints:
    @pytest.mark.parametrize("mode", ["raw64", "float32"])
    def test_checkpoint_resume_round_trips_raw_modes(self, tmp_path, mode):
        matrix = _make_matrix(31, 160, 4)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        ckpt = tmp_path / "scan.ckpt"
        first = scan_sources(
            [path],
            executor="serial",
            target_chunks=4,
            checkpoint=ckpt,
            accumulate_dtype=mode,
        )
        resumed = scan_sources(
            [path],
            executor="serial",
            target_chunks=4,
            checkpoint=ckpt,
            resume=True,
            accumulate_dtype=mode,
        )
        assert resumed.metrics.n_chunks_resumed == 4
        assert np.array_equal(
            resumed.accumulator.scatter_matrix(),
            first.accumulator.scatter_matrix(),
        )

    def test_mode_is_part_of_the_plan_fingerprint(self, tmp_path):
        matrix = _make_matrix(37, 80, 3)
        path = tmp_path / "data.csv"
        save_csv_matrix(path, matrix)
        ckpt = tmp_path / "scan.ckpt"
        scan_sources(
            [path],
            executor="serial",
            target_chunks=2,
            checkpoint=ckpt,
            accumulate_dtype="raw64",
        )
        # A different mode must not resume from these partials.
        with pytest.raises(ValueError, match="different scan plan"):
            scan_sources(
                [path],
                executor="serial",
                target_chunks=2,
                checkpoint=ckpt,
                resume=True,
            )


class TestAdaptiveChunkSizing:
    def test_large_payload_is_over_chunked_for_balance(self, tmp_path):
        matrix = _make_matrix(19, 4000, 4)
        path = tmp_path / "big.csv"
        save_csv_matrix(path, matrix)
        result = scan_sources(
            [path],
            executor="thread",
            max_workers=2,
            min_chunk_bytes=1024,  # tiny floor: force the 4x cap
        )
        assert result.metrics.n_chunks == 8  # 4 * workers
        assert result.accumulator.n_rows == matrix.shape[0]

    def test_small_payload_keeps_one_chunk_per_worker(self, tmp_path):
        matrix = _make_matrix(23, 64, 3)
        path = tmp_path / "small.csv"
        save_csv_matrix(path, matrix)
        result = scan_sources([path], executor="thread", max_workers=2)
        # Payload is far below min_chunk_bytes: no over-chunking.
        assert result.metrics.n_chunks == 2

    def test_explicit_target_chunks_wins(self, tmp_path):
        matrix = _make_matrix(29, 4000, 4)
        path = tmp_path / "big.csv"
        save_csv_matrix(path, matrix)
        result = scan_sources(
            [path],
            executor="thread",
            max_workers=2,
            target_chunks=3,
            min_chunk_bytes=1,
        )
        assert result.metrics.n_chunks == 3
