"""Tests for calibrated prediction intervals."""

import numpy as np
import pytest

from repro.baselines.column_average import ColumnAverageBaseline
from repro.core.model import RatioRuleModel
from repro.core.uncertainty import calibrate


@pytest.fixture
def ratio_data(rng):
    factor = rng.normal(10.0, 3.0, size=500)
    return np.outer(factor, [1.0, 2.0, 0.5]) + rng.normal(0, 0.2, (500, 3))


@pytest.fixture
def calibrated(ratio_data):
    train, holdout = ratio_data[:400], ratio_data[400:]
    model = RatioRuleModel(cutoff=1).fit(train)
    return calibrate(model, holdout, confidence=0.9), ratio_data


class TestCalibrate:
    def test_intervals_cover_about_right(self, calibrated, rng):
        wrapper, data = calibrated
        # Fresh rows from the same process.
        factor = rng.normal(10.0, 3.0, size=300)
        fresh = np.outer(factor, [1.0, 2.0, 0.5]) + rng.normal(0, 0.2, (300, 3))
        hits = 0
        total = 0
        for row in fresh:
            punched = row.copy()
            punched[1] = np.nan
            _filled, intervals = wrapper.fill_row_with_intervals(punched)
            hits += int(intervals[0].covers(row[1]))
            total += 1
        coverage = hits / total
        # Target 90%; allow sampling slack.
        assert 0.8 <= coverage <= 1.0

    def test_interval_structure(self, calibrated):
        wrapper, _data = calibrated
        row = np.array([10.0, np.nan, np.nan])
        filled, intervals = wrapper.fill_row_with_intervals(row)
        assert len(intervals) == 2
        assert [iv.column for iv in intervals] == [1, 2]
        for interval in intervals:
            assert interval.lower <= interval.value <= interval.upper
            assert filled[interval.column] == pytest.approx(interval.value)
            assert interval.half_width == pytest.approx(
                wrapper.half_width(interval.column)
            )

    def test_tighter_model_tighter_intervals(self, ratio_data):
        """RR intervals must be much narrower than col-avgs intervals."""
        train, holdout = ratio_data[:400], ratio_data[400:]
        rr = calibrate(RatioRuleModel(cutoff=1).fit(train), holdout)
        col = calibrate(ColumnAverageBaseline().fit(train), holdout)
        assert rr.half_width(1) < 0.3 * col.half_width(1)

    def test_higher_confidence_wider(self, ratio_data):
        train, holdout = ratio_data[:400], ratio_data[400:]
        model = RatioRuleModel(cutoff=1).fit(train)
        narrow = calibrate(model, holdout, confidence=0.5)
        wide = calibrate(model, holdout, confidence=0.99)
        assert wide.half_width(0) >= narrow.half_width(0)

    def test_forwarded_protocol(self, calibrated):
        wrapper, data = calibrated
        row = np.array([10.0, np.nan, 5.0])
        np.testing.assert_array_equal(
            wrapper.fill_row(row), wrapper._estimator.fill_row(row)
        )
        batch = wrapper.predict_holes(data[:3], [1])
        assert batch.shape == (3, 1)

    def test_works_with_slow_estimators(self, ratio_data):
        """Estimators without predict_holes calibrate via fill_row."""

        class Slow:
            def __init__(self, inner):
                self._inner = inner

            def fill_row(self, row):
                return self._inner.fill_row(row)

        train, holdout = ratio_data[:400], ratio_data[400:420]
        model = RatioRuleModel(cutoff=1).fit(train)
        fast = calibrate(model, holdout)
        slow = calibrate(Slow(model), holdout)
        for column in range(3):
            assert slow.half_width(column) == pytest.approx(
                fast.half_width(column), rel=1e-9
            )

    def test_uncalibrated_column_rejected(self, calibrated):
        wrapper, _data = calibrated
        with pytest.raises(KeyError, match="not calibrated"):
            wrapper.half_width(99)

    def test_validation(self, ratio_data):
        model = RatioRuleModel(cutoff=1).fit(ratio_data)
        with pytest.raises(ValueError, match="confidence"):
            calibrate(model, ratio_data, confidence=1.5)
        with pytest.raises(ValueError, match="at least 5"):
            calibrate(model, ratio_data[:3])
        with pytest.raises(ValueError, match="complete"):
            damaged = ratio_data[:10].copy()
            damaged[0, 0] = np.nan
            calibrate(model, damaged)
        with pytest.raises(ValueError, match="2-d"):
            calibrate(model, ratio_data[0])


class TestHotPaths:
    """Edge-of-domain coverage for the serving-adjacent hot paths."""

    def test_all_holes_row_gets_an_interval_per_column(self, calibrated):
        wrapper, _data = calibrated
        filled, intervals = wrapper.fill_row_with_intervals(
            np.array([np.nan, np.nan, np.nan])
        )
        assert not np.isnan(filled).any()
        assert [p.column for p in intervals] == [0, 1, 2]
        for prediction in intervals:
            assert prediction.lower <= prediction.value <= prediction.upper
            assert prediction.covers(prediction.value)
            assert prediction.half_width == pytest.approx(
                (prediction.upper - prediction.lower) / 2.0
            )

    def test_complete_row_yields_no_intervals(self, calibrated):
        wrapper, data = calibrated
        row = data[0]
        filled, intervals = wrapper.fill_row_with_intervals(row)
        np.testing.assert_array_equal(filled, row)
        assert intervals == []

    def test_zero_variance_column_calibrates_to_zero_width(self, rng):
        factor = rng.normal(10.0, 3.0, size=200)
        matrix = np.column_stack(
            [factor, 2.0 * factor, np.full(200, 7.0)]  # constant column
        )
        model = RatioRuleModel(cutoff=1).fit(matrix)
        wrapper = calibrate(model, matrix, confidence=0.9)
        assert wrapper.half_width(2) == pytest.approx(0.0, abs=1e-8)
        _filled, intervals = wrapper.fill_row_with_intervals(
            np.array([10.0, 20.0, np.nan])
        )
        assert intervals[0].column == 2
        assert intervals[0].value == pytest.approx(7.0, abs=1e-6)

    def test_calibration_is_deterministic(self, ratio_data):
        train, holdout = ratio_data[:400], ratio_data[400:]
        model = RatioRuleModel(cutoff=1).fit(train)
        first = calibrate(model, holdout, confidence=0.8)
        second = calibrate(model, holdout, confidence=0.8)
        for column in range(3):
            assert first.half_width(column) == second.half_width(column)
