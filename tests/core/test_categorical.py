"""Tests for categorical Ratio Rules (the paper's stated future work)."""

import pytest

from repro.core.categorical import (
    CategoricalAttribute,
    CategoricalRatioRuleModel,
    MixedSchema,
)


@pytest.fixture
def position_schema():
    return MixedSchema(
        [
            "minutes",
            "rebounds",
            CategoricalAttribute("position", ("guard", "center")),
        ]
    )


@pytest.fixture
def position_rows(rng):
    """Guards rebound little, centers a lot; minutes independent."""
    rows = []
    for i in range(400):
        position = "guard" if i % 2 == 0 else "center"
        rebounds = (100.0 if position == "guard" else 600.0) + rng.normal(0, 25)
        minutes = rng.normal(1500, 300)
        rows.append([minutes, rebounds, position])
    return rows


class TestSchema:
    def test_encoded_width(self, position_schema):
        assert position_schema.width == 3
        assert position_schema.encoded_width() == 4  # 2 numeric + 2 indicators

    def test_encoded_names(self, position_schema):
        names = position_schema.encoded_schema().names
        assert names == ["minutes", "rebounds", "position=guard", "position=center"]

    def test_encoded_slices(self, position_schema):
        assert position_schema.encoded_slices() == [(0, 1), (1, 2), (2, 4)]

    def test_is_categorical(self, position_schema):
        assert not position_schema.is_categorical(0)
        assert position_schema.is_categorical(2)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MixedSchema(["a", CategoricalAttribute("a", ("x", "y"))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MixedSchema([])


class TestCategoricalAttribute:
    def test_index_of(self):
        attribute = CategoricalAttribute("pos", ("guard", "center"))
        assert attribute.index_of("center") == 1

    def test_unknown_category(self):
        attribute = CategoricalAttribute("pos", ("guard", "center"))
        with pytest.raises(KeyError, match="unknown category"):
            attribute.index_of("libero")

    def test_validation(self):
        with pytest.raises(ValueError, match="2 categories"):
            CategoricalAttribute("pos", ("only",))
        with pytest.raises(ValueError, match="duplicate"):
            CategoricalAttribute("pos", ("a", "a"))
        with pytest.raises(ValueError, match="scale"):
            CategoricalAttribute("pos", ("a", "b"), scale=0.0)


class TestModel:
    def test_predict_category(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        assert model.predict_category([1500.0, 610.0, None], "position") == "center"
        assert model.predict_category([1500.0, 95.0, None], "position") == "guard"

    @pytest.mark.parametrize("method", ["argmax", "residual"])
    def test_decode_methods_agree_on_clear_cases(
        self, position_schema, position_rows, method
    ):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        assert (
            model.predict_category([1500.0, 610.0, None], "position", method=method)
            == "center"
        )

    def test_unknown_decode_method(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        with pytest.raises(ValueError, match="unknown method"):
            model.predict_category([1500.0, 610.0, None], "position", method="vote")

    def test_residual_decode_accuracy(self, position_schema, position_rows):
        """Residual decoding recovers hidden categories accurately."""
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        correct = sum(
            model.predict_category(list(row), "position", method="residual") == row[2]
            for row in position_rows[:100]
        )
        assert correct >= 95

    def test_predict_numeric_from_category(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        filled = model.fill_row([1500.0, float("nan"), "center"])
        assert filled[1] == pytest.approx(600.0, abs=80.0)
        filled = model.fill_row([1500.0, float("nan"), "guard"])
        assert filled[1] == pytest.approx(100.0, abs=80.0)

    def test_known_values_pass_through(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        filled = model.fill_row([1234.0, 321.0, None])
        assert filled[0] == 1234.0
        assert filled[1] == 321.0
        assert filled[2] in ("guard", "center")

    def test_category_scores_separated(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        scores = model.category_scores([1500.0, 610.0, None], "position")
        assert set(scores) == {"guard", "center"}
        assert scores["center"] > scores["guard"]

    def test_predict_category_on_numeric_field_rejected(
        self, position_schema, position_rows
    ):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        with pytest.raises(ValueError, match="numeric"):
            model.predict_category([1500.0, 100.0, "guard"], "minutes")

    def test_training_holes_rejected(self, position_schema):
        model = CategoricalRatioRuleModel(position_schema)
        with pytest.raises(ValueError, match="missing category"):
            model.fit([[1.0, 2.0, None]])
        with pytest.raises(ValueError, match="NaN"):
            model.fit([[float("nan"), 2.0, "guard"]])

    def test_unknown_training_category_rejected(self, position_schema):
        model = CategoricalRatioRuleModel(position_schema)
        with pytest.raises(KeyError, match="unknown category"):
            model.fit([[1.0, 2.0, "libero"]])

    def test_row_width_validated(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        with pytest.raises(ValueError, match="fields"):
            model.fill_row([1.0, 2.0])

    def test_empty_training_rejected(self, position_schema):
        with pytest.raises(ValueError, match="at least one"):
            CategoricalRatioRuleModel(position_schema).fit([])

    def test_manual_scale(self, position_rows):
        schema = MixedSchema(
            [
                "minutes",
                "rebounds",
                CategoricalAttribute("position", ("guard", "center"), scale=250.0),
            ]
        )
        model = CategoricalRatioRuleModel(schema, cutoff=2, auto_scale=False).fit(
            position_rows
        )
        assert model.predict_category([1500.0, 610.0, None], "position") == "center"

    def test_inner_model_exposed(self, position_schema, position_rows):
        model = CategoricalRatioRuleModel(position_schema, cutoff=2).fit(position_rows)
        assert model.inner_model.schema_.names[-1] == "position=center"
        assert model.k == 2
