"""Tests for repr conveniences and the model's score() sugar."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.guessing_error import single_hole_error
from repro.datasets import load_dataset


class TestReprs:
    def test_unfitted_model_repr(self):
        text = repr(RatioRuleModel())
        assert "unfitted" in text

    def test_fitted_model_repr(self, correlated_matrix):
        model = RatioRuleModel(cutoff=2).fit(correlated_matrix)
        text = repr(model)
        assert "k=2" in text
        assert "M=5" in text
        assert "N=300" in text
        assert "energy=" in text

    def test_ruleset_repr(self, correlated_model):
        text = repr(correlated_model.rules_)
        assert text.startswith("RuleSet(")
        assert "k=2" in text

    def test_dataset_repr(self):
        dataset = load_dataset("nba", seed=0)
        assert repr(dataset) == "Dataset(name='nba', shape=459x12)"


class TestScore:
    def test_score_equals_ge1(self, correlated_matrix):
        model = RatioRuleModel(cutoff=2).fit(correlated_matrix[:250])
        test = correlated_matrix[250:]
        assert model.score(test) == pytest.approx(
            single_hole_error(model, test).value
        )

    def test_score_multi_hole(self, correlated_matrix):
        model = RatioRuleModel(cutoff=2).fit(correlated_matrix[:250])
        value = model.score(correlated_matrix[250:], h=2)
        assert value > 0

    def test_score_requires_fit(self):
        from repro.core.model import NotFittedError

        with pytest.raises(NotFittedError):
            RatioRuleModel().score(np.ones((3, 2)))
