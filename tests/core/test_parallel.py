"""Tests for sharded/parallel mining."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.parallel import accumulate_shard, fit_sharded, merge_partials
from repro.io.rowstore import RowStore


@pytest.fixture
def full_matrix(rng):
    factor = rng.normal(4.0, 2.0, size=600)
    return np.outer(factor, [1.0, 0.5, 2.0, 1.5]) + rng.normal(0, 0.1, (600, 4))


class TestPrimitives:
    def test_accumulate_shard(self, full_matrix):
        partial = accumulate_shard(full_matrix[:100])
        assert partial.n_rows == 100
        assert partial.n_cols == 4

    def test_merge_exactness(self, full_matrix):
        shards = [full_matrix[:200], full_matrix[200:350], full_matrix[350:]]
        merged = merge_partials(accumulate_shard(s) for s in shards)
        whole = accumulate_shard(full_matrix)
        np.testing.assert_allclose(
            merged.scatter_matrix(), whole.scatter_matrix(), atol=1e-8
        )
        np.testing.assert_allclose(merged.column_means, whole.column_means)
        assert merged.n_rows == 600

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_partials([])


class TestFitSharded:
    def test_matches_single_scan(self, full_matrix):
        reference = RatioRuleModel(cutoff=2).fit(full_matrix)
        sharded = fit_sharded(
            [full_matrix[:150], full_matrix[150:400], full_matrix[400:]],
            cutoff=2,
        )
        np.testing.assert_allclose(
            sharded.rules_matrix, reference.rules_matrix, atol=1e-8
        )
        np.testing.assert_allclose(sharded.means_, reference.means_)
        assert sharded.n_rows_ == reference.n_rows_

    def test_threaded_matches_serial(self, full_matrix):
        shards = [full_matrix[i::4] for i in range(4)]
        serial = fit_sharded(shards, cutoff=2, max_workers=1)
        threaded = fit_sharded(shards, cutoff=2, max_workers=4)
        np.testing.assert_allclose(
            threaded.rules_matrix, serial.rules_matrix, atol=1e-10
        )

    def test_process_executor_matches_serial(self, full_matrix, tmp_path):
        paths = []
        for index, start in enumerate(range(0, 600, 150)):
            path = tmp_path / f"shard{index}.rr"
            RowStore.write_matrix(path, full_matrix[start : start + 150])
            paths.append(path)
        serial = fit_sharded(paths, cutoff=2, executor="serial")
        process = fit_sharded(paths, cutoff=2, executor="process", max_workers=4)
        np.testing.assert_allclose(
            process.rules_matrix, serial.rules_matrix, atol=1e-10
        )
        assert process.n_rows_ == 600
        assert process.metrics_ is not None
        assert process.metrics_.n_rows == 600

    def test_in_memory_shards_never_use_processes(self, full_matrix):
        model = fit_sharded(
            [full_matrix[:300], full_matrix[300:]],
            cutoff=2,
            executor="process",
            max_workers=2,
        )
        assert model.metrics_.executor == "thread"

    def test_file_shards(self, full_matrix, tmp_path):
        paths = []
        for index, start in enumerate(range(0, 600, 200)):
            path = tmp_path / f"shard{index}.rr"
            RowStore.write_matrix(path, full_matrix[start : start + 200])
            paths.append(path)
        sharded = fit_sharded(paths, cutoff=2)
        reference = RatioRuleModel(cutoff=2).fit(full_matrix)
        np.testing.assert_allclose(
            sharded.rules_matrix, reference.rules_matrix, atol=1e-8
        )

    def test_model_functional(self, full_matrix):
        model = fit_sharded([full_matrix[:300], full_matrix[300:]], cutoff=1)
        filled = model.fill_row(np.array([4.0, np.nan, 8.0, 6.0]))
        assert filled[1] == pytest.approx(2.0, abs=0.5)

    def test_width_mismatch_rejected(self, full_matrix):
        with pytest.raises(ValueError, match="column count"):
            fit_sharded([full_matrix, full_matrix[:, :3]])

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            fit_sharded([])
