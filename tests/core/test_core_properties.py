"""Property-based tests (hypothesis) for the core algorithms.

These pin down the invariants that hold for *any* data, not just the
fixtures: single-pass covariance equals two-pass covariance under any
blocking; hole filling never touches known cells and is exact for
on-plane points; the guessing error is non-negative, symmetric in row
order, and zero only for perfect estimators.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.covariance import StreamingCovariance
from repro.core.guessing_error import guessing_error, single_hole_error
from repro.core.model import RatioRuleModel
from repro.core.reconstruction import fill_holes

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def data_matrices(min_rows=3, max_rows=20, min_cols=2, max_cols=6):
    return st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(max_examples=40, deadline=None)
@given(matrix=data_matrices(), block=st.integers(min_value=1, max_value=7))
def test_streaming_covariance_blocking_invariant(matrix, block):
    """Any block size yields the same scatter as one big update."""
    whole = StreamingCovariance(matrix.shape[1])
    whole.update(matrix)
    chunked = StreamingCovariance(matrix.shape[1])
    for start in range(0, matrix.shape[0], block):
        chunked.update(matrix[start : start + block])
    scale = max(np.abs(whole.scatter_matrix()).max(), 1.0)
    assert np.allclose(
        whole.scatter_matrix(), chunked.scatter_matrix(), atol=1e-8 * scale
    )
    assert np.allclose(whole.column_means, chunked.column_means, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(matrix=data_matrices(), split=st.floats(min_value=0.2, max_value=0.8))
def test_streaming_covariance_merge_invariant(matrix, split):
    """merge(a, b) == scan(concat(a, b)) for any split point."""
    cut = max(1, min(matrix.shape[0] - 1, int(matrix.shape[0] * split)))
    left = StreamingCovariance(matrix.shape[1])
    left.update(matrix[:cut])
    right = StreamingCovariance(matrix.shape[1])
    right.update(matrix[cut:])
    left.merge(right)
    whole = StreamingCovariance(matrix.shape[1])
    whole.update(matrix)
    scale = max(np.abs(whole.scatter_matrix()).max(), 1.0)
    assert np.allclose(
        left.scatter_matrix(), whole.scatter_matrix(), atol=1e-8 * scale
    )


@settings(max_examples=40, deadline=None)
@given(
    matrix=data_matrices(min_rows=4),
    hole_seed=st.integers(min_value=0, max_value=10_000),
)
def test_fill_holes_never_touches_known_cells(matrix, hole_seed):
    model = RatioRuleModel(cutoff=1).fit(matrix)
    rng = np.random.default_rng(hole_seed)
    row = matrix[0].copy()
    n_holes = int(rng.integers(1, matrix.shape[1]))
    holes = rng.choice(matrix.shape[1], size=n_holes, replace=False)
    row[holes] = np.nan
    result = fill_holes(row, model.rules_matrix, model.means_)
    known = ~np.isnan(row)
    assert np.array_equal(result.filled[known], row[known])
    assert np.all(np.isfinite(result.filled))


@settings(max_examples=30, deadline=None)
@given(
    concept=arrays(np.float64, 2, elements=st.floats(-50, 50, allow_nan=False)),
    hole=st.integers(min_value=0, max_value=3),
)
def test_on_plane_point_recovered_exactly(concept, hole):
    """A point exactly on the rule plane reconstructs exactly."""
    v = np.array(
        [[0.5, 0.5], [0.5, -0.5], [0.5, 0.5], [0.5, -0.5]]
    )  # orthonormal columns
    means = np.array([1.0, 2.0, 3.0, 4.0])
    truth = v @ concept + means
    row = truth.copy()
    row[hole] = np.nan
    result = fill_holes(row, v, means)
    assert np.allclose(result.filled, truth, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(matrix=data_matrices(min_rows=5, min_cols=3))
def test_guessing_error_nonnegative_finite_and_consistent(matrix):
    model = RatioRuleModel(cutoff=1).fit(matrix)
    report = single_hole_error(model, matrix)
    # No a-priori magnitude bound exists (the reconstruction operator
    # can amplify by 1 / smallest-singular-value of V'), but the error
    # must be finite, non-negative, and recombine from its per-column
    # parts.
    assert report.value >= 0.0
    assert np.isfinite(report.value)
    recombined = np.sqrt(
        sum(v**2 for v in report.per_column.values()) / len(report.per_column)
    )
    assert np.isclose(report.value, recombined, rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    matrix=data_matrices(min_rows=6, min_cols=3),
    permutation_seed=st.integers(0, 1000),
)
def test_guessing_error_row_order_invariant(matrix, permutation_seed):
    """Shuffling test rows never changes GEh."""
    model = RatioRuleModel(cutoff=1).fit(matrix)
    rng = np.random.default_rng(permutation_seed)
    shuffled = matrix[rng.permutation(matrix.shape[0])]
    original = guessing_error(model, matrix, h=1)
    permuted = guessing_error(model, shuffled, h=1)
    assert np.isclose(original.value, permuted.value, rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(matrix=data_matrices(min_rows=4, min_cols=2))
def test_transform_inverse_consistency(matrix):
    """inverse_transform(transform(x)) is the rank-k projection: applying
    it twice changes nothing."""
    model = RatioRuleModel(cutoff=1).fit(matrix)
    once = model.reconstruct(matrix)
    twice = model.reconstruct(once)
    scale = max(np.abs(once).max(), 1.0)
    assert np.allclose(once, twice, atol=1e-7 * scale)


@settings(max_examples=25, deadline=None)
@given(matrix=data_matrices(min_rows=4, min_cols=2))
def test_rules_are_orthonormal(matrix):
    model = RatioRuleModel().fit(matrix)
    v = model.rules_matrix
    assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(matrix=data_matrices(min_rows=5, min_cols=3))
def test_energy_cutoff_energy_reached(matrix):
    """The kept rules really cover >= 85% of the variance (or all of it)."""
    model = RatioRuleModel().fit(matrix)
    assume(model.total_variance_ > 1e-9)  # zero-variance data: k=1 by fiat
    total = model.rules_.total_energy_fraction()
    assert total >= 0.85 - 1e-9 or model.k == matrix.shape[1]
