"""Tests for the hole-filling algorithm (Sec. 4.4 / Fig. 3)."""

import numpy as np
import pytest

from repro.core.reconstruction import (
    CASE_ALL_HOLES,
    CASE_EXACT,
    CASE_NO_HOLES,
    CASE_OVER,
    CASE_UNDER,
    fill_holes,
    fill_matrix,
    hole_fill_operator,
)


@pytest.fixture
def rank1_rules():
    """One rule in 3-space: direction (2, 1, 2)/3, means (10, 5, 10)."""
    direction = np.array([2.0, 1.0, 2.0]) / 3.0
    return direction.reshape(3, 1), np.array([10.0, 5.0, 10.0])


@pytest.fixture
def rank2_rules():
    """Two orthonormal rules in 4-space with zero means."""
    v = np.zeros((4, 2))
    v[:, 0] = np.array([1.0, 1.0, 1.0, 1.0]) / 2.0
    v[:, 1] = np.array([1.0, -1.0, 1.0, -1.0]) / 2.0
    return v, np.zeros(4)


class TestCaseDispatch:
    def test_exactly_specified(self, rank2_rules):
        v, means = rank2_rules
        # M=4, k=2, h=2 -> M-h == k.
        row = np.array([3.0, 1.0, np.nan, np.nan])
        result = fill_holes(row, v, means)
        assert result.case == CASE_EXACT
        assert result.rules_used == 2
        # Point on the plane: concept (a, b) with a+b=... solve directly:
        # entries: (a+b)/2=3, (a-b)/2=1 -> a=4, b=2 -> holes: (a+b)/2=3, (a-b)/2=1.
        np.testing.assert_allclose(result.filled, [3.0, 1.0, 3.0, 1.0], atol=1e-12)

    def test_over_specified(self, rank1_rules):
        v, means = rank1_rules
        # M=3, k=1, h=1 -> M-h=2 > 1.
        row = np.array([12.0, 6.0, np.nan])
        result = fill_holes(row, v, means)
        assert result.case == CASE_OVER
        assert result.rules_used == 1
        # Least squares: b' = (2, 1), V' = (2/3, 1/3) -> concept = 3 ->
        # hole = 2/3*3 + 10 = 12.
        np.testing.assert_allclose(result.filled, [12.0, 6.0, 12.0], atol=1e-10)

    def test_under_specified_drops_weakest_rules(self, rank2_rules):
        v, means = rank2_rules
        # M=4, k=2, h=3 -> M-h=1 < k: keep only RR1.
        row = np.array([5.0, np.nan, np.nan, np.nan])
        result = fill_holes(row, v, means)
        assert result.case == CASE_UNDER
        assert result.rules_used == 1
        # Only RR1 (all 1/2): concept = 10, every coordinate = 5.
        np.testing.assert_allclose(result.filled, [5.0, 5.0, 5.0, 5.0], atol=1e-12)

    def test_no_holes_returns_row(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([1.0, 2.0, 3.0])
        result = fill_holes(row, v, means)
        assert result.case == CASE_NO_HOLES
        np.testing.assert_array_equal(result.filled, row)

    def test_all_holes_returns_means(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([np.nan, np.nan, np.nan])
        result = fill_holes(row, v, means)
        assert result.case == CASE_ALL_HOLES
        assert result.rules_used == 0
        np.testing.assert_array_equal(result.filled, means)


class TestCorrectness:
    def test_point_on_hyperplane_recovered_exactly(self, rank2_rules, rng):
        """A row exactly on the RR-plane is reconstructed perfectly."""
        v, means = rank2_rules
        concept = rng.standard_normal(2)
        truth = v @ concept + means
        for hole in range(4):
            row = truth.copy()
            row[hole] = np.nan
            result = fill_holes(row, v, means)
            np.testing.assert_allclose(result.filled, truth, atol=1e-10)

    def test_known_entries_never_modified(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([99.0, np.nan, -7.0])
        result = fill_holes(row, v, means)
        assert result.filled[0] == 99.0
        assert result.filled[2] == -7.0

    def test_figure4a_geometry(self):
        """Fig. 4(a): M=2, k=1, h=1 -- intersect feasible line with RR1."""
        direction = np.array([0.866, 0.5])
        direction = direction / np.linalg.norm(direction)
        v = direction.reshape(2, 1)
        means = np.zeros(2)
        row = np.array([4.0, np.nan])
        result = fill_holes(row, v, means)
        assert result.case == CASE_EXACT
        # On the line: butter/bread = 0.5/0.866.
        assert result.filled[1] == pytest.approx(4.0 * 0.5 / 0.866, rel=1e-6)

    def test_singular_square_system_falls_back(self):
        """CASE 1 with singular V' must not crash: pseudo-inverse path."""
        # Rule loads only on the hole column: V' (known rows) is zero.
        v = np.array([[0.0], [1.0]])
        means = np.array([5.0, 5.0])
        row = np.array([7.0, np.nan])
        result = fill_holes(row, v, means)
        # No information flows; the hole gets the mean (concept = 0).
        assert result.filled[1] == pytest.approx(5.0)

    def test_input_row_not_modified(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([1.0, np.nan, 3.0])
        fill_holes(row, v, means)
        assert np.isnan(row[1])


class TestUnderdeterminedPolicies:
    def test_min_norm_satisfies_known_constraints(self, rank2_rules):
        v, means = rank2_rules
        row = np.array([5.0, np.nan, np.nan, np.nan])
        result = fill_holes(row, v, means, underdetermined="min-norm")
        assert result.case == CASE_UNDER
        assert result.rules_used == 2  # all rules retained
        # The known coordinate is reproduced by the rule combination.
        reconstructed = v @ result.concept + means
        assert reconstructed[0] == pytest.approx(5.0, abs=1e-9)

    def test_min_norm_concept_is_minimal(self, rank2_rules):
        """Any other consistent concept has a larger norm."""
        v, means = rank2_rules
        row = np.array([5.0, np.nan, np.nan, np.nan])
        result = fill_holes(row, v, means, underdetermined="min-norm")
        truncated = fill_holes(row, v, means, underdetermined="truncate")
        truncated_full = np.zeros(2)
        truncated_full[: truncated.concept.shape[0]] = truncated.concept
        # The truncated solution is also consistent, so its norm bounds
        # the min-norm solution from above.
        assert np.linalg.norm(result.concept) <= np.linalg.norm(truncated_full) + 1e-9

    def test_min_norm_avoids_weak_loading_blowup(self):
        """The motivating failure: RR1 barely loads on the known column."""
        v = np.array(
            [[0.05, 0.85], [0.99, 0.1], [0.1, 0.5]]
        )
        # Orthonormalize the columns for a fair test.
        q, _ = np.linalg.qr(v)
        means = np.zeros(3)
        row = np.array([2.0, np.nan, np.nan])
        truncated = fill_holes(row, q, means, underdetermined="truncate")
        min_norm = fill_holes(row, q, means, underdetermined="min-norm")
        # Truncation divides by the ~0.05 loading and explodes;
        # min-norm stays bounded.
        assert np.abs(min_norm.filled).max() < np.abs(truncated.filled).max()

    def test_policies_agree_when_not_underdetermined(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([12.0, 6.0, np.nan])
        a = fill_holes(row, v, means, underdetermined="truncate")
        b = fill_holes(row, v, means, underdetermined="min-norm")
        np.testing.assert_allclose(a.filled, b.filled)

    def test_unknown_policy_rejected(self, rank1_rules):
        v, means = rank1_rules
        with pytest.raises(ValueError, match="underdetermined"):
            fill_holes(np.array([1.0, np.nan, 2.0]), v, means, underdetermined="magic")


class TestValidation:
    def test_rejects_2d_row(self, rank1_rules):
        v, means = rank1_rules
        with pytest.raises(ValueError, match="1-d"):
            fill_holes(np.ones((2, 3)), v, means)

    def test_rejects_shape_mismatch(self, rank1_rules):
        v, means = rank1_rules
        with pytest.raises(ValueError, match="rules_matrix"):
            fill_holes(np.ones(4), v, means)

    def test_rejects_bad_means(self, rank1_rules):
        v, _means = rank1_rules
        with pytest.raises(ValueError, match="means"):
            fill_holes(np.ones(3), v, np.ones(2))

    def test_rejects_infinity(self, rank1_rules):
        v, means = rank1_rules
        with pytest.raises(ValueError, match="infinit"):
            fill_holes(np.array([1.0, np.inf, np.nan]), v, means)

    def test_rejects_zero_rules(self):
        with pytest.raises(ValueError, match="at least one rule"):
            fill_holes(np.array([1.0, np.nan]), np.empty((2, 0)), np.zeros(2))


class TestHoleFillOperator:
    def test_matches_fill_holes(self, rank2_rules, rng):
        v, means = rank2_rules
        holes = [1, 3]
        operator, case, used = hole_fill_operator(holes, v, 4)
        assert case == CASE_EXACT
        assert used == 2
        for _ in range(5):
            row = rng.standard_normal(4) * 3
            punched = row.copy()
            punched[holes] = np.nan
            direct = fill_holes(punched, v, means)
            known = [0, 2]
            via_operator = operator @ (row[known] - means[known]) + means[holes]
            np.testing.assert_allclose(direct.filled[holes], via_operator, atol=1e-10)

    def test_rejects_duplicates(self, rank2_rules):
        v, _means = rank2_rules
        with pytest.raises(ValueError, match="duplicates"):
            hole_fill_operator([1, 1], v, 4)

    def test_rejects_empty(self, rank2_rules):
        v, _means = rank2_rules
        with pytest.raises(ValueError, match="non-empty"):
            hole_fill_operator([], v, 4)

    def test_all_holes_degenerate(self, rank2_rules):
        v, _means = rank2_rules
        operator, case, used = hole_fill_operator([0, 1, 2, 3], v, 4)
        assert case == CASE_ALL_HOLES
        assert used == 0
        assert operator.shape == (4, 0)


class TestFillMatrix:
    def test_fills_all_nans(self, rank2_rules, rng):
        v, means = rank2_rules
        matrix = rng.standard_normal((10, 4))
        punched = matrix.copy()
        punched[2, 1] = np.nan
        punched[5, 0] = np.nan
        punched[5, 3] = np.nan
        filled = fill_matrix(punched, v, means)
        assert not np.isnan(filled).any()
        # Untouched cells pass through.
        mask = ~np.isnan(punched)
        np.testing.assert_array_equal(filled[mask], punched[mask])

    def test_matches_row_by_row(self, rank2_rules, rng):
        v, means = rank2_rules
        matrix = rng.standard_normal((8, 4))
        punched = matrix.copy()
        punched[np.asarray([0, 3, 6]), np.asarray([2, 2, 0])] = np.nan
        batch = fill_matrix(punched, v, means)
        for i in range(8):
            single = fill_holes(punched[i], v, means)
            np.testing.assert_allclose(batch[i], single.filled, atol=1e-10)

    def test_all_hole_rows_get_means(self, rank2_rules):
        v, means = rank2_rules
        punched = np.full((2, 4), np.nan)
        filled = fill_matrix(punched, v, means)
        np.testing.assert_allclose(filled, np.tile(means, (2, 1)))

    def test_no_nans_is_identity(self, rank2_rules, rng):
        v, means = rank2_rules
        matrix = rng.standard_normal((5, 4))
        np.testing.assert_array_equal(fill_matrix(matrix, v, means), matrix)

    def test_rejects_1d(self, rank2_rules):
        v, means = rank2_rules
        with pytest.raises(ValueError, match="2-d"):
            fill_matrix(np.ones(4), v, means)

    def test_rejects_bad_means_shape(self, rank2_rules):
        v, _means = rank2_rules
        with pytest.raises(ValueError, match="means"):
            fill_matrix(np.ones((3, 4)), v, np.zeros(3))
        with pytest.raises(ValueError, match="means"):
            fill_matrix(np.ones((3, 4)), v, np.zeros((4, 1)))

    @pytest.mark.parametrize("policy", ["truncate", "min-norm"])
    def test_policy_parity_with_fill_holes(self, policy, rank2_rules, rng):
        """fill_matrix honors the same underdetermined policy as fill_holes."""
        v, means = rank2_rules
        matrix = rng.standard_normal((12, 4))
        punched = matrix.copy()
        # Rows with 3 holes and 1 known value are underdetermined (k=2 > 1).
        punched[1, 1:] = np.nan
        punched[4, :3] = np.nan
        punched[7, 2] = np.nan  # exactly determined row for contrast
        batch = fill_matrix(punched, v, means, underdetermined=policy)
        for i in range(12):
            single = fill_holes(punched[i], v, means, underdetermined=policy)
            np.testing.assert_allclose(batch[i], single.filled, atol=1e-10)

    def test_policies_differ_on_underdetermined_rows(self, rng):
        v = np.array([[0.05, 0.85], [0.99, 0.1], [0.1, 0.5]])
        q, _ = np.linalg.qr(v)
        means = np.zeros(3)
        punched = np.array([[2.0, np.nan, np.nan]])
        truncated = fill_matrix(punched, q, means, underdetermined="truncate")
        min_norm = fill_matrix(punched, q, means, underdetermined="min-norm")
        assert np.abs(min_norm).max() < np.abs(truncated).max()

    def test_unknown_policy_rejected(self, rank2_rules):
        v, means = rank2_rules
        with pytest.raises(ValueError, match="underdetermined"):
            fill_matrix(np.ones((2, 4)), v, means, underdetermined="magic")


class TestZeroHoleFastPath:
    """Regression: complete rows must not build (or cache) operators."""

    def test_fill_holes_skips_operator_construction(
        self, rank1_rules, monkeypatch
    ):
        from repro.core import reconstruction

        def exploding(*args, **kwargs):
            raise AssertionError(
                "compute_fill_operator must not run for a complete row"
            )

        monkeypatch.setattr(reconstruction, "compute_fill_operator", exploding)
        v, means = rank1_rules
        row = np.array([1.0, 2.0, 3.0])
        result = reconstruction.fill_holes(row, v, means)
        assert result.case == CASE_NO_HOLES
        np.testing.assert_array_equal(result.filled, row)

    def test_fill_matrix_skips_operator_construction(
        self, rank1_rules, monkeypatch
    ):
        from repro.core import reconstruction

        def exploding(*args, **kwargs):
            raise AssertionError(
                "compute_fill_operator must not run for complete rows"
            )

        monkeypatch.setattr(reconstruction, "compute_fill_operator", exploding)
        v, means = rank1_rules
        matrix = np.arange(12.0).reshape(4, 3)
        np.testing.assert_array_equal(
            reconstruction.fill_matrix(matrix, v, means), matrix
        )

    def test_fill_holes_no_holes_output_is_a_copy(self, rank1_rules):
        v, means = rank1_rules
        row = np.array([1.0, 2.0, 3.0])
        result = fill_holes(row, v, means)
        result.filled[0] = 99.0
        assert row[0] == 1.0
