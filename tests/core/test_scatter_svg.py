"""Tests for the SVG scatter exporter."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.visualize import Projection, scatter_svg


@pytest.fixture
def projection():
    return Projection(
        x=np.array([0.0, 1.0, 2.0, 10.0]),
        y=np.array([0.0, 0.5, 1.0, 5.0]),
        x_rule=0,
        y_rule=1,
        labels=("a", "b", "c", "outlier & co"),
    )


class TestScatterSVG:
    def test_well_formed_xml(self, projection):
        svg = scatter_svg(projection)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_circle_per_point(self, projection):
        svg = scatter_svg(projection)
        root = ET.fromstring(svg)
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 4

    def test_extreme_markers_and_labels(self, projection):
        svg = scatter_svg(projection, mark_extremes=1)
        root = ET.fromstring(svg)
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 5  # 4 points + 1 marker ring
        texts = [e.text for e in root.iter() if e.tag.endswith("text")]
        assert "outlier & co" in texts  # escaped then parsed back

    def test_axis_labels_present(self, projection):
        svg = scatter_svg(projection)
        assert "RR1" in svg and "RR2" in svg

    def test_custom_title(self, projection):
        svg = scatter_svg(projection, title="my plot")
        assert "my plot" in svg

    def test_points_inside_canvas(self, projection):
        svg = scatter_svg(projection, width=400, height=300)
        root = ET.fromstring(svg)
        for circle in (e for e in root.iter() if e.tag.endswith("circle")):
            cx, cy = float(circle.get("cx")), float(circle.get("cy"))
            assert 0 <= cx <= 400
            assert 0 <= cy <= 300

    def test_degenerate_single_value(self):
        projection = Projection(
            x=np.array([2.0, 2.0]), y=np.array([3.0, 3.0]), x_rule=0, y_rule=1
        )
        svg = scatter_svg(projection)
        ET.fromstring(svg)  # must stay well-formed

    def test_too_small_canvas_rejected(self, projection):
        with pytest.raises(ValueError, match="at least"):
            scatter_svg(projection, width=50, height=50)

    def test_file_round_trip(self, projection, tmp_path):
        path = tmp_path / "plot.svg"
        path.write_text(scatter_svg(projection, mark_extremes=2))
        assert path.read_text().startswith("<svg")
