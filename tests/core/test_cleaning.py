"""Tests for data cleaning (imputation + corruption repair)."""

import numpy as np
import pytest

from repro.core.cleaning import impute_missing, repair_corrupted
from repro.core.model import RatioRuleModel


@pytest.fixture
def ratio_data(rng):
    factor = rng.normal(8.0, 2.5, size=250)
    matrix = np.outer(factor, [1.0, 3.0, 2.0])
    matrix += rng.normal(0.0, 0.05, size=matrix.shape)
    return matrix


@pytest.fixture
def model(ratio_data):
    return RatioRuleModel(cutoff=1).fit(ratio_data)


class TestImputeMissing:
    def test_fills_and_audits(self, model, ratio_data):
        dirty = ratio_data[:20].copy()
        dirty[4, 1] = np.nan
        dirty[9, 0] = np.nan
        dirty[9, 2] = np.nan
        report = impute_missing(model, dirty)
        assert report.n_repairs == 3
        assert not np.isnan(report.cleaned).any()
        positions = {(r, c) for r, c, _old, _new in report.repairs}
        assert positions == {(4, 1), (9, 0), (9, 2)}
        # Old values recorded as NaN for holes.
        assert all(np.isnan(old) for _r, _c, old, _new in report.repairs)

    def test_accuracy_on_ratio_data(self, model, ratio_data):
        dirty = ratio_data[:30].copy()
        truth = dirty[7, 1]
        dirty[7, 1] = np.nan
        report = impute_missing(model, dirty)
        assert abs(report.cleaned[7, 1] - truth) < 1.0

    def test_input_untouched(self, model, ratio_data):
        dirty = ratio_data[:5].copy()
        dirty[0, 0] = np.nan
        impute_missing(model, dirty)
        assert np.isnan(dirty[0, 0])

    def test_clean_input_no_repairs(self, model, ratio_data):
        report = impute_missing(model, ratio_data[:5])
        assert report.n_repairs == 0
        np.testing.assert_array_equal(report.cleaned, ratio_data[:5])

    def test_rejects_1d(self, model):
        with pytest.raises(ValueError, match="2-d"):
            impute_missing(model, np.array([1.0, np.nan]))


class TestRepairCorrupted:
    def test_repairs_gross_corruption(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        truth = dirty[13, 2]
        dirty[13, 2] = 9999.0
        report = repair_corrupted(model, dirty, n_sigmas=4.0)
        assert report.n_repairs >= 1
        repaired_positions = {(r, c) for r, c, _o, _n in report.repairs}
        assert (13, 2) in repaired_positions
        assert abs(report.cleaned[13, 2] - truth) < 5.0

    def test_clean_data_untouched(self, model, ratio_data):
        report = repair_corrupted(model, ratio_data[:50], n_sigmas=6.0)
        assert report.n_repairs == 0
        np.testing.assert_array_equal(report.cleaned, ratio_data[:50])

    def test_never_repairs_same_cell_twice(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        dirty[3, 0] = 5000.0
        report = repair_corrupted(model, dirty, n_sigmas=3.0, max_rounds=5)
        positions = [(r, c) for r, c, _o, _n in report.repairs]
        assert len(positions) == len(set(positions))

    def test_rejects_nan_input(self, model):
        with pytest.raises(ValueError, match="impute"):
            repair_corrupted(model, np.array([[1.0, np.nan, 2.0]]))

    def test_audit_records_old_and_new(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        dirty[2, 1] = 7777.0
        report = repair_corrupted(model, dirty, n_sigmas=4.0)
        entry = next(
            (r for r in report.repairs if (r[0], r[1]) == (2, 1)), None
        )
        assert entry is not None
        _row, _col, old, new = entry
        assert old == pytest.approx(7777.0)
        assert new != old


class TestDegenerateInputs:
    def test_all_holes_row_filled_with_column_means(self, model, ratio_data):
        dirty = ratio_data[:5].copy()
        dirty[2, :] = np.nan
        report = impute_missing(model, dirty)
        assert report.n_repairs == 3
        assert not np.isnan(report.cleaned).any()
        # Nothing known in the row: the documented fallback is means.
        np.testing.assert_allclose(report.cleaned[2], model.means_)

    def test_fully_missing_matrix(self, model):
        dirty = np.full((4, 3), np.nan)
        report = impute_missing(model, dirty)
        assert report.n_repairs == 12
        np.testing.assert_allclose(
            report.cleaned, np.tile(model.means_, (4, 1))
        )

    def test_zero_variance_column_repair(self, rng):
        factor = rng.normal(8.0, 2.5, size=150)
        matrix = np.column_stack(
            [factor, 3.0 * factor + rng.normal(0, 0.05, 150), np.full(150, 5.0)]
        )
        model = RatioRuleModel(cutoff=2).fit(matrix)
        report = repair_corrupted(model, matrix)
        # The constant column is perfectly reconstructed: no repairs
        # may be invented there.
        assert all(column != 2 for _r, column, _o, _n in report.repairs)

    def test_full_rank_model_k_equals_m(self, ratio_data):
        model = RatioRuleModel(cutoff=3).fit(ratio_data)
        assert model.k == 3
        corrupted = ratio_data[:50].copy()
        corrupted[2, 1] = 7777.0
        # Rank-M reconstruction can reproduce *any* row exactly, so the
        # hide-one-cell detector is the only signal left; the repair
        # loop must terminate without oscillating either way.
        report = repair_corrupted(model, corrupted, n_sigmas=4.0)
        assert np.isfinite(report.cleaned).all()

    def test_single_row_matrix(self, model, ratio_data):
        single = ratio_data[:1].copy()
        single[0, 1] = np.nan
        report = impute_missing(model, single)
        assert report.n_repairs == 1
        assert np.isfinite(report.cleaned).all()
        # Repairing a 1-row matrix: no distribution, no repairs.
        assert repair_corrupted(model, ratio_data[:1]).n_repairs == 0

    def test_input_never_modified(self, model, ratio_data):
        dirty = ratio_data[:10].copy()
        dirty[3, 1] = np.nan
        frozen = dirty.copy()
        impute_missing(model, dirty)
        np.testing.assert_array_equal(dirty, frozen)
        complete = ratio_data[:10].copy()
        complete[4, 2] = 9999.0
        frozen = complete.copy()
        repair_corrupted(model, complete)
        np.testing.assert_array_equal(complete, frozen)


class TestDeterminism:
    def test_cleaning_is_deterministic(self, model, ratio_data):
        dirty = ratio_data[:40].copy()
        dirty[3, 1] = np.nan
        dirty[8, 0] = 4444.0
        first = impute_missing(model, dirty)
        second = impute_missing(model, dirty)
        np.testing.assert_array_equal(first.cleaned, second.cleaned)
        # Tuple equality would trip over the NaN old-values; compare
        # positions/new-values exactly and old-values as arrays.
        assert len(first.repairs) == len(second.repairs)
        for (r1, c1, old1, new1), (r2, c2, old2, new2) in zip(
            first.repairs, second.repairs
        ):
            assert (r1, c1, new1) == (r2, c2, new2)
            np.testing.assert_array_equal(old1, old2)
        complete = first.cleaned
        rep_a = repair_corrupted(model, complete, n_sigmas=4.0)
        rep_b = repair_corrupted(model, complete, n_sigmas=4.0)
        np.testing.assert_array_equal(rep_a.cleaned, rep_b.cleaned)
        assert rep_a.repairs == rep_b.repairs
