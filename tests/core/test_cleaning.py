"""Tests for data cleaning (imputation + corruption repair)."""

import numpy as np
import pytest

from repro.core.cleaning import impute_missing, repair_corrupted
from repro.core.model import RatioRuleModel


@pytest.fixture
def ratio_data(rng):
    factor = rng.normal(8.0, 2.5, size=250)
    matrix = np.outer(factor, [1.0, 3.0, 2.0])
    matrix += rng.normal(0.0, 0.05, size=matrix.shape)
    return matrix


@pytest.fixture
def model(ratio_data):
    return RatioRuleModel(cutoff=1).fit(ratio_data)


class TestImputeMissing:
    def test_fills_and_audits(self, model, ratio_data):
        dirty = ratio_data[:20].copy()
        dirty[4, 1] = np.nan
        dirty[9, 0] = np.nan
        dirty[9, 2] = np.nan
        report = impute_missing(model, dirty)
        assert report.n_repairs == 3
        assert not np.isnan(report.cleaned).any()
        positions = {(r, c) for r, c, _old, _new in report.repairs}
        assert positions == {(4, 1), (9, 0), (9, 2)}
        # Old values recorded as NaN for holes.
        assert all(np.isnan(old) for _r, _c, old, _new in report.repairs)

    def test_accuracy_on_ratio_data(self, model, ratio_data):
        dirty = ratio_data[:30].copy()
        truth = dirty[7, 1]
        dirty[7, 1] = np.nan
        report = impute_missing(model, dirty)
        assert abs(report.cleaned[7, 1] - truth) < 1.0

    def test_input_untouched(self, model, ratio_data):
        dirty = ratio_data[:5].copy()
        dirty[0, 0] = np.nan
        impute_missing(model, dirty)
        assert np.isnan(dirty[0, 0])

    def test_clean_input_no_repairs(self, model, ratio_data):
        report = impute_missing(model, ratio_data[:5])
        assert report.n_repairs == 0
        np.testing.assert_array_equal(report.cleaned, ratio_data[:5])

    def test_rejects_1d(self, model):
        with pytest.raises(ValueError, match="2-d"):
            impute_missing(model, np.array([1.0, np.nan]))


class TestRepairCorrupted:
    def test_repairs_gross_corruption(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        truth = dirty[13, 2]
        dirty[13, 2] = 9999.0
        report = repair_corrupted(model, dirty, n_sigmas=4.0)
        assert report.n_repairs >= 1
        repaired_positions = {(r, c) for r, c, _o, _n in report.repairs}
        assert (13, 2) in repaired_positions
        assert abs(report.cleaned[13, 2] - truth) < 5.0

    def test_clean_data_untouched(self, model, ratio_data):
        report = repair_corrupted(model, ratio_data[:50], n_sigmas=6.0)
        assert report.n_repairs == 0
        np.testing.assert_array_equal(report.cleaned, ratio_data[:50])

    def test_never_repairs_same_cell_twice(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        dirty[3, 0] = 5000.0
        report = repair_corrupted(model, dirty, n_sigmas=3.0, max_rounds=5)
        positions = [(r, c) for r, c, _o, _n in report.repairs]
        assert len(positions) == len(set(positions))

    def test_rejects_nan_input(self, model):
        with pytest.raises(ValueError, match="impute"):
            repair_corrupted(model, np.array([[1.0, np.nan, 2.0]]))

    def test_audit_records_old_and_new(self, model, ratio_data):
        dirty = ratio_data[:50].copy()
        dirty[2, 1] = 7777.0
        report = repair_corrupted(model, dirty, n_sigmas=4.0)
        entry = next(
            (r for r in report.repairs if (r[0], r[1]) == (2, 1)), None
        )
        assert entry is not None
        _row, _col, old, new = entry
        assert old == pytest.approx(7777.0)
        assert new != old
