"""Tests for RR-space projection and ASCII scatter plots."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.visualize import Projection, ascii_scatter, project


@pytest.fixture
def model_and_data(rng):
    factor1 = rng.normal(0.0, 5.0, size=120)
    factor2 = rng.normal(0.0, 2.0, size=120)
    factor3 = rng.normal(0.0, 1.0, size=120)
    basis = np.array(
        [[1.0, 1.0, 1.0, 1.0], [1.0, -1.0, 1.0, -1.0], [1.0, 1.0, -1.0, -1.0]]
    ) / 2.0
    matrix = (
        np.column_stack([factor1, factor2, factor3]) @ basis
        + rng.normal(0, 0.01, (120, 4))
        + 10.0
    )
    model = RatioRuleModel(cutoff=3).fit(matrix)
    return model, matrix


class TestProject:
    def test_default_axes(self, model_and_data):
        model, matrix = model_and_data
        projection = project(model, matrix)
        assert projection.x_rule == 0
        assert projection.y_rule == 1
        assert projection.x.shape == (120,)

    def test_coordinates_match_transform(self, model_and_data):
        model, matrix = model_and_data
        projection = project(model, matrix, x_rule=1, y_rule=2)
        coords = model.transform(matrix)
        np.testing.assert_allclose(projection.x, coords[:, 1])
        np.testing.assert_allclose(projection.y, coords[:, 2])

    def test_labels_carried(self, model_and_data):
        model, matrix = model_and_data
        labels = [f"row{i}" for i in range(120)]
        projection = project(model, matrix, labels=labels)
        assert projection.labels[5] == "row5"

    def test_label_count_mismatch(self, model_and_data):
        model, matrix = model_and_data
        with pytest.raises(ValueError, match="labels"):
            project(model, matrix, labels=["just one"])

    def test_same_axes_rejected(self, model_and_data):
        model, matrix = model_and_data
        with pytest.raises(ValueError, match="differ"):
            project(model, matrix, x_rule=1, y_rule=1)

    def test_axis_out_of_range(self, model_and_data):
        model, matrix = model_and_data
        with pytest.raises(ValueError, match="out of range"):
            project(model, matrix, x_rule=0, y_rule=7)

    def test_extremes_farthest_first(self, model_and_data):
        model, matrix = model_and_data
        projection = project(model, matrix)
        extremes = projection.extremes(5)
        assert len(extremes) == 5
        cx, cy = projection.x.mean(), projection.y.mean()
        distances = [np.hypot(x - cx, y - cy) for _i, x, y in extremes]
        assert distances == sorted(distances, reverse=True)


class TestAsciiScatter:
    def _projection(self):
        return Projection(
            x=np.array([0.0, 1.0, 2.0, 3.0]),
            y=np.array([0.0, 1.0, 0.5, 3.0]),
            x_rule=0,
            y_rule=1,
            labels=("a", "b", "c", "d"),
        )

    def test_contains_points_and_frame(self):
        text = ascii_scatter(self._projection(), width=20, height=10)
        assert "*" in text
        assert text.count("+") >= 4  # frame corners
        assert "RR2" in text and "RR1" in text

    def test_extremes_marked_with_labels(self):
        text = ascii_scatter(self._projection(), width=20, height=10, mark_extremes=2)
        assert "A = " in text
        assert "B = " in text

    def test_degenerate_single_point(self):
        projection = Projection(
            x=np.array([1.0, 1.0]), y=np.array([2.0, 2.0]), x_rule=0, y_rule=1
        )
        text = ascii_scatter(projection, width=15, height=6)
        assert "#" in text  # coincident points collapse to one cell

    def test_too_small_plot_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            ascii_scatter(self._projection(), width=5, height=2)

    def test_dimensions_respected(self):
        text = ascii_scatter(self._projection(), width=30, height=8)
        body = [line for line in text.splitlines() if line.startswith("|")]
        assert len(body) == 8
        assert all(len(line) == 32 for line in body)
