"""Tests for Ratio-Rule-based outlier detection."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.outliers import (
    detect_cell_outliers,
    detect_row_outliers,
    reconstruction_residuals,
)


@pytest.fixture
def clean_matrix(rng):
    """Strongly rank-1 data: every row follows ratio (1, 2, 3)."""
    factor = rng.normal(10.0, 3.0, size=200)
    matrix = np.outer(factor, [1.0, 2.0, 3.0])
    matrix += rng.normal(0.0, 0.05, size=matrix.shape)
    return matrix


class TestCellOutliers:
    def test_corrupted_cell_flagged(self, clean_matrix):
        corrupted = clean_matrix.copy()
        corrupted[17, 1] = 500.0  # wildly off the ratio line
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_cell_outliers(model, corrupted, n_sigmas=3.0)
        assert outliers, "corruption not detected"
        top = outliers[0]
        assert (top.row, top.column) == (17, 1)
        assert abs(top.z_score) > 3.0
        assert top.actual == pytest.approx(500.0)
        # The reconstruction should land near the ratio-consistent value.
        expected = clean_matrix[17, 1]
        assert abs(top.predicted - expected) < 2.0

    def test_clean_data_few_flags(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_cell_outliers(model, clean_matrix, n_sigmas=4.0)
        # Gaussian noise: 4-sigma flags should be rare (< 1% of cells).
        assert len(outliers) < 0.01 * clean_matrix.size

    def test_sorted_by_severity(self, clean_matrix):
        corrupted = clean_matrix.copy()
        corrupted[3, 0] = 300.0
        corrupted[8, 2] = 120.0
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_cell_outliers(model, corrupted, n_sigmas=3.0)
        z_scores = [abs(o.z_score) for o in outliers]
        assert z_scores == sorted(z_scores, reverse=True)

    def test_invalid_sigma(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        with pytest.raises(ValueError, match="n_sigmas"):
            detect_cell_outliers(model, clean_matrix, n_sigmas=0.0)

    def test_rejects_1d(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        with pytest.raises(ValueError, match="2-d"):
            detect_cell_outliers(model, clean_matrix[0])


class TestRowOutliers:
    def test_off_plane_row_flagged(self, clean_matrix):
        corrupted = clean_matrix.copy()
        corrupted[42] = [30.0, 5.0, 90.0]  # violates the 1:2:3 ratio badly
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_row_outliers(model, corrupted, n_sigmas=3.0)
        assert outliers
        assert outliers[0].row == 42

    def test_on_plane_rows_not_flagged(self, clean_matrix):
        """A row far along RR1 but ON the plane is not a row outlier."""
        extended = np.vstack([clean_matrix, [100.0, 200.0, 300.0]])
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_row_outliers(model, extended, n_sigmas=3.0)
        assert all(o.row != len(extended) - 1 for o in outliers)

    def test_sorted_by_residual(self, clean_matrix):
        corrupted = clean_matrix.copy()
        corrupted[1] = [50.0, 0.0, 200.0]
        corrupted[2] = [20.0, 10.0, 80.0]
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        outliers = detect_row_outliers(model, corrupted, n_sigmas=2.0)
        residuals = [o.residual for o in outliers]
        assert residuals == sorted(residuals, reverse=True)

    def test_invalid_sigma(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        with pytest.raises(ValueError, match="n_sigmas"):
            detect_row_outliers(model, clean_matrix, n_sigmas=-1.0)


class TestResiduals:
    def test_residuals_shape_and_nonnegative(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        residuals = reconstruction_residuals(model, clean_matrix)
        assert residuals.shape == (200,)
        assert np.all(residuals >= 0)

    def test_full_rank_model_zero_residuals(self, clean_matrix):
        model = RatioRuleModel(cutoff=3).fit(clean_matrix)
        residuals = reconstruction_residuals(model, clean_matrix)
        np.testing.assert_allclose(residuals, 0.0, atol=1e-8)


class TestDegenerateInputs:
    """Edge shapes must degrade gracefully, never crash (Sec. 4.4 is
    pitched at dirty warehouse data, which includes these)."""

    def test_zero_variance_column_is_skipped_not_crashed(self, rng):
        factor = rng.normal(10.0, 3.0, size=100)
        matrix = np.column_stack(
            [factor, 2.0 * factor + rng.normal(0, 0.05, 100), np.full(100, 7.0)]
        )
        model = RatioRuleModel(cutoff=2).fit(matrix)
        outliers = detect_cell_outliers(model, matrix)
        # The constant column reconstructs exactly; it must not be a
        # division-by-zero, and it must produce no flags of its own.
        assert all(o.column != 2 for o in outliers)
        detect_row_outliers(model, matrix)  # must not raise

    def test_full_rank_model_k_equals_m(self, clean_matrix):
        model = RatioRuleModel(cutoff=3).fit(clean_matrix)
        assert model.k == 3
        # Rank-M reconstruction is (numerically) exact, so row
        # residuals carry no signal worth flagging.
        outliers = detect_row_outliers(model, clean_matrix, n_sigmas=1e6)
        assert outliers == []
        detect_cell_outliers(model, clean_matrix)  # must not raise

    def test_single_row_matrix_yields_no_outliers(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        single = clean_matrix[:1]
        # One observation has no distribution: stddev is 0 in every
        # column, so both detectors must abstain rather than divide.
        assert detect_cell_outliers(model, single) == []
        assert detect_row_outliers(model, single) == []
        residuals = reconstruction_residuals(model, single)
        assert residuals.shape == (1,)

    def test_identical_rows_yield_no_row_outliers(self, clean_matrix):
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        constant = np.tile(clean_matrix[0], (20, 1))
        assert detect_row_outliers(model, constant) == []


class TestDeterminism:
    def test_detectors_are_deterministic(self, clean_matrix):
        corrupted = clean_matrix.copy()
        corrupted[17, 1] = 500.0
        model = RatioRuleModel(cutoff=1).fit(clean_matrix)
        first = detect_cell_outliers(model, corrupted)
        second = detect_cell_outliers(model, corrupted)
        assert first == second  # CellOutlier is a frozen dataclass
        assert detect_row_outliers(model, corrupted) == detect_row_outliers(
            model, corrupted
        )
        np.testing.assert_array_equal(
            reconstruction_residuals(model, corrupted),
            reconstruction_residuals(model, corrupted),
        )
