"""Tests for the wide-matrix (implicit covariance) mining path."""

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.core.wide import implicit_covariance_operator, mine_wide
from repro.io.schema import TableSchema


@pytest.fixture
def wide_matrix(rng):
    """200 rows x 80 columns, rank ~3 plus noise."""
    scores = rng.standard_normal((200, 3)) * np.array([10.0, 4.0, 2.0])
    loadings = rng.standard_normal((3, 80))
    return scores @ loadings + rng.normal(0, 0.05, (200, 80)) + 5.0


class TestImplicitOperator:
    def test_matches_explicit_covariance(self, wide_matrix, rng):
        matvec, means, total_variance = implicit_covariance_operator(wide_matrix)
        centered = wide_matrix - wide_matrix.mean(axis=0)
        explicit = centered.T @ centered
        for _ in range(3):
            vector = rng.standard_normal(80)
            np.testing.assert_allclose(matvec(vector), explicit @ vector, atol=1e-7)
        np.testing.assert_allclose(total_variance, np.trace(explicit), rtol=1e-10)
        np.testing.assert_allclose(means, wide_matrix.mean(axis=0))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="2-d"):
            implicit_covariance_operator(np.ones(4))
        with pytest.raises(ValueError, match="no rows"):
            implicit_covariance_operator(np.empty((0, 3)))


class TestMineWide:
    def test_matches_dense_path(self, wide_matrix):
        wide = mine_wide(wide_matrix, 3)
        dense = RatioRuleModel(cutoff=3).fit(wide_matrix)
        np.testing.assert_allclose(
            wide.eigenvalues_, dense.eigenvalues_, rtol=1e-6
        )
        np.testing.assert_allclose(
            wide.rules_matrix, dense.rules_matrix, atol=1e-4
        )

    def test_model_functional(self, wide_matrix):
        model = mine_wide(wide_matrix, 3)
        row = wide_matrix[0].copy()
        truth = row[10]
        row[10] = np.nan
        filled = model.fill_row(row)
        assert filled[10] == pytest.approx(truth, abs=0.5)
        coords = model.transform(wide_matrix[:5])
        assert coords.shape == (5, 3)

    def test_energy_fractions_sensible(self, wide_matrix):
        model = mine_wide(wide_matrix, 3)
        total = model.rules_.total_energy_fraction()
        assert 0.9 < total <= 1.0 + 1e-9  # rank-3 data

    def test_schema_respected(self, wide_matrix):
        schema = TableSchema.from_names([f"f{i}" for i in range(80)])
        model = mine_wide(wide_matrix, 2, schema=schema)
        assert model.schema_.names[0] == "f0"

    def test_validation(self, wide_matrix):
        with pytest.raises(ValueError, match="k must be"):
            mine_wide(wide_matrix, 0)
        with pytest.raises(ValueError, match="k must be"):
            mine_wide(wide_matrix, 81)
        with pytest.raises(ValueError, match="schema width"):
            mine_wide(wide_matrix, 2, schema=TableSchema.from_names(["a"]))
        with pytest.raises(ValueError, match="2-d"):
            mine_wide(np.ones(5), 1)

    def test_deterministic(self, wide_matrix):
        first = mine_wide(wide_matrix, 2, seed=3)
        second = mine_wide(wide_matrix, 2, seed=3)
        np.testing.assert_array_equal(first.rules_matrix, second.rules_matrix)
