"""Tests for mining from incomplete training data."""

import numpy as np
import pytest

from repro.core.incomplete import IncompleteCovariance, fit_incomplete
from repro.core.model import RatioRuleModel


@pytest.fixture
def rank1_matrix(rng):
    factor = rng.normal(5.0, 2.0, size=400)
    return np.outer(factor, [1.0, 2.0, 3.0]) + rng.normal(0, 0.05, (400, 3))


def punch(matrix, fraction, rng):
    damaged = matrix.copy()
    mask = rng.random(matrix.shape) < fraction
    # Keep at least one observed cell per column.
    mask[0] = False
    damaged[mask] = np.nan
    return damaged


class TestIncompleteCovariance:
    def test_complete_data_matches_reference(self, rng, rank1_matrix):
        acc = IncompleteCovariance(3)
        acc.update(rank1_matrix)
        centered = rank1_matrix - rank1_matrix.mean(axis=0)
        np.testing.assert_allclose(
            acc.scatter_matrix(), centered.T @ centered, rtol=1e-9
        )
        np.testing.assert_allclose(acc.column_means, rank1_matrix.mean(axis=0))
        assert acc.min_pair_count == 400

    def test_blockwise_equals_single(self, rng, rank1_matrix):
        damaged = punch(rank1_matrix, 0.2, rng)
        whole = IncompleteCovariance(3)
        whole.update(damaged)
        chunked = IncompleteCovariance(3)
        for start in range(0, 400, 64):
            chunked.update(damaged[start : start + 64])
        np.testing.assert_allclose(
            chunked.scatter_matrix(), whole.scatter_matrix(), rtol=1e-9
        )

    def test_means_ignore_missing(self, rng):
        matrix = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        acc = IncompleteCovariance(2)
        acc.update(matrix)
        np.testing.assert_allclose(acc.column_means, [2.0, 6.0])

    def test_all_missing_column_rejected(self):
        acc = IncompleteCovariance(2)
        acc.update(np.array([[1.0, np.nan], [2.0, np.nan]]))
        with pytest.raises(ValueError, match="no observed values"):
            _ = acc.column_means

    def test_never_coobserved_pair_zeroed(self):
        # Columns 0 and 1 never observed together.
        matrix = np.array([[1.0, np.nan], [np.nan, 2.0], [3.0, np.nan], [np.nan, 4.0]])
        acc = IncompleteCovariance(2)
        acc.update(matrix)
        scatter = acc.scatter_matrix()
        assert scatter[0, 1] == 0.0
        assert acc.min_pair_count == 0

    def test_width_validation(self):
        acc = IncompleteCovariance(3)
        with pytest.raises(ValueError, match="width"):
            acc.update(np.ones((2, 4)))


class TestFitIncomplete:
    def test_recovers_direction_under_missingness(self, rng, rank1_matrix):
        damaged = punch(rank1_matrix, 0.25, rng)
        model, acc = fit_incomplete(damaged, cutoff=1)
        reference = RatioRuleModel(cutoff=1).fit(rank1_matrix)
        # The mined direction survives 25% missingness to within degrees.
        cosine = abs(float(model.rules_matrix[:, 0] @ reference.rules_matrix[:, 0]))
        assert cosine > 0.999
        assert acc.min_pair_count > 100

    def test_model_is_fully_functional(self, rng, rank1_matrix):
        damaged = punch(rank1_matrix, 0.2, rng)
        model, _acc = fit_incomplete(damaged, cutoff=1)
        filled = model.fill_row(np.array([5.0, np.nan, np.nan]))
        assert filled[1] == pytest.approx(10.0, abs=1.0)
        assert filled[2] == pytest.approx(15.0, abs=1.5)

    def test_min_pair_count_guard(self, rng):
        # Two columns never co-observed -> reject.
        matrix = np.array(
            [[1.0, np.nan, 2.0], [np.nan, 2.0, 3.0], [3.0, np.nan, 4.0]] * 5
        )
        with pytest.raises(ValueError, match="co-observed"):
            fit_incomplete(matrix, min_pair_count=1)

    def test_complete_data_equals_plain_fit(self, rank1_matrix):
        model, _acc = fit_incomplete(rank1_matrix, cutoff=1)
        reference = RatioRuleModel(cutoff=1).fit(rank1_matrix)
        np.testing.assert_allclose(
            model.rules_matrix, reference.rules_matrix, atol=1e-9
        )
        np.testing.assert_allclose(model.means_, reference.means_)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            fit_incomplete(np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_incomplete(np.empty((0, 3)))
