"""Tests for the experiment harness."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    format_table,
    get_experiment,
    list_experiments,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["longer", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # Columns align: every row has the same separator positions.
        assert len(set(len(line.rstrip()) >= 0 for line in lines)) == 1

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123], [1234567.0], [3.14159], [0.0]])
        assert "0.000123" in table
        assert "3.142" in table
        assert "0" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestExperimentResult:
    def _result(self, claims):
        return ExperimentResult(
            experiment_id="figX",
            title="test",
            headers=["a"],
            rows=[[1]],
            claims=claims,
            notes="note text",
        )

    def test_render_contains_everything(self):
        text = self._result({"the claim": True}).render()
        assert "figX" in text
        assert "[PASS] the claim" in text
        assert "note text" in text

    def test_render_failed_claim(self):
        text = self._result({"bad claim": False}).render()
        assert "[FAIL] bad claim" in text

    def test_all_claims_upheld(self):
        assert self._result({"a": True, "b": True}).all_claims_upheld()
        assert not self._result({"a": True, "b": False}).all_claims_upheld()
        assert self._result({}).all_claims_upheld()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        experiments = list_experiments()
        for expected in ("fig6", "fig7", "fig8", "fig9+fig11", "fig12", "table2"):
            assert expected in experiments

    def test_get_experiment_returns_callable(self):
        assert callable(get_experiment("fig7"))

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")
