"""End-to-end runs of the extension experiments."""

import pytest

from repro.experiments import (
    ext_categorical,
    ext_incomplete,
    ext_stability,
    ext_wide,
)
from repro.experiments.harness import list_experiments


class TestExtIncomplete:
    def test_claims_uphold(self):
        result = ext_incomplete.run(fractions=(0.0, 0.2, 0.3), seed=0)
        assert result.all_claims_upheld(), result.render()

    def test_zero_fraction_is_reference(self):
        result = ext_incomplete.run(fractions=(0.0,), seed=0)
        # vs-complete ratio of the 0% row is exactly 1.
        assert result.rows[0][-1] == pytest.approx(1.0)

    def test_registered(self):
        assert "ext-incomplete" in list_experiments()


@pytest.mark.slow
class TestExtWide:
    def test_paths_agree_at_modest_width(self):
        result = ext_wide.run(widths=(150, 400), n_rows=300, seed=0)
        assert result.claims["all three paths mine the same top-k eigenvalues"]

    def test_generator_sparsity(self):
        matrix = ext_wide.make_wide_baskets(200, 100, seed=0)
        fill = (matrix != 0).mean()
        assert 0.1 < fill < 0.3

    def test_registered(self):
        assert "ext-wide" in list_experiments()


class TestExtStability:
    def test_claims_uphold(self):
        result = ext_stability.run(seed=0, n_resamples=12)
        assert result.all_claims_upheld(), result.render()

    def test_registered(self):
        assert "ext-stability" in list_experiments()


class TestExtCategorical:
    def test_claims_uphold(self):
        result = ext_categorical.run(seed=0, n_players=450, n_eval=150)
        assert result.all_claims_upheld(), result.render()

    def test_three_method_rows(self):
        result = ext_categorical.run(seed=1, n_players=450, n_eval=150)
        assert [row[0] for row in result.rows] == [
            "majority-class baseline",
            "argmax decode",
            "residual decode",
        ]

    def test_registered(self):
        assert "ext-categorical" in list_experiments()
