"""Tests for the markdown report generator."""


from repro.experiments.harness import ExperimentResult
from repro.experiments.report import generate_report, render_markdown


def make_result(experiment_id="figX", claims=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="a test experiment",
        headers=["name", "value"],
        rows=[["alpha", 1.2345], ["beta", 1e-9]],
        claims=claims if claims is not None else {"the shape holds": True},
        notes="some notes",
    )


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown([make_result()])
        assert text.startswith("# Reproduction report")
        assert "## ✅ figX — a test experiment" in text
        assert "| name | value |" in text
        assert "- ✅ the shape holds" in text
        assert "> some notes" in text

    def test_failed_claims_marked(self):
        text = render_markdown([make_result(claims={"broken": False})])
        assert "## ❌ figX" in text
        assert "- ❌ broken" in text
        assert "1/1 shape claims" not in text
        assert "0/1 shape claims upheld" in text

    def test_claim_tally(self):
        results = [
            make_result("a", {"x": True, "y": True}),
            make_result("b", {"z": False}),
        ]
        text = render_markdown(results)
        assert "2 experiments; 2/3 shape claims upheld." in text

    def test_small_floats_formatted(self):
        text = render_markdown([make_result()])
        assert "1e-09" in text or "1e-9" in text


class TestGenerateReport:
    def test_runs_selected_experiments(self):
        text = generate_report(["fig12", "table2"], seed=0)
        assert "fig12" in text
        assert "table2" in text
        assert "✅" in text

    def test_kwargs_override(self):
        text = generate_report(
            ["fig7"],
            run_kwargs={"fig7": {"datasets": ("abalone",)}},
        )
        assert "abalone" in text
        assert "nba |" not in text


class TestCLIMarkdownFlag:
    def test_markdown_written(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["experiment", "fig12", "--markdown", str(out)]) == 0
        assert out.exists()
        content = out.read_text()
        assert content.startswith("# Reproduction report")
        assert "fig12" in content
