"""End-to-end runs of every reproduction experiment.

These are the repository's integration tests: each experiment exercises
datasets + model + baselines + guessing error together, and its shape
claims are the paper's qualitative findings.  Scaled-down parameters
keep the suite fast; the benchmarks run the full configurations.
"""

import pytest

from repro.experiments import get_experiment
from repro.experiments import (
    fig6_stability,
    fig7_accuracy,
    fig8_scaleup,
    fig9_fig11_projections,
    fig12_quant_vs_rr,
    table2_rules,
)


class TestFig7:
    def test_claims_uphold(self):
        result = fig7_accuracy.run(seed=0)
        assert result.all_claims_upheld(), result.render()

    def test_rows_structure(self):
        result = fig7_accuracy.run(datasets=("abalone",), seed=1)
        assert len(result.rows) == 1
        name, _k, ge_rr, ge_col, percent = result.rows[0]
        assert name == "abalone"
        assert percent == pytest.approx(100.0 * ge_rr / ge_col)

    def test_different_seed_still_wins(self):
        result = fig7_accuracy.run(seed=42)
        assert result.claims["RR beats col-avgs on every dataset (percent < 100)"]


class TestFig6:
    def test_claims_uphold(self):
        result = fig6_stability.run(
            datasets=("nba",), hole_counts=(1, 2, 3), max_hole_sets=25, seed=0
        )
        assert result.all_claims_upheld(), result.render()

    def test_row_per_dataset_and_h(self):
        result = fig6_stability.run(
            datasets=("nba", "baseball"), hole_counts=(1, 2), max_hole_sets=10
        )
        assert len(result.rows) == 4


@pytest.mark.slow
class TestFig8:
    def test_linearity_at_reduced_scale(self, tmp_path):
        # Wall-clock timing is inherently noisy on a shared machine;
        # allow one retry before declaring the linearity claim broken.
        # (The benchmark suite runs the strict paper-scale sweep.)
        last_result = None
        for attempt in range(2):
            result = fig8_scaleup.run(
                sizes=(10_000, 30_000, 60_000, 90_000),
                work_dir=tmp_path / f"attempt{attempt}",
                repeats=3,
            )
            last_result = result
            if result.claims["time grows linearly in N (R^2 >= 0.97)"]:
                return
        pytest.fail(last_result.render())

    def test_fit_line_helper(self):
        slope, intercept, r2 = fig8_scaleup.fit_line([1, 2, 3], [2.0, 4.0, 6.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_fit_line_needs_two_points(self):
        with pytest.raises(ValueError):
            fig8_scaleup.fit_line([1], [1.0])


class TestFig9Fig11:
    def test_claims_uphold(self):
        result = fig9_fig11_projections.run(seed=0)
        assert result.all_claims_upheld(), result.render()


class TestFig12:
    def test_claims_uphold(self):
        result = fig12_quant_vs_rr.run(seed=0)
        assert result.all_claims_upheld(), result.render()

    def test_bread_butter_generator_range(self):
        matrix = fig12_quant_vs_rr.make_bread_butter_data(100, seed=0)
        assert matrix.shape == (100, 2)
        assert matrix[:, 0].max() <= 6.0
        assert matrix.min() >= 0.0


class TestTable2:
    def test_claims_uphold(self):
        result = table2_rules.run(seed=0)
        assert result.all_claims_upheld(), result.render()

    def test_loading_table_in_notes(self):
        result = table2_rules.run(seed=0)
        assert "RR1" in result.notes
        assert "minutes played" in result.notes


class TestViaRegistry:
    @pytest.mark.parametrize("experiment_id", ["fig7", "fig12", "table2"])
    def test_run_by_id(self, experiment_id):
        result = get_experiment(experiment_id)(seed=0)
        assert result.experiment_id == experiment_id
