"""Refresh-policy tests: gates and decisions, no data needed."""

from __future__ import annotations

import pytest

from repro.pipeline import RefreshPolicy
from repro.pipeline.drift import DriftReport

pytestmark = pytest.mark.pipeline


def make_report(drifted: bool, reasons=("rule-angle",)) -> DriftReport:
    return DriftReport(
        drifted=drifted,
        reasons=tuple(reasons) if drifted else (),
        guessing_error=1.0,
        baseline_guessing_error=0.8,
        angle_degrees=20.0 if drifted else 1.0,
        k_published=1,
        k_candidate=1,
        n_sample_rows=100,
    )


class TestGates:
    def test_min_rows_blocks(self):
        policy = RefreshPolicy(min_rows=100)
        assert not policy.gate(rows_since_refresh=99, seconds_since_refresh=1e9)
        assert policy.gate(rows_since_refresh=100, seconds_since_refresh=1e9)

    def test_min_interval_blocks(self):
        policy = RefreshPolicy(min_rows=1, min_interval_seconds=30.0)
        assert not policy.gate(rows_since_refresh=10**6, seconds_since_refresh=29.9)
        assert policy.gate(rows_since_refresh=10**6, seconds_since_refresh=30.0)


class TestDecisions:
    def test_drift_triggers_inside_gates(self):
        policy = RefreshPolicy(min_rows=10)
        decision = policy.decide(
            make_report(True), rows_since_refresh=50, seconds_since_refresh=1.0
        )
        assert decision.refresh
        assert decision.reason == "drift:rule-angle"

    def test_drift_blocked_by_cooldown(self):
        policy = RefreshPolicy(min_rows=10, min_interval_seconds=60.0)
        decision = policy.decide(
            make_report(True), rows_since_refresh=50, seconds_since_refresh=5.0
        )
        assert not decision.refresh
        assert decision.reason == ""

    def test_no_drift_no_refresh(self):
        policy = RefreshPolicy(min_rows=10)
        decision = policy.decide(
            make_report(False), rows_since_refresh=50, seconds_since_refresh=1.0
        )
        assert not decision.refresh

    def test_max_rows_forces_without_drift(self):
        policy = RefreshPolicy(min_rows=10, max_rows=1000)
        decision = policy.decide(
            make_report(False),
            rows_since_refresh=1000,
            seconds_since_refresh=1.0,
        )
        assert decision.refresh
        assert decision.reason == "forced:max-rows"

    def test_max_rows_wins_over_drift_reason(self):
        policy = RefreshPolicy(min_rows=10, max_rows=1000)
        decision = policy.decide(
            make_report(True), rows_since_refresh=5000, seconds_since_refresh=1.0
        )
        assert decision.reason == "forced:max-rows"

    def test_drift_disabled_policy_only_forces(self):
        policy = RefreshPolicy(min_rows=10, refresh_on_drift=False)
        decision = policy.decide(
            make_report(True), rows_since_refresh=50, seconds_since_refresh=1.0
        )
        assert not decision.refresh

    def test_none_report_is_no_drift(self):
        policy = RefreshPolicy(min_rows=10)
        decision = policy.decide(
            None, rows_since_refresh=50, seconds_since_refresh=1.0
        )
        assert not decision.refresh


class TestValidation:
    def test_min_rows_validated(self):
        with pytest.raises(ValueError, match="min_rows"):
            RefreshPolicy(min_rows=0)

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="min_interval_seconds"):
            RefreshPolicy(min_interval_seconds=-1.0)

    def test_max_rows_must_cover_min_rows(self):
        with pytest.raises(ValueError, match="max_rows"):
            RefreshPolicy(min_rows=100, max_rows=50)
