"""Batch-source contract tests: polling, batching, backpressure."""

from __future__ import annotations

import queue
import threading

import numpy as np
import pytest

from repro.io.schema import TableSchema
from repro.pipeline import CSVTailSource, QueueSource, TransactionStreamSource

pytestmark = pytest.mark.pipeline


class TestQueueSource:
    def test_coalesces_small_puts_into_one_batch(self):
        source = QueueSource(2)
        for start in range(0, 9, 3):
            source.put(np.arange(start * 2, (start + 3) * 2).reshape(3, 2))
        batch = source.poll(100)
        assert batch.shape == (9, 2)
        np.testing.assert_array_equal(batch, np.arange(18).reshape(9, 2))

    def test_splits_oversized_puts_across_polls(self):
        source = QueueSource(2)
        source.put(np.arange(20.0).reshape(10, 2))
        first = source.poll(4)
        second = source.poll(100)
        assert first.shape == (4, 2)
        assert second.shape == (6, 2)
        np.testing.assert_array_equal(
            np.vstack([first, second]), np.arange(20.0).reshape(10, 2)
        )

    def test_idle_then_exhausted(self):
        source = QueueSource(3)
        idle = source.poll(10)
        assert idle.shape == (0, 3)
        source.put(np.ones((2, 3)))
        source.close()
        assert source.poll(10).shape == (2, 3)
        assert source.poll(10) is None

    def test_put_after_close_rejected(self):
        source = QueueSource(2)
        source.close()
        with pytest.raises(ValueError, match="closed"):
            source.put(np.ones((1, 2)))

    def test_width_mismatch_rejected(self):
        source = QueueSource(3)
        with pytest.raises(ValueError, match="width 3"):
            source.put(np.ones((2, 4)))

    def test_single_row_accepted_as_1d(self):
        source = QueueSource(2)
        source.put(np.array([1.0, 2.0]))
        assert source.poll(10).shape == (1, 2)

    def test_bounded_queue_exerts_backpressure(self):
        source = QueueSource(2, capacity=2)
        source.put(np.ones((1, 2)))
        source.put(np.ones((1, 2)))
        # Queue is full: a producer now blocks (times out) until the
        # pipeline drains -- memory cannot grow without bound.
        with pytest.raises(queue.Full):
            source.put(np.ones((1, 2)), timeout=0.05)
        assert source.poll(10).shape == (2, 2)
        source.put(np.ones((1, 2)), timeout=0.05)  # space again

    def test_blocked_producer_resumes_when_drained(self):
        source = QueueSource(2, capacity=1)
        source.put(np.zeros((1, 2)))
        done = threading.Event()

        def producer():
            source.put(np.ones((1, 2)), timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert not done.wait(0.05)  # stuck against the bound
        assert source.poll(10).shape[0] >= 1  # drain frees the slot
        assert done.wait(5.0)
        thread.join()

    def test_schema_accepted(self):
        schema = TableSchema.from_names(["bread", "butter"])
        source = QueueSource(schema)
        assert source.schema.names == ["bread", "butter"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            QueueSource(2, capacity=0)


class TestCSVTailSource:
    def _write(self, path, lines):
        with open(path, "a") as handle:
            handle.write("".join(lines))

    def test_batch_mode_consumes_and_exhausts(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n", "3,4\n"])
        source = CSVTailSource(path, follow=False)
        assert source.schema.names == ["a", "b"]
        batch = source.poll(10)
        np.testing.assert_array_equal(batch, [[1.0, 2.0], [3.0, 4.0]])
        assert source.poll(10) is None

    def test_follow_mode_picks_up_appended_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n"])
        source = CSVTailSource(path, follow=True)
        assert source.poll(10).shape == (1, 2)
        assert source.poll(10).shape == (0, 2)  # idle, not exhausted
        self._write(path, ["5,6\n", "7,8\n"])
        np.testing.assert_array_equal(
            source.poll(10), [[5.0, 6.0], [7.0, 8.0]]
        )
        source.close()

    def test_partial_trailing_line_left_for_next_poll(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n", "3,"])  # torn mid-write
        source = CSVTailSource(path, follow=True)
        np.testing.assert_array_equal(source.poll(10), [[1.0, 2.0]])
        self._write(path, ["4\n"])  # writer finishes the line
        np.testing.assert_array_equal(source.poll(10), [[3.0, 4.0]])
        source.close()

    def test_max_rows_respected(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n"] + [f"{i},{i}\n" for i in range(10)])
        source = CSVTailSource(path, follow=False)
        assert source.poll(3).shape == (3, 2)
        assert source.poll(100).shape == (7, 2)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            CSVTailSource(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        self._write(path, ["a,b\n", "1,2,3\n"])
        source = CSVTailSource(path, follow=False)
        with pytest.raises(ValueError, match="3 cells"):
            source.poll(10)
        source.close()


class TestCSVTailSourceRotation:
    """Log-rotation / truncation resync (regression: the source used to
    keep reading the rotated-away inode and idle forever)."""

    def _write(self, path, lines, mode="a"):
        with open(path, mode) as handle:
            handle.write("".join(lines))

    def test_rotation_resyncs_to_the_new_file(self, tmp_path):
        import os

        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n"])
        source = CSVTailSource(path, follow=True)
        assert source.poll(10).shape == (1, 2)
        # Rotate: write the replacement beside the file, then swap it
        # in atomically -- exactly what logrotate's copytruncate-less
        # mode does.
        rotated = tmp_path / "data.csv.new"
        self._write(rotated, ["a,b\n", "5,6\n", "7,8\n"], mode="w")
        os.replace(rotated, path)
        np.testing.assert_array_equal(
            source.poll(10), [[5.0, 6.0], [7.0, 8.0]]
        )
        assert source.n_rotations == 1
        assert source.n_truncations == 0
        # The handle now tracks the new inode: appends keep arriving.
        self._write(path, ["9,10\n"])
        np.testing.assert_array_equal(source.poll(10), [[9.0, 10.0]])
        source.close()

    def test_rotation_flushes_the_old_files_unterminated_tail(self, tmp_path):
        import os

        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n", "3,4"])  # no trailing newline
        source = CSVTailSource(path, follow=True)
        np.testing.assert_array_equal(source.poll(10), [[1.0, 2.0]])
        rotated = tmp_path / "data.csv.new"
        self._write(rotated, ["a,b\n", "5,6\n"], mode="w")
        os.replace(rotated, path)
        # The rotated-away file is final, so its last (newline-less)
        # line is a complete row and must not be lost.
        np.testing.assert_array_equal(
            source.poll(10), [[3.0, 4.0], [5.0, 6.0]]
        )
        assert source.n_rotations == 1
        source.close()

    def test_truncation_resyncs_from_the_top(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n"] + [f"{i},{i}\n" for i in range(50)])
        source = CSVTailSource(path, follow=True)
        assert source.poll(100).shape == (50, 2)
        # Rewrite in place, shorter than the read offset (same inode).
        self._write(path, ["a,b\n", "1,2\n"], mode="w")
        np.testing.assert_array_equal(source.poll(10), [[1.0, 2.0]])
        assert source.n_truncations == 1
        assert source.n_rotations == 0
        source.close()

    def test_missing_file_mid_swap_is_idle_not_fatal(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n"])
        source = CSVTailSource(path, follow=True)
        assert source.poll(10).shape == (1, 2)
        path.unlink()  # the writer removed it but has not replaced it yet
        assert source.poll(10).shape == (0, 2)  # idle, no crash
        self._write(path, ["a,b\n", "5,6\n"], mode="w")
        np.testing.assert_array_equal(source.poll(10), [[5.0, 6.0]])
        assert source.n_rotations == 1
        source.close()

    def test_replacement_with_different_header_rejected(self, tmp_path):
        import os

        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n"])
        source = CSVTailSource(path, follow=True)
        assert source.poll(10).shape == (1, 2)
        rotated = tmp_path / "data.csv.new"
        self._write(rotated, ["x,y,z\n", "1,2,3\n"], mode="w")
        os.replace(rotated, path)
        with pytest.raises(ValueError, match="does not match"):
            source.poll(10)
        source.close()


class TestCSVTailSourceBadRows:
    """on_bad_row policy (regression: a corrupt row used to raise a
    bare ValueError with no context, killing the pipeline)."""

    def _write(self, path, lines):
        with open(path, "a") as handle:
            handle.write("".join(lines))

    def test_raise_includes_file_and_byte_offset(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n", "1,2\n", "oops,2\n"])
        source = CSVTailSource(path, follow=False)
        with pytest.raises(ValueError) as excinfo:
            source.poll(10)
        message = str(excinfo.value)
        assert str(path) in message
        # The bad row starts right after "a,b\n1,2\n" = byte 8.
        assert "@ byte 8" in message
        assert "oops" in message
        source.close()

    def test_skip_drops_bad_rows_and_counts_them(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(
            path,
            ["a,b\n", "1,2\n", "oops,2\n", "3,4\n", "5,6,7\n", "8,9\n"],
        )
        source = CSVTailSource(path, follow=False, on_bad_row="skip")
        batch = source.poll(10)
        np.testing.assert_array_equal(
            batch, [[1.0, 2.0], [3.0, 4.0], [8.0, 9.0]]
        )
        assert source.n_bad_rows_skipped == 2
        source.close()

    def test_policy_validated(self, tmp_path):
        path = tmp_path / "data.csv"
        self._write(path, ["a,b\n"])
        with pytest.raises(ValueError, match="on_bad_row"):
            CSVTailSource(path, on_bad_row="ignore")

    def test_pipeline_surfaces_skip_counts_in_metrics(self, tmp_path):
        from repro.pipeline import IngestionPipeline

        path = tmp_path / "data.csv"
        self._write(
            path, ["a,b\n"] + [f"{i},{i}\n" for i in range(8)] + ["bad,row\n"]
        )
        source = CSVTailSource(path, follow=False, on_bad_row="skip")
        pipeline = IngestionPipeline(source, batch_rows=4)
        pipeline.run()
        assert pipeline.metrics.n_rows_skipped == 1
        assert pipeline.metrics.rows_ingested == 8


class TestTransactionStreamSource:
    def test_drains_whole_schedule_then_exhausts(self, stable_stream):
        source = TransactionStreamSource(stable_stream)
        total = 0
        while True:
            batch = source.poll(1000)
            if batch is None:
                break
            total += batch.shape[0]
        assert total == stable_stream.total_blocks * stable_stream.block_rows

    def test_rows_match_materialized_stream(self, stable_stream):
        source = TransactionStreamSource(stable_stream)
        collected = []
        while True:
            batch = source.poll(333)  # misaligned with block_rows on purpose
            if batch is None:
                break
            collected.append(batch)
        np.testing.assert_array_equal(
            np.vstack(collected), stable_stream.materialize()
        )

    def test_poll_validates_max_rows(self, stable_stream):
        source = TransactionStreamSource(stable_stream)
        with pytest.raises(ValueError, match="max_rows"):
            source.poll(0)
