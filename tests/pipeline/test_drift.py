"""Drift-detector tests: reservoir sampling, GE and angle signals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import RatioRuleModel
from repro.pipeline import DriftDetector, ReservoirSample

from tests.pipeline.conftest import make_regime_matrix

pytestmark = pytest.mark.pipeline


class TestReservoirSample:
    def test_fills_to_capacity_then_stays_bounded(self):
        sample = ReservoirSample(16, seed=1)
        sample.extend(np.arange(10.0).reshape(5, 2))
        assert len(sample) == 5
        sample.extend(np.arange(200.0).reshape(100, 2))
        assert len(sample) == 16
        assert sample.n_seen == 105
        assert sample.rows().shape == (16, 2)

    def test_uniformity_over_the_stream(self):
        # Algorithm R: after n >> capacity rows, the retained sample
        # should cover the whole stream, not just its head or tail.
        sample = ReservoirSample(200, seed=2)
        sample.extend(np.arange(4000.0).reshape(4000, 1))
        kept = sample.rows().ravel()
        assert kept.min() < 1000.0 and kept.max() >= 3000.0
        assert 1200.0 < np.mean(kept) < 2800.0

    def test_deterministic_in_seed(self):
        rows = np.arange(500.0).reshape(250, 2)
        a, b = ReservoirSample(32, seed=9), ReservoirSample(32, seed=9)
        a.extend(rows)
        b.extend(rows)
        np.testing.assert_array_equal(a.rows(), b.rows())

    def test_reset_restores_initial_state(self):
        sample = ReservoirSample(8, seed=3)
        sample.extend(np.ones((20, 2)))
        sample.reset()
        assert len(sample) == 0
        assert sample.n_seen == 0
        assert sample.rows().size == 0
        assert sample.occupancy == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            ReservoirSample(0)


class TestDriftDetector:
    def _fit(self, seed, loadings=(1.0, 2.0, 0.5)):
        return RatioRuleModel(cutoff=1).fit(
            make_regime_matrix(seed, loadings=loadings)
        )

    def test_abstains_below_min_sample(self):
        detector = DriftDetector(min_sample_rows=50)
        detector.observe(make_regime_matrix(0, n_rows=10))
        report = detector.evaluate(self._fit(1))
        assert report.guessing_error is None
        assert not report.drifted

    def test_first_evaluation_anchors_baseline(self):
        detector = DriftDetector(min_sample_rows=16)
        detector.observe(make_regime_matrix(0, n_rows=64))
        report = detector.evaluate(self._fit(1))
        assert report.guessing_error is not None
        assert report.baseline_guessing_error == report.guessing_error
        assert not report.drifted  # the anchor itself can never fire

    def test_ge_fires_when_regime_changes(self):
        detector = DriftDetector(min_sample_rows=16, ge_ratio=1.25)
        published = self._fit(1)
        detector.observe(make_regime_matrix(0, n_rows=64))
        detector.evaluate(published)  # anchor on same-regime rows
        detector.reservoir.reset()
        detector.observe(
            make_regime_matrix(2, loadings=(1.0, 0.3, 2.5), n_rows=64)
        )
        report = detector.evaluate(published)
        assert report.drifted
        assert "guessing-error" in report.reasons

    def test_angle_fires_on_rotated_candidate(self):
        detector = DriftDetector(angle_threshold_degrees=15.0)
        published = self._fit(1)
        rotated = self._fit(2, loadings=(1.0, 0.3, 2.5))
        report = detector.evaluate(published, rotated)
        assert report.angle_degrees is not None
        assert report.angle_degrees > 15.0
        assert report.drifted
        assert "rule-angle" in report.reasons

    def test_stable_candidate_does_not_fire(self):
        detector = DriftDetector(angle_threshold_degrees=15.0)
        report = detector.evaluate(self._fit(1), self._fit(2))
        assert report.angle_degrees < 5.0
        assert not report.drifted

    def test_rule_count_change_is_drift(self):
        detector = DriftDetector()
        published = self._fit(1)
        wider = RatioRuleModel(cutoff=2).fit(make_regime_matrix(3))
        report = detector.evaluate(published, wider)
        assert report.drifted
        assert "rule-count" in report.reasons

    def test_rebase_clears_baseline_and_reservoir(self):
        detector = DriftDetector(min_sample_rows=16)
        detector.observe(make_regime_matrix(0, n_rows=64))
        detector.evaluate(self._fit(1))
        assert detector.baseline_guessing_error is not None
        detector.rebase()
        assert detector.baseline_guessing_error is None
        assert len(detector.reservoir) == 0

    def test_describe_is_human_readable(self):
        detector = DriftDetector(min_sample_rows=16)
        detector.observe(make_regime_matrix(0, n_rows=64))
        report = detector.evaluate(self._fit(1), self._fit(2))
        text = report.describe()
        assert "GE1" in text and "angle" in text and "stable" in text

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="ge_ratio"):
            DriftDetector(ge_ratio=0.5)
        with pytest.raises(ValueError, match="angle_threshold"):
            DriftDetector(angle_threshold_degrees=0.0)
        with pytest.raises(ValueError, match="min_sample_rows"):
            DriftDetector(min_sample_rows=0)
