"""End-to-end pipeline tests: the differential guarantee, drift-driven
refreshes, torn-read safety under concurrent serving, and metrics."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import RatioRuleModel
from repro.core.reconstruction import fill_matrix
from repro.io.schema import TableSchema
from repro.obs.metrics import PipelineMetrics
from repro.pipeline import (
    DriftDetector,
    IngestionPipeline,
    QueueSource,
    RefreshPolicy,
    TransactionStreamSource,
)
from repro.serve import BatchFiller, ModelRegistry

from tests.pipeline.conftest import make_regime_matrix

pytestmark = pytest.mark.pipeline


def feed(source: QueueSource, matrix: np.ndarray, sizes) -> None:
    """Chop ``matrix`` into blocks of the given sizes and enqueue them."""
    start = 0
    for size in sizes:
        source.put(matrix[start : start + size])
        start += size
    assert start == matrix.shape[0]
    source.close()


class TestDifferentialGuarantee:
    """A pipeline publish == an offline fit, bit for bit (no decay)."""

    def test_publish_bit_identical_to_offline_fit(self):
        matrix = make_regime_matrix(0, n_rows=5000)
        source = QueueSource(3)
        feed(source, matrix, [7, 130, 513, 1024, 999, 2327])
        pipeline = IngestionPipeline(
            source,
            cutoff=1,
            block_rows=512,
            batch_rows=300,
            policy=RefreshPolicy(min_rows=10**9),  # no auto-publish
        )
        pipeline.run()
        snapshot = pipeline.refresh_now()
        offline = RatioRuleModel(cutoff=1, block_rows=512).fit(
            matrix, TableSchema.generic(3)
        )
        assert snapshot.fingerprint == offline.fingerprint()
        np.testing.assert_array_equal(
            snapshot.model.rules_matrix, offline.rules_matrix
        )
        np.testing.assert_array_equal(snapshot.model.means_, offline.means_)
        np.testing.assert_array_equal(
            snapshot.model.eigenvalues_, offline.eigenvalues_
        )
        assert snapshot.model.n_rows_ == offline.n_rows_

    def test_drift_triggered_publish_is_bit_identical_midstream(self):
        """The acceptance-criterion case: the publish fired *by drift*,
        mid-stream, must equal an offline fit over the same effective
        rows -- everything ingested up to the moment it fired."""
        before = make_regime_matrix(1, loadings=(1.0, 2.0, 0.5), n_rows=1500)
        after = make_regime_matrix(2, loadings=(1.0, 0.3, 2.5), n_rows=1500)
        matrix = np.vstack([before, after])
        source = QueueSource(3)
        feed(source, matrix, [250] * 12)
        pipeline = IngestionPipeline(
            source,
            cutoff=1,
            block_rows=256,
            batch_rows=250,
            policy=RefreshPolicy(min_rows=500),
            detector=DriftDetector(
                reservoir_capacity=128, angle_threshold_degrees=10.0
            ),
        )
        snapshots = []  # (rows_ingested_at_publish, published fingerprint)
        while pipeline.step():
            version = pipeline.registry.latest_version
            if version > len(snapshots):
                snapshots.append(
                    (
                        pipeline.rows_ingested,
                        pipeline.registry.current().fingerprint,
                    )
                )
        drift_refreshes = [
            reason
            for reason in pipeline.metrics.refresh_reasons
            if reason.startswith("drift:")
        ]
        assert drift_refreshes, "regime change must trigger a drift refresh"
        assert pipeline.registry.latest_version >= 2
        # Every publish -- initial and drift-triggered alike -- must be
        # bit-identical to the offline fit over the rows it covered.
        for n_rows, fingerprint in snapshots:
            offline = RatioRuleModel(cutoff=1, block_rows=256).fit(
                matrix[:n_rows], TableSchema.generic(3)
            )
            assert fingerprint == offline.fingerprint()

    @settings(max_examples=15, deadline=None)
    @given(
        block_rows=st.integers(min_value=1, max_value=700),
        batch_rows=st.integers(min_value=1, max_value=500),
        sizes=st.lists(
            st.integers(min_value=1, max_value=400), min_size=1, max_size=12
        ),
    )
    def test_any_chunking_matches_offline_fit(
        self, block_rows, batch_rows, sizes
    ):
        """Property: for ANY producer chunking, poll batching, and fold
        granularity, the published bits equal the offline fit's."""
        total = sum(sizes)
        if total < 2:
            sizes = sizes + [2]
            total += 2
        matrix = make_regime_matrix(3, n_rows=total)
        source = QueueSource(3)
        feed(source, matrix, sizes)
        pipeline = IngestionPipeline(
            source,
            cutoff=1,
            block_rows=block_rows,
            batch_rows=batch_rows,
            policy=RefreshPolicy(min_rows=10**9),
        )
        pipeline.run()
        snapshot = pipeline.refresh_now()
        offline = RatioRuleModel(cutoff=1, block_rows=block_rows).fit(
            matrix, TableSchema.generic(3)
        )
        assert snapshot.fingerprint == offline.fingerprint()


class TestRefreshBehavior:
    def test_initial_publish_when_min_rows_reached(self):
        source = QueueSource(3)
        feed(source, make_regime_matrix(0, n_rows=300), [100, 100, 100])
        pipeline = IngestionPipeline(
            source, cutoff=1, batch_rows=100, policy=RefreshPolicy(min_rows=250)
        )
        pipeline.run()
        assert pipeline.registry.latest_version == 1
        assert pipeline.metrics.refresh_reasons == {"initial": 1}
        # 300 rows ingested, published at 300 (first step past the floor).
        assert pipeline.registry.current().model.n_rows_ == 300

    def test_drift_refresh_on_regime_change(self, drifting_stream):
        pipeline = IngestionPipeline(
            TransactionStreamSource(drifting_stream),
            cutoff=1,
            batch_rows=400,
            decay=1.0 - 1.0 / 2000.0,
            policy=RefreshPolicy(min_rows=800),
            detector=DriftDetector(
                reservoir_capacity=256, angle_threshold_degrees=10.0
            ),
        )
        pipeline.run()
        reasons = pipeline.metrics.refresh_reasons
        assert any(reason.startswith("drift:") for reason in reasons), reasons

    def test_stable_stream_never_drift_refreshes(self, stable_stream):
        pipeline = IngestionPipeline(
            TransactionStreamSource(stable_stream),
            cutoff=1,
            batch_rows=400,
            policy=RefreshPolicy(min_rows=800),
            detector=DriftDetector(
                reservoir_capacity=256,
                angle_threshold_degrees=10.0,
                ge_ratio=1.5,
            ),
        )
        pipeline.run()
        assert pipeline.registry.latest_version == 1  # just the initial
        assert set(pipeline.metrics.refresh_reasons) == {"initial"}
        assert pipeline.metrics.n_drift_evaluations > 0

    def test_max_rows_forces_refresh_without_drift(self, stable_stream):
        pipeline = IngestionPipeline(
            TransactionStreamSource(stable_stream),
            cutoff=1,
            batch_rows=400,
            policy=RefreshPolicy(min_rows=400, max_rows=2000),
        )
        pipeline.run()
        assert pipeline.metrics.refresh_reasons.get("forced:max-rows", 0) >= 2

    def test_min_interval_throttles_publishes(self, drifting_stream):
        pipeline = IngestionPipeline(
            TransactionStreamSource(drifting_stream),
            cutoff=1,
            batch_rows=400,
            policy=RefreshPolicy(min_rows=400, min_interval_seconds=3600.0),
            detector=DriftDetector(angle_threshold_degrees=5.0),
        )
        pipeline.run()
        # Initial publish, then the hour-long cooldown blocks everything.
        assert pipeline.registry.latest_version == 1

    def test_final_publish_covers_the_tail(self):
        source = QueueSource(3)
        feed(source, make_regime_matrix(0, n_rows=120), [40, 40, 40])
        pipeline = IngestionPipeline(
            source, cutoff=1, policy=RefreshPolicy(min_rows=10**9)
        )
        pipeline.run(final_publish=True)
        assert pipeline.registry.latest_version == 1
        assert pipeline.registry.current().model.n_rows_ == 120
        assert pipeline.metrics.refresh_reasons == {"initial": 1}

    def test_preseeded_registry_is_refreshed_not_reinitialized(self):
        seed_model = RatioRuleModel(cutoff=1).fit(
            make_regime_matrix(9), TableSchema.generic(3)
        )
        registry = ModelRegistry(seed_model)
        source = QueueSource(3)
        feed(
            source,
            make_regime_matrix(2, loadings=(1.0, 0.3, 2.5), n_rows=1200),
            [300] * 4,
        )
        pipeline = IngestionPipeline(
            source,
            registry=registry,
            cutoff=1,
            batch_rows=300,
            policy=RefreshPolicy(min_rows=600),
            detector=DriftDetector(angle_threshold_degrees=10.0),
        )
        pipeline.run()
        assert registry.latest_version >= 2
        assert "initial" not in pipeline.metrics.refresh_reasons

    def test_empty_polls_counted_and_harmless(self):
        source = QueueSource(3)
        pipeline = IngestionPipeline(source, cutoff=1)
        assert pipeline.step()  # idle poll
        source.put(make_regime_matrix(0, n_rows=50))
        source.close()
        pipeline.run(final_publish=True)
        assert pipeline.metrics.n_empty_polls >= 1
        assert pipeline.metrics.rows_ingested == 50

    def test_run_max_batches_bounds_the_loop(self):
        source = QueueSource(3)
        matrix = make_regime_matrix(0, n_rows=1000)
        source.put(matrix)
        pipeline = IngestionPipeline(
            source, cutoff=1, batch_rows=100,
            policy=RefreshPolicy(min_rows=10**9),
        )
        pipeline.run(max_batches=3)
        assert pipeline.metrics.n_batches == 3
        assert pipeline.rows_ingested == 300


class TestConcurrentServing:
    """Refreshes must never tear a concurrent BatchFiller's version."""

    N_READERS = 4
    FILLS_PER_READER = 30

    def test_readers_never_observe_torn_version(self, drifting_stream):
        registry = ModelRegistry()
        pipeline = IngestionPipeline(
            TransactionStreamSource(drifting_stream),
            registry=registry,
            cutoff=1,
            batch_rows=400,
            policy=RefreshPolicy(min_rows=400),
            detector=DriftDetector(angle_threshold_degrees=10.0),
        )
        # Publish version 1 so readers have something to serve.
        while registry.latest_version == 0:
            assert pipeline.step()

        filler = BatchFiller(registry)
        batch = make_regime_matrix(7, n_rows=16)
        batch[:, 1] = np.nan  # one hole pattern; fills hit the model hard

        # Per-version ground truth, recorded by the single writer right
        # after each publish; fill_matrix is the documented bit-exact
        # reference for BatchFiller.fill_batch.
        versions_seen: dict = {}

        def writer():
            while pipeline.step():
                snapshot = registry.current()
                if snapshot.version not in versions_seen:
                    versions_seen[snapshot.version] = fill_matrix(
                        batch,
                        snapshot.model.rules_matrix,
                        snapshot.model.means_,
                    )

        snapshot0 = registry.current()
        versions_seen[snapshot0.version] = fill_matrix(
            batch, snapshot0.model.rules_matrix, snapshot0.model.means_
        )

        errors = []
        results = [[] for _ in range(self.N_READERS)]

        def reader(slot):
            try:
                for _ in range(self.FILLS_PER_READER):
                    result = filler.fill_batch(batch)
                    results[slot].append((result.version, result.filled))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(self.N_READERS)
        ]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        writer_thread.join()

        assert not errors
        assert registry.latest_version >= 2, "expected at least one refresh"
        checked = 0
        for slot_results in results:
            for version, filled in slot_results:
                assert version in versions_seen, (
                    f"response claims unpublished version {version}"
                )
                np.testing.assert_array_equal(
                    filled, versions_seen[version],
                    err_msg=f"torn read at version {version}",
                )
                checked += 1
        assert checked == self.N_READERS * self.FILLS_PER_READER


class TestMetrics:
    def test_counters_track_the_run(self, drifting_stream):
        metrics = PipelineMetrics()
        pipeline = IngestionPipeline(
            TransactionStreamSource(drifting_stream),
            cutoff=1,
            batch_rows=400,
            metrics=metrics,
            policy=RefreshPolicy(min_rows=800),
            detector=DriftDetector(
                reservoir_capacity=128, angle_threshold_degrees=10.0
            ),
        )
        result = pipeline.run()
        assert result is metrics
        assert metrics.rows_ingested == 8000
        assert metrics.n_batches == 20
        assert metrics.n_blocks_folded > 0
        assert metrics.n_refreshes == sum(metrics.refresh_reasons.values())
        assert metrics.n_drift_evaluations > 0
        assert metrics.last_version == pipeline.registry.latest_version
        assert metrics.reservoir_capacity == 128
        assert 0.0 <= metrics.reservoir_occupancy <= 1.0
        assert metrics.ingest_seconds >= 0.0

    def test_round_trip_and_merge(self):
        metrics = PipelineMetrics(
            rows_ingested=100,
            n_batches=4,
            n_refreshes=2,
            refresh_reasons={"initial": 1, "drift:rule-angle": 1},
        )
        clone = PipelineMetrics.from_json(metrics.to_json())
        assert clone.to_dict() == metrics.to_dict()
        other = PipelineMetrics(
            rows_ingested=50, n_refreshes=1, refresh_reasons={"final": 1}
        )
        metrics.merge(other)
        assert metrics.rows_ingested == 150
        assert metrics.n_refreshes == 3
        assert metrics.refresh_reasons == {
            "initial": 1,
            "drift:rule-angle": 1,
            "final": 1,
        }

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown PipelineMetrics"):
            PipelineMetrics.from_dict({"bogus": 1})

    def test_render_mentions_the_essentials(self):
        metrics = PipelineMetrics(rows_ingested=1234, n_refreshes=1)
        text = metrics.render()
        assert "1,234" in text
        assert "refresh" in text


class TestValidation:
    def test_block_rows_validated(self):
        with pytest.raises(ValueError, match="block_rows"):
            IngestionPipeline(QueueSource(2), block_rows=0)

    def test_batch_rows_validated(self):
        with pytest.raises(ValueError, match="batch_rows"):
            IngestionPipeline(QueueSource(2), batch_rows=0)

    def test_refresh_now_before_enough_rows_raises(self):
        pipeline = IngestionPipeline(QueueSource(2))
        with pytest.raises(ValueError, match="rows"):
            pipeline.refresh_now()
