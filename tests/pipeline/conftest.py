"""Shared fixtures for the continuous-ingestion pipeline suite.

The regime-matrix factory lives in :mod:`tests.conftest`; it is
re-exported here so pipeline tests keep their historical import path.
"""

from __future__ import annotations

import pytest

from repro.datasets.streams import StreamPhase, TransactionStream
from tests.conftest import make_regime_matrix

__all__ = ["make_regime_matrix"]


@pytest.fixture
def drifting_stream() -> TransactionStream:
    """Two regimes: the spending ratio rotates sharply halfway through."""
    return TransactionStream(
        [
            StreamPhase((1.0, 2.0, 0.5), n_blocks=10, name="before"),
            StreamPhase((1.0, 0.3, 2.5), n_blocks=10, name="after"),
        ],
        block_rows=400,
        seed=5,
    )


@pytest.fixture
def stable_stream() -> TransactionStream:
    """One regime throughout: nothing should ever look drifted."""
    return TransactionStream(
        [StreamPhase((1.0, 2.0, 0.5), n_blocks=20, name="steady")],
        block_rows=400,
        seed=6,
    )
