"""Shared fixtures for the continuous-ingestion pipeline suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.streams import StreamPhase, TransactionStream


def make_regime_matrix(
    seed: int,
    loadings=(1.0, 2.0, 0.5),
    n_rows: int = 400,
    noise: float = 0.05,
) -> np.ndarray:
    """Rank-1 transactions following one latent spending ratio."""
    generator = np.random.default_rng(seed)
    volume = generator.uniform(0.5, 4.0, size=n_rows)
    matrix = np.outer(volume, np.asarray(loadings, dtype=np.float64))
    matrix += generator.normal(0.0, noise, size=matrix.shape)
    return matrix


@pytest.fixture
def drifting_stream() -> TransactionStream:
    """Two regimes: the spending ratio rotates sharply halfway through."""
    return TransactionStream(
        [
            StreamPhase((1.0, 2.0, 0.5), n_blocks=10, name="before"),
            StreamPhase((1.0, 0.3, 2.5), n_blocks=10, name="after"),
        ],
        block_rows=400,
        seed=5,
    )


@pytest.fixture
def stable_stream() -> TransactionStream:
    """One regime throughout: nothing should ever look drifted."""
    return TransactionStream(
        [StreamPhase((1.0, 2.0, 0.5), n_blocks=20, name="steady")],
        block_rows=400,
        seed=6,
    )
