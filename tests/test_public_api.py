"""Tests of the top-level public API surface."""

import numpy as np

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_readme_quickstart_works(self, figure1_matrix):
        """The exact flow the README promises."""
        model = repro.RatioRuleModel().fit(figure1_matrix)
        description = model.describe()
        assert "RR1" in description
        filled = model.fill_row(np.array([10.0, np.nan]))
        assert np.isfinite(filled).all()

    def test_docstring_example_from_model(self):
        """The RatioRuleModel docstring example, verbatim."""
        X = np.array(
            [[0.89, 0.49], [3.34, 1.85], [5.00, 3.09], [1.78, 0.99], [4.02, 2.61]]
        )
        model = repro.RatioRuleModel().fit(X)
        assert model.k == 1
        filled = model.fill_row(np.array([8.50, np.nan]))
        assert bool(filled[1] > 4.0)

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.io
        import repro.linalg

        assert repro.core.RatioRuleModel is repro.RatioRuleModel
