#!/usr/bin/env python
"""Visualization for free: 2-d RR-space scatter plots of every dataset.

Sec. 6.1 of the paper: Ratio Rules double as a dimensionality
reduction, so plotting the first two coordinates reveals the shape of
any dataset.  This script renders the paper's Fig. 9 (baseball and
abalone) and Fig. 11(a) (nba) as terminal scatter plots -- no plotting
library required.

Run:  python examples/visualization.py
"""

from repro import RatioRuleModel, ascii_scatter, load_dataset, project


def main() -> None:
    for name in ("nba", "baseball", "abalone"):
        dataset = load_dataset(name, seed=0)
        model = RatioRuleModel(cutoff=2).fit(dataset.matrix, schema=dataset.schema)
        projection = project(
            model, dataset.matrix, x_rule=0, y_rule=1, labels=dataset.row_labels
        )
        print(f"=== {name}: {dataset.n_rows} rows projected onto RR1 / RR2 ===\n")
        print(ascii_scatter(projection, width=72, height=18,
                            mark_extremes=2 if name == "nba" else 0))
        rr1 = model.rules_[0]
        print(f"\nRR1 ({rr1.energy_fraction:.0%} of variance): "
              f"{rr1.ratio_string(digits=2)}\n")


if __name__ == "__main__":
    main()
