#!/usr/bin/env python
"""Outlier detection and visualization: who breaks the pattern?

Reproduces the paper's Fig. 11 analysis: project the (simulated) NBA
players into RR-space, draw the scatter plot, and watch the outliers
pop out -- the Jordan-like extreme scorer and the Rodman-like extreme
rebounder in the RR1/RR2 view, the Bogues-like playmaker and
Malone-like big man in the RR2/RR3 view.  Then runs the paper's
hide/reconstruct/compare cell-outlier procedure.

Run:  python examples/outlier_detection.py
"""

from repro import (
    RatioRuleModel,
    ascii_scatter,
    detect_cell_outliers,
    detect_row_outliers,
    load_dataset,
    project,
)


def main() -> None:
    dataset = load_dataset("nba", seed=0)
    model = RatioRuleModel(cutoff=3).fit(dataset.matrix, schema=dataset.schema)

    # --- Fig. 11(a): side view (RR1 vs RR2) ------------------------------
    side = project(model, dataset.matrix, x_rule=0, y_rule=1,
                   labels=dataset.row_labels)
    print("=== Fig. 11(a): RR1 (court action) vs RR2 (field position) ===\n")
    print(ascii_scatter(side, width=70, height=20, mark_extremes=3))

    # --- Fig. 11(b): front view (RR2 vs RR3) -------------------------------
    front = project(model, dataset.matrix, x_rule=1, y_rule=2,
                    labels=dataset.row_labels)
    print("\n=== Fig. 11(b): RR2 vs RR3 (height) ===\n")
    print(ascii_scatter(front, width=70, height=20, mark_extremes=3))

    # --- row outliers: players far from the RR-hyperplane -------------------
    print("\n=== Row outliers (far from the rule hyper-plane) ===\n")
    for outlier in detect_row_outliers(model, dataset.matrix, n_sigmas=3.0)[:5]:
        label = dataset.row_labels[outlier.row]
        print(f"  {label:<28} residual {outlier.residual:9.1f} "
              f"(z = {outlier.z_score:.1f})")

    # --- cell outliers: individual suspicious statistics --------------------
    print("\n=== Cell outliers (hide / reconstruct / compare, 3 sigma) ===\n")
    for outlier in detect_cell_outliers(model, dataset.matrix, n_sigmas=3.5)[:5]:
        label = dataset.row_labels[outlier.row]
        field = dataset.schema[outlier.column].name
        print(f"  {label:<28} {field:<18} actual {outlier.actual:7.0f} "
              f"vs predicted {outlier.predicted:7.0f} (z = {outlier.z_score:+.1f})")


if __name__ == "__main__":
    main()
