#!/usr/bin/env python
"""Categorical Ratio Rules: the paper's future-work section, implemented.

The paper closes with "Future research could focus on applying Ratio
Rules to datasets that contain categorical data."  This example does
exactly that on a mixed table of (simulated) basketball players:
numeric season statistics plus a categorical `position` attribute.

One-hot encoding turns `position` into indicator columns; the ordinary
single-pass mining runs over the widened matrix; and hole filling
decodes indicator reconstructions back to category labels.  The result
can answer both directions:

- given the statistics, which position does a player most likely play?
- given the position, what statistics should we expect?

Run:  python examples/categorical_data.py
"""

import numpy as np

from repro import CategoricalAttribute, CategoricalRatioRuleModel, MixedSchema

POSITIONS = ("guard", "forward", "center")


def make_roster(n_players: int = 600, seed: int = 0):
    """Simulated mixed roster: position drives rebounds/assists/blocks."""
    rng = np.random.default_rng(seed)
    profiles = {
        #            rebounds assists blocks
        "guard": (150.0, 450.0, 15.0),
        "forward": (450.0, 200.0, 55.0),
        "center": (750.0, 110.0, 120.0),
    }
    rows = []
    for i in range(n_players):
        position = POSITIONS[i % 3]
        rebounds, assists, blocks = profiles[position]
        volume = rng.uniform(0.4, 1.3)  # playing-time multiplier
        rows.append(
            [
                round(rng.normal(1800, 250) * volume),       # minutes
                round(rng.normal(rebounds, 60) * volume),    # rebounds
                round(rng.normal(assists, 50) * volume),     # assists
                round(rng.normal(blocks, 15) * volume),      # blocks
                position,
            ]
        )
    return rows


def main() -> None:
    schema = MixedSchema(
        [
            "minutes",
            "rebounds",
            "assists",
            "blocks",
            CategoricalAttribute("position", POSITIONS),
        ]
    )
    roster = make_roster()
    model = CategoricalRatioRuleModel(schema, cutoff=4).fit(roster)
    print(f"Mined {model.k} rules over {schema.encoded_width()} encoded columns "
          f"({schema.width} mixed attributes).\n")

    # Direction 1: statistics -> position.
    print("Statistics -> position:")
    probes = [
        ("a rebounding shot-blocker", [1900.0, 780.0, 100.0, 110.0, None]),
        ("a pass-first playmaker", [2000.0, 160.0, 470.0, 10.0, None]),
        ("a jack of all trades", [1700.0, 430.0, 210.0, 50.0, None]),
    ]
    for label, probe in probes:
        scores = model.category_scores(probe, "position")
        prediction = model.predict_category(probe, "position")
        ranked = ", ".join(
            f"{cat}={score:.0f}" for cat, score in
            sorted(scores.items(), key=lambda kv: -kv[1])
        )
        print(f"  {label:<26} -> {prediction:<8} (scores: {ranked})")

    # Direction 2: position -> statistics.
    print("\nPosition -> expected statistics (2000 minutes):")
    header = f"  {'position':<9}" + "".join(
        f"{name:>10}" for name in ("rebounds", "assists", "blocks")
    )
    print(header)
    for position in POSITIONS:
        filled = model.fill_row(
            [2000.0, float("nan"), float("nan"), float("nan"), position]
        )
        print(f"  {position:<9}" + "".join(f"{filled[j]:10.0f}" for j in (1, 2, 3)))

    # Accuracy check: hide every player's position and re-predict it,
    # comparing the two decoders (argmax on indicator scores vs the
    # nearest-subspace residual decode).
    print("\nPosition recovery accuracy over 300 players:")
    for method in ("argmax", "residual"):
        correct = sum(
            model.predict_category(list(row), "position", method=method) == row[4]
            for row in roster[:300]
        )
        print(f"  {method:<9} {correct / 300:.0%}")


if __name__ == "__main__":
    main()
