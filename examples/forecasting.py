#!/usr/bin/env python
"""Forecasting and extrapolation: Ratio Rules vs quantitative rules.

The paper's Fig. 12 scenario.  A store's transaction history shows
bread and butter spendings are linearly correlated.  Two rule
paradigms mine the same history:

- quantitative association rules (Srikant & Agrawal) cover the data
  with interval rules like ``bread: [1-3] => butter: [0.5-2.5]``;
- Ratio Rules fit the correlation line.

Both predict fine *inside* the observed range.  Then a customer spends
$8.50 on bread -- more than anyone in the history -- and only the
Ratio Rule can still answer (the paper's punchline: $6.10).

Run:  python examples/forecasting.py
"""

import numpy as np

from repro import QuantitativeRuleModel, RatioRuleModel, TableSchema
from repro.experiments.fig12_quant_vs_rr import make_bread_butter_data


def main() -> None:
    schema = TableSchema.from_names(["bread", "butter"], unit="$")
    history = make_bread_butter_data(n_rows=200, seed=0)
    print(f"Transaction history: {history.shape[0]} customers, "
          f"bread range ${history[:, 0].min():.2f}-${history[:, 0].max():.2f}\n")

    # --- mine both rule types -----------------------------------------
    rr = RatioRuleModel(cutoff=1).fit(history, schema=schema)
    quant = QuantitativeRuleModel(
        n_intervals=4, min_support=0.05, min_confidence=0.4
    ).fit(history, schema=schema)

    rule = rr.rules_[0]
    print(f"Ratio Rule: {rule.ratio_string(['bread', 'butter'], digits=2)}")
    print(f"\nQuantitative rules mined ({len(quant.rules())}):")
    for quant_rule in quant.rules()[:6]:
        print(f"  {quant_rule.describe(schema)}")

    # --- in-range forecast ----------------------------------------------
    print("\nIn-range forecast (bread = $4.00):")
    rr_guess = rr.fill_row(np.array([4.0, np.nan]))[1]
    quant_guess = quant.predict(np.array([4.0, np.nan]), target=1)
    print(f"  Ratio Rules:        butter = ${rr_guess:.2f}")
    print(f"  Quantitative rules: butter = ${quant_guess:.2f}")

    # --- the extrapolation query ------------------------------------------
    print("\nExtrapolation (bread = $8.50, beyond every training basket):")
    rr_guess = rr.fill_row(np.array([8.50, np.nan]))[1]
    quant_guess = quant.predict(np.array([8.50, np.nan]), target=1)
    print(f"  Ratio Rules:        butter = ${rr_guess:.2f}   (paper: $6.10)")
    if quant_guess is None:
        print("  Quantitative rules: NO RULE FIRES -- the query lies outside "
              "every bounding rectangle.")
    else:
        print(f"  Quantitative rules: butter = ${quant_guess:.2f}")

    coverage = quant.coverage()
    print(f"\nQuantitative rule coverage over the queries above: {coverage:.0%}")


if __name__ == "__main__":
    main()
