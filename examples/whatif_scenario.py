#!/usr/bin/env python
"""What-if scenarios: 'demand for Cheerios doubles -- how much milk?'

The paper's Sec. 3 decision-support example.  We synthesize a grocery
history where cereal and milk purchases move together, mine the Ratio
Rules, and then evaluate scenarios: pin or scale some attributes and
let the rules propagate the consequences to the rest.

Run:  python examples/whatif_scenario.py
"""

import numpy as np

from repro import RatioRuleModel, Scenario, TableSchema, evaluate_scenario


def make_grocery_history(n_rows: int = 500, seed: int = 0) -> np.ndarray:
    """Cereal and milk co-move 1:2; bread and eggs form a second habit."""
    rng = np.random.default_rng(seed)
    cereal_factor = rng.normal(4.0, 1.5, size=n_rows).clip(0.2)
    breakfast_factor = rng.normal(3.0, 1.0, size=n_rows).clip(0.2)
    matrix = np.column_stack(
        [
            cereal_factor,                 # cheerios
            2.0 * cereal_factor,           # milk
            breakfast_factor,              # bread
            0.8 * breakfast_factor,        # eggs
        ]
    )
    matrix += rng.normal(0, 0.08, size=matrix.shape)
    return matrix.clip(0.0)


def main() -> None:
    schema = TableSchema.from_names(["cheerios", "milk", "bread", "eggs"], unit="$")
    history = make_grocery_history()
    model = RatioRuleModel(cutoff=2).fit(history, schema=schema)

    means = dict(zip(schema.names, model.means_))
    print("Average basket:")
    for name, value in means.items():
        print(f"  {name:<10} ${value:.2f}")

    # --- Scenario 1: Cheerios demand doubles -----------------------------
    print("\nScenario 1: demand for Cheerios doubles.")
    result = evaluate_scenario(
        model, Scenario(scaled={"cheerios": 2.0}), baseline=means
    )
    for name in schema.names:
        delta = result[name] - means[name]
        marker = " (assumed)" if name in result.specified else ""
        print(f"  {name:<10} ${result[name]:.2f}  ({delta:+.2f}){marker}")
    print(f"  -> stock up on milk: {result['milk'] / means['milk']:.2f}x the usual.")

    # --- Scenario 2: a specific partial basket -----------------------------
    print("\nScenario 2: a customer puts $6 of cheerios and $2 of bread "
          "in the cart.")
    result = evaluate_scenario(
        model, Scenario(fixed={"cheerios": 6.0, "bread": 2.0})
    )
    for name in schema.names:
        marker = " (given)" if name in result.specified else " (predicted)"
        print(f"  {name:<10} ${result[name]:.2f}{marker}")
    print(f"  (hole-filling regime: {result.case})")


if __name__ == "__main__":
    main()
