#!/usr/bin/env python
"""Market-basket completion: recommendations from Ratio Rules.

The paper's customers-x-products framing, taken to its natural
application: a shopper's cart is a partially-known row, hole-filling
predicts the spend on everything else, and ranking those predictions
yields recommendations.  Built on Quest-style synthetic transactions
(the same generator as the scale-up experiment) so the co-purchase
patterns the rules discover are genuinely in the data.

Also contrasts the two ranking modes: raw predicted spend (dominated by
big-cart volume) versus uplift over the population average (what this
cart specifically signals).

Run:  python examples/market_basket.py
"""


from repro import BasketRecommender, RatioRuleModel
from repro.baselines.apriori import AprioriMiner, binarize_matrix
from repro.datasets.quest import QuestBasketGenerator


def main() -> None:
    generator = QuestBasketGenerator(
        n_items=24, n_patterns=6, avg_pattern_len=3.5, seed=3
    )
    history = generator.generate(4_000, seed=4)
    schema = generator.schema
    print(f"Transaction history: {history.shape[0]} baskets x "
          f"{history.shape[1]} products "
          f"({100 * (history > 0).mean():.0f}% of cells non-zero)\n")

    model = RatioRuleModel(cutoff=6).fit(history, schema=schema)
    recommender = BasketRecommender(model, ranking="uplift")

    # A shopper has two items in the cart: the flagship product of each
    # of the two strongest rules.
    cart = {}
    for rule in model.rules_[:2]:
        name, loading = rule.dominant_attributes(0.5)[0]
        cart.setdefault(name, round(3.0 * abs(loading) + 1.0, 2))
    print(f"Cart so far: {cart}\n")

    print("Top recommendations (uplift ranking):")
    for rec in recommender.recommend(cart, top_n=5):
        print(f"  {rec.product:<8} predicted ${rec.predicted_spend:6.2f} "
              f"(uplift {rec.uplift:+.2f} vs average shopper)")

    by_spend = BasketRecommender(model, ranking="predicted")
    print("\nTop recommendations (raw predicted spend):")
    for rec in by_spend.recommend(cart, top_n=5):
        print(f"  {rec.product:<8} predicted ${rec.predicted_spend:6.2f}")

    # Cross-check against Boolean association rules on the same data:
    # do the co-purchase patterns agree?
    print("\nBoolean association rules over the same history (Apriori):")
    transactions = binarize_matrix(history[:1500], schema)
    miner = AprioriMiner(min_support=0.15, min_confidence=0.6, max_itemset_size=2)
    miner.fit(transactions)
    cart_items = set(cart)
    fired = [
        rule for rule in miner.rules() if rule.antecedent <= cart_items
    ][:5]
    if fired:
        for rule in fired:
            print(f"  {rule}")
        print("\nBoth paradigms surface the co-purchase pattern; only the "
              "Ratio Rules also say *how much* the shopper will spend.")
    else:
        print("  (no Boolean rule fires on this cart at these thresholds)")


if __name__ == "__main__":
    main()
