#!/usr/bin/env python
"""Partitioned warehouse data: mining rules across monthly shards.

Real transaction history lands in partitions (one file per month).
This example builds a year of Quest-style monthly partitions on disk,
then mines Ratio Rules three equivalent ways:

1. **one sequential pass** over the partition set
   (:class:`~repro.io.partitioned.PartitionedReader` -- the paper's
   Fig. 2a access pattern, spanning files);
2. **parallel map/merge** over the shards
   (:func:`~repro.core.parallel.fit_sharded` -- each shard scanned
   independently, partial covariances merged exactly);
3. a monolithic in-memory fit, as the ground truth.

All three produce identical rules; integrity of every shard is
verified via the row-store CRC trailer first.

Run:  python examples/warehouse_partitions.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import RatioRuleModel
from repro.core.parallel import fit_sharded
from repro.datasets.quest import QuestBasketGenerator
from repro.io.partitioned import PartitionedReader, write_partitioned
from repro.io.rowstore import RowStore

MONTHS = 12
ROWS_PER_MONTH = 4_000


def main() -> None:
    generator = QuestBasketGenerator(n_items=40, seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "warehouse"
        monthly = [
            generator.generate(ROWS_PER_MONTH, seed=month + 1)
            for month in range(MONTHS)
        ]
        write_partitioned(
            directory, monthly, generator.schema,
            shard_name="month-{index:02d}.rr",
        )
        print(f"Wrote {MONTHS} monthly partitions "
              f"({MONTHS * ROWS_PER_MONTH} transactions) to {directory.name}/\n")

        # Integrity first: every shard carries a CRC32 trailer.
        reader = PartitionedReader(directory)
        verified = sum(RowStore.verify(path) for path in reader.shard_paths())
        print(f"Integrity: {verified}/{reader.n_shards} shards checksum-verified.\n")

        # Path 1: one sequential pass across all partitions.
        start = time.perf_counter()
        sequential = RatioRuleModel(cutoff=5).fit(reader)
        sequential_s = time.perf_counter() - start
        assert reader.passes_completed == 1

        # Path 2: parallel map over shards, exact merge.
        start = time.perf_counter()
        parallel = fit_sharded(reader.shard_paths(), cutoff=5, max_workers=4)
        parallel_s = time.perf_counter() - start

        # Ground truth: everything in memory at once.
        whole = np.vstack(monthly)
        monolithic = RatioRuleModel(cutoff=5).fit(whole, schema=generator.schema)

        agree_seq = np.allclose(
            sequential.rules_matrix, monolithic.rules_matrix, atol=1e-8
        )
        agree_par = np.allclose(
            parallel.rules_matrix, monolithic.rules_matrix, atol=1e-8
        )
        print(f"Sequential partition scan: {sequential_s * 1000:6.1f} ms, "
              f"rules identical to monolithic: {agree_seq}")
        print(f"Parallel map/merge (4 workers): {parallel_s * 1000:3.1f} ms, "
              f"rules identical to monolithic: {agree_par}")

        print(f"\nMined {sequential.k} rules over {reader.n_rows} transactions; "
              f"strongest co-purchase pattern:")
        print(f"  {sequential.rules_[0].ratio_string(digits=2)}")


if __name__ == "__main__":
    main()
