#!/usr/bin/env python
"""Data cleaning: repairing a damaged data-warehouse extract.

The paper's first application (Sec. 3): "reconstructing lost data and
repairing noisy, damaged or incorrect data (perhaps as a result of
consolidating data from many heterogeneous sources for use in a data
warehouse)".

We simulate the scenario end to end: take the (simulated) abalone
measurements, punch NULLs and inject unit-conversion corruptions (a
classic consolidation bug: grams where the feed expected the scaled
unit), then repair both kinds of damage with the mined rules and
measure how close the repairs land to the original values.

Run:  python examples/data_cleaning.py
"""

import numpy as np

from repro import RatioRuleModel, impute_missing, load_dataset, repair_corrupted


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = load_dataset("abalone", seed=0)
    clean = dataset.matrix

    # Train on the archive's good history...
    train = clean[:3500]
    model = RatioRuleModel().fit(train, schema=dataset.schema)
    print(f"Trained on {train.shape[0]} rows; kept {model.k} rule(s) covering "
          f"{model.rules_.total_energy_fraction():.1%} of the variance.\n")

    # ...and damage this month's feed.
    feed = clean[3500:3600].copy()
    truth = feed.copy()

    # Damage 1: NULLs from a broken extractor (5% of cells).
    null_mask = rng.random(feed.shape) < 0.05
    feed[null_mask] = np.nan

    # Damage 2: a unit bug multiplies a few 'whole weight' cells by 200.
    weight_column = dataset.schema.index_of("whole weight")
    bad_rows = rng.choice(feed.shape[0], size=4, replace=False)
    for row in bad_rows:
        if not np.isnan(feed[row, weight_column]):
            feed[row, weight_column] *= 200.0

    print(f"Feed damage: {int(null_mask.sum())} NULL cells, "
          f"{len(bad_rows)} unit-corrupted weights.\n")

    # Step 1: impute the NULLs.
    imputation = impute_missing(model, feed)
    imputed_error = np.sqrt(
        np.mean(
            [
                (value - truth[r, c]) ** 2
                for (r, c, _old, value) in imputation.repairs
            ]
        )
    )
    print(f"Imputed {imputation.n_repairs} NULLs "
          f"(RMS error vs original values: {imputed_error:.4f}).")

    # Step 2: find and repair the corrupted cells.
    repair = repair_corrupted(model, imputation.cleaned, n_sigmas=4.0)
    print(f"Repaired {repair.n_repairs} corrupted cells:")
    for row, column, old, new in repair.repairs[:6]:
        field = dataset.schema[column].name
        print(f"  row {row:3d} {field:<14} {old:10.3f} -> {new:7.3f} "
              f"(original {truth[row, column]:7.3f})")

    final_rms = np.sqrt(np.mean((repair.cleaned - truth) ** 2))
    damaged_rms = np.sqrt(np.nanmean((np.where(null_mask, np.nan, feed) - truth) ** 2))
    print(f"\nRMS distance to the original matrix: damaged feed {damaged_rms:.3f} "
          f"-> cleaned feed {final_rms:.3f}.")


if __name__ == "__main__":
    main()
