#!/usr/bin/env python
"""Interpreting Ratio Rules: the nba walkthrough of Sec. 6.2 / Table 2.

Mines the first three Ratio Rules from the (simulated) NBA season
statistics and walks the paper's interpretation methodology (Fig. 10):
display each rule's loadings as a histogram, observe the positive and
negative correlations, and read off the underlying factors -- "court
action", "field position", and "height".

Run:  python examples/nba_interpretation.py
"""

from repro import RatioRuleModel, interpret_rules, loading_table, load_dataset
from repro.core.stability import bootstrap_stability


def main() -> None:
    dataset = load_dataset("nba", seed=0)
    print(f"Dataset: {dataset.name}, {dataset.n_rows} players x "
          f"{dataset.n_cols} per-season statistics\n")

    # Table 2 shows three rules; fix k = 3.
    model = RatioRuleModel(cutoff=3).fit(dataset.matrix, schema=dataset.schema)

    print("=== Table 2: relative values of the RRs (small loadings blank) ===\n")
    print(loading_table(model.rules_))

    print("\n=== Per-rule histograms (Fig. 10, step 3) ===\n")
    print(model.describe())

    print("\n=== Automated reading (Fig. 10, steps 4-5) ===\n")
    for interpretation in interpret_rules(model.rules_):
        print(f"{interpretation.rule.name}: {interpretation.narrative()}\n")

    # The paper's headline ratio: ~2 minutes of play per point.
    rr1 = model.rules_[0]
    ratio = rr1.loading_of("minutes played") / rr1.loading_of("points")
    print(f"RR1 implies the average player needs {ratio:.2f} minutes per point "
          "(the paper reads 2:1 -- one basket every four minutes).")

    # Are these rules worth interpreting, or sampling noise?  Bootstrap
    # the season: refit on resampled player sets and measure how much
    # each rule moves.
    print("\n=== Bootstrap stability (should the rules be trusted?) ===\n")
    report = bootstrap_stability(model, dataset.matrix, n_resamples=30, seed=0)
    print(report.describe())


if __name__ == "__main__":
    main()
