#!/usr/bin/env python
"""Quickstart: mine Ratio Rules and guess a missing value.

Reproduces the paper's running example (Fig. 1): five customers, two
products (bread and butter).  The single mined rule is the direction of
greatest variance -- the paper's ``bread : butter => 0.866 : 0.5`` --
and it immediately supports forecasting: given a bread spend, guess the
butter spend.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RatioRuleModel, TableSchema

# The data matrix of Fig. 1: dollars spent per customer per product.
CUSTOMERS = ["Billie", "Charlie", "Ella", "John", "Miles"]
MATRIX = np.array(
    [
        [0.89, 0.49],
        [3.34, 1.85],
        [5.00, 3.09],
        [1.78, 0.99],
        [4.02, 2.61],
    ]
)


def main() -> None:
    schema = TableSchema.from_names(["bread", "butter"], unit="$")

    # Step 1: mine the Ratio Rules (single pass; 85% energy cutoff).
    model = RatioRuleModel().fit(MATRIX, schema=schema)
    print(f"Mined {model.k} rule(s) from {model.n_rows_} customers:\n")
    print(model.describe())

    rule = model.rules_[0]
    print(f"\nThe paper's reading: {rule.ratio_string(['bread', 'butter'])}")

    # Step 2: use the rule to guess a hidden value.  A new customer
    # spends $8.50 on bread -- how much butter?
    new_customer = np.array([8.50, np.nan])
    filled = model.fill_row(new_customer)
    print(f"\nA customer who spends $8.50 on bread is expected to spend "
          f"${filled[1]:.2f} on butter.")

    # Step 3: quantify how good the rules are -- the guessing error.
    from repro import ColumnAverageBaseline, single_hole_error

    baseline = ColumnAverageBaseline().fit(MATRIX, schema=schema)
    ge_rr = single_hole_error(model, MATRIX).value
    ge_col = single_hole_error(baseline, MATRIX).value
    print(f"\nGuessing error GE1: Ratio Rules {ge_rr:.3f} vs "
          f"col-avgs {ge_col:.3f} "
          f"({100 * ge_rr / ge_col:.0f}% of the baseline).")


if __name__ == "__main__":
    main()
