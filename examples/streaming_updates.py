#!/usr/bin/env python
"""Streaming Ratio Rules: a live model over an endless transaction feed.

The paper's single-pass design (Fig. 2a) is one-shot, but its state --
the mergeable covariance accumulator -- supports a *live* model: fold
each day's transactions in as they land, re-solve the tiny eigensystem
on demand.  This example drives the online model with a declarative
:class:`~repro.datasets.streams.TransactionStream` whose shopping
pattern shifts mid-stream (a promotion changes the bread:butter
ratio), shows the model tracking the shift, and confirms per-update
cost stays flat in stream length.

Run:  python examples/streaming_updates.py
"""

import time

import numpy as np

from repro.core.compare import compare_models
from repro.core.online import OnlineRatioRuleModel
from repro.datasets.streams import StreamPhase, TransactionStream


def main() -> None:
    stream = TransactionStream(
        [
            StreamPhase(loadings=(2.0, 1.0, 0.8), n_blocks=10, name="regular price"),
            StreamPhase(loadings=(1.0, 1.0, 0.8), n_blocks=20, name="butter promotion"),
        ],
        block_rows=2_000,
        seed=0,
    )
    schema = stream.schema(["bread", "butter", "milk"])
    online = OnlineRatioRuleModel(3, schema=schema, cutoff=1)

    # Two companions for the cumulative model: a trailing window
    # (isolates the current regime exactly) and an exponentially
    # forgetting model (tracks drift continuously, ~5-update memory).
    window = OnlineRatioRuleModel(3, schema=schema, cutoff=1)
    forgetting = OnlineRatioRuleModel(3, schema=schema, cutoff=1, decay=0.8)
    print("day  phase             rows_seen  bread:butter (RR1)  update_ms")
    snapshot_before = None
    for day, (phase, block) in enumerate(stream.blocks(), start=1):
        start = time.perf_counter()
        online.update(block)
        elapsed_ms = (time.perf_counter() - start) * 1_000
        if day == 10:
            snapshot_before = online.model()
        forgetting.update(block)
        if day > 20:  # last 10 days only
            window.update(block)
        if day % 5 == 0 or day == 11:
            rule = online.model().rules_[0]
            observed = rule.loading_of("bread") / rule.loading_of("butter")
            print(f"{day:3d}  {phase.name:<16} {online.n_rows_seen:9d}  "
                  f"{observed:8.2f} : 1        {elapsed_ms:7.2f}")

    cumulative_rule = online.model().rules_[0]
    window_rule = window.model().rules_[0]
    cumulative_ratio = cumulative_rule.loading_of("bread") / cumulative_rule.loading_of(
        "butter"
    )
    print(
        f"\nCumulative model's bread:butter after 30 days: "
        f"{cumulative_ratio:.2f}:1 "
        "(a blend -- it never forgets the pre-promotion days; the feed "
        "shifted from 2:1 to 1:1)."
    )
    window_ratio = window_rule.loading_of("bread") / window_rule.loading_of("butter")
    print(
        f"Trailing 10-day window's bread:butter:               "
        f"{window_ratio:.2f}:1 "
        "(the promotion regime, isolated)."
    )
    forgetting_rule = forgetting.model().rules_[0]
    forgetting_ratio = forgetting_rule.loading_of("bread") / forgetting_rule.loading_of(
        "butter"
    )
    print(
        f"Forgetting model's bread:butter (decay 0.8):         "
        f"{forgetting_ratio:.2f}:1 "
        "(tracks the change with no window bookkeeping)."
    )
    print("Update cost is flat in stream length: the accumulator is O(M^2) "
          "state, the re-solve O(M^3) -- independent of rows seen.")

    # Drift detection: old snapshot vs the current-window model.
    comparison = compare_models(snapshot_before, window.model())
    print("\nDrift report (day-10 snapshot vs trailing window):")
    print(comparison.describe())

    # The live model is a full estimator at any point:
    filled = online.fill_row(np.array([6.0, np.nan, np.nan]))
    print(f"\nLive forecast: a $6.00 bread basket implies "
          f"${filled[1]:.2f} butter, ${filled[2]:.2f} milk.")


if __name__ == "__main__":
    main()
