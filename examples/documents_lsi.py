#!/usr/bin/env python
"""Documents x terms: Ratio Rules as Latent Semantic Indexing.

Sec. 4.1 of the paper notes the method "is applicable to any N x M
matrix ... e.g. documents and terms (typical in IR)", and its
machinery is "similar to ... Latent Semantic Indexing".  This example
makes that connection concrete on a synthetic corpus:

- documents are generated from three latent *topics* (databases,
  sports, cooking), each a distribution over a 120-term vocabulary;
- the matrix is wide (M = 120), so the rules are mined through the
  footnote-1 path (:func:`repro.mine_wide`) that never materializes
  the 120 x 120 covariance matrix;
- each Ratio Rule recovers one topic's term cluster, RR-space
  coordinates act as topic scores, and hole-filling estimates a
  hidden term count from the rest of the document.

Run:  python examples/documents_lsi.py
"""

import numpy as np

from repro import TableSchema, mine_wide

TOPICS = {
    "databases": ["query", "index", "join", "transaction", "btree", "tuple"],
    "sports": ["game", "score", "team", "season", "coach", "playoff"],
    "cooking": ["recipe", "oven", "butter", "flour", "simmer", "taste"],
}
FILLER_TERMS = 120 - sum(len(terms) for terms in TOPICS.values())


def make_corpus(n_docs: int = 900, seed: int = 0):
    """Term-count matrix: each document mixes 1-2 topics plus filler."""
    rng = np.random.default_rng(seed)
    vocabulary = [t for terms in TOPICS.values() for t in terms]
    vocabulary += [f"filler{i:03d}" for i in range(FILLER_TERMS)]
    term_index = {term: j for j, term in enumerate(vocabulary)}

    matrix = np.zeros((n_docs, len(vocabulary)))
    topic_names = list(TOPICS)
    for i in range(n_docs):
        # Document length and topic mixture.
        length = rng.integers(80, 300)
        primary = topic_names[i % 3]
        weights = {primary: 0.75}
        if rng.random() < 0.3:  # 30% of docs blend a second topic
            other = topic_names[(i + 1) % 3]
            weights = {primary: 0.55, other: 0.2}
        for topic, weight in weights.items():
            for term in TOPICS[topic]:
                matrix[i, term_index[term]] += rng.poisson(weight * length / 6)
        # Filler noise spread over the long tail.
        filler = rng.integers(0, FILLER_TERMS, size=int(length * 0.25))
        filler_offset = len(vocabulary) - FILLER_TERMS
        np.add.at(matrix[i], filler_offset + filler, 1.0)
    return matrix, TableSchema.from_names(vocabulary)


def main() -> None:
    matrix, schema = make_corpus()
    print(f"Corpus: {matrix.shape[0]} documents x {matrix.shape[1]} terms "
          f"(mined via the implicit-covariance path)\n")

    model = mine_wide(matrix, 3, schema=schema)

    print("=== The three strongest Ratio Rules are the three topics ===\n")
    for rule in model.rules_:
        top_terms = ", ".join(name for name, _v in rule.dominant_attributes(0.35)[:6])
        print(f"  {rule.name} ({rule.energy_fraction:.0%} of variance): {top_terms}")

    # Topic scores: RR-space coordinates of three pure documents.
    print("\n=== RR-space coordinates as topic scores ===\n")
    probes = {name: 0 for name in TOPICS}
    for index in range(matrix.shape[0]):
        topic = list(TOPICS)[index % 3]
        if probes[topic] == 0:
            probes[topic] = index
    coordinates = model.transform(matrix[list(probes.values())])
    header = f"  {'document':<12}" + "".join(f"{f'RR{k+1}':>9}" for k in range(3))
    print(header)
    for (topic, _idx), coords in zip(probes.items(), coordinates):
        print(f"  {topic:<12}" + "".join(f"{value:9.1f}" for value in coords))

    # Hole filling: hide a topical term and reconstruct its count.
    print("\n=== Guessing a hidden term count ===\n")
    doc = matrix[0].copy()  # a databases document
    term = "join"
    j = schema.index_of(term)
    truth = doc[j]
    doc[j] = np.nan
    guess = model.fill_row(doc)[j]
    print(f"  databases doc: true count of '{term}' = {truth:.0f}, "
          f"reconstructed = {guess:.1f}")


if __name__ == "__main__":
    main()
